#!/usr/bin/env python3
"""Steering the optimistic KV store away from stale reads.

The flagship demo for the ``kvstore`` system: the optimistic-execution
mode acks writes before the write quorum confirms them, so under healed
partitions a client's read-one can return a version below its own
committed write (a read-your-writes violation).  Consequence prediction
sees the violation coming in the neighbourhood snapshot — the
under-replicated pending write plus the armed client timer — and
execution steering delays the risky read until the reconciler has
repaired the replica, trading a few completed operations for zero
observed staleness.

Both runs use the registered ``optimistic-staleness`` scenario (recurring
healed partitions over five replicas) with the same seed; the only
difference is the CrystalBall mode.  The same runs are available as::

    python -m repro run kvstore --scenario optimistic-staleness \
        --mode steering --seed 0 --duration 150

Run with::

    python examples/kv_optimistic_steering.py

The steering run model-checks every neighbourhood snapshot, so expect a
couple of minutes of wall-clock time.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import Experiment
from repro.core import Mode

#: Demo seed: in OFF mode it yields several read-your-writes violations
#: inside the post-heal reconciliation window.
SEED = 0
DURATION = 150.0


def run(mode: Mode):
    return (Experiment("kvstore")
            .scenario("optimistic-staleness")
            .mode(mode)
            .seed(SEED)
            .duration(DURATION)
            .run())


def main() -> int:
    print("Optimistic KV store under healed partitions "
          f"(seed {SEED}, {DURATION:.0f} s).")
    print()

    print("baseline (CrystalBall off) ...")
    off = run(Mode.OFF)
    print("execution steering (this model-checks every snapshot; "
          "takes a couple of minutes) ...")
    steering = run(Mode.STEERING)

    rows = []
    for label, report in [("off", off), ("steering", steering)]:
        outcome = report.outcome
        rows.append([
            label,
            outcome["stale_reads"]["read_your_writes"],
            outcome["stale_reads"]["monotonic_reads"],
            outcome["reads_done"],
            report.total_predicted(),
            report.total("filters_installed"),
            report.total_isc_blocks(),
        ])
    print()
    print(format_table(
        ["CrystalBall", "stale (RYW)", "stale (MR)", "reads done",
         "predicted", "filters", "ISC blocks"],
        rows,
        title="Observed staleness with and without execution steering",
    ))

    off_stale = off.outcome["stale_total"]
    steered_stale = steering.outcome["stale_total"]
    predicted = steering.total_predicted()
    print()
    print(f"Steering predicted {predicted} violations ahead of execution "
          f"and cut observed stale reads from {off_stale} to "
          f"{steered_stale}.")
    ok = off_stale > 0 and steered_stale == 0 and predicted > 0
    if not ok:
        print("unexpected: the demo seed no longer shows the "
              "predicted-and-avoided pattern")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
