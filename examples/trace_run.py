#!/usr/bin/env python3
"""Observability: tracing a steered run and explaining a steering decision.

This walkthrough reruns the fault-injection scenario (see
``examples/fault_injection.py``) with the observability surface switched
on: a structured JSONL trace streams every event execution, message edge,
checkpoint gather, model-checker run and steering decision to disk, and a
metrics registry counts the run.  The trace is then mined for the *causal
chain* behind the last steering decision — partition injected, checkpoint
taken, neighbourhood snapshot assembled, consequence prediction run,
violation predicted, filter installed — the paper's feedback loop, record
by record.

The same analysis is available from the command line::

    python -m repro run randtree --mode steering --faults partition \\
        --trace out.jsonl
    python -m repro trace out.jsonl --summary
    python -m repro trace out.jsonl --why-steering 2:5000
    python -m repro trace out.jsonl --chrome chrome.json   # chrome://tracing

Run with::

    python examples/trace_run.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget
from repro.obs import causal_chain, format_records, summarize_records
from repro.obs.trace_tools import read_trace

SEED = 9


def run(trace_path: Path):
    return (Experiment("randtree")
            .nodes(5)
            .duration(200)
            .churn(False)                      # the nemesis is the only adversary
            .network(rst_loss=0.6)
            .crystalball(Mode.STEERING,
                         budget=SearchBudget(max_states=300, max_depth=6))
            .options(bootstrap_index=1, max_children=2,
                     fix_recovery_timer=True)
            .faults("partition")
            .seed(SEED)
            .trace(trace_path)                 # JSONL trace, schema v1
            .metrics(True)                     # counters into report.metrics
            .run())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "steering.jsonl"
        print("Running a steered, partitioned RandTree with tracing on ...")
        report = run(trace_path)
        records = read_trace(trace_path)

        summary = summarize_records(records)
        print(f"\ntrace: {summary.total_events} records over "
              f"{summary.duration():.0f}s simulated")
        for kind, count in sorted(summary.by_kind.items()):
            print(f"  {kind:<16} {count}")

        counters = report.metrics["counters"]
        print(f"\nmetrics: {counters['runtime.messages_sent']} messages, "
              f"{counters['mc.states_visited']} states model-checked, "
              f"{counters.get('controller.filters_installed', 0)} filters "
              f"installed")

        # Which node did steering touch?  Ask the trace, not the report.
        steered_nodes = sorted({
            record["node"] for record in records
            if record["kind"] == "filter_install"
        })
        if not steered_nodes:
            print("\nThis seed produced no steering decision; try another.")
            return
        node = steered_nodes[0]
        print(f"\nWhy did steering fire on node {node}?")
        chain = causal_chain(records, node)
        print(format_records(chain, limit=len(chain)))
        print("\nRead bottom-up: the filter install is justified by the "
              "predicted violations,\nwhich came out of the model-checker "
              "run, which consumed the snapshot built\nfrom the "
              "checkpoints — all downstream of the injected partition.")


if __name__ == "__main__":
    main()
