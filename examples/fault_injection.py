#!/usr/bin/env python3
"""Fault injection: steering a partitioned RandTree around its violations.

This walkthrough restages the paper's headline claim with the nemesis
layer (``repro.faults``).  A five-node RandTree deployment is subjected to
a deterministic partition schedule — the overlay splits, the stranded side
elects a spurious root, and on re-merge the unprotected run walks into
``randtree.root_*`` inconsistencies.  Running the *same seed* (hence the
byte-identical fault schedule) with execution steering enabled, the
CrystalBall controllers predict the violations from their neighbourhood
snapshots and filter the offending events: the live monitor stays clean.

Run with::

    python examples/fault_injection.py
"""

from __future__ import annotations

from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget

SEED = 9


def run(mode: Mode):
    return (Experiment("randtree")
            .nodes(5)
            .duration(200)
            .churn(False)                      # the nemesis is the only adversary
            .network(rst_loss=0.6)
            .crystalball(mode, budget=SearchBudget(max_states=300, max_depth=6))
            .options(bootstrap_index=1, max_children=2,
                     fix_recovery_timer=True)
            .faults("partition")               # named preset; try "chaos" too
            .seed(SEED)
            .run())


def describe(label: str, report) -> None:
    print(f"\n--- {label} ---")
    print(f"fault schedule ({report.faults_injected()} injections):")
    for event in report.faults["schedule"]:
        if event["kind"] == "inject":
            print(f"  t={event['time']:7.1f}s  {event['fault']}: "
                  f"{event['detail']}")
    monitor = report.monitor
    print(f"live inconsistent states: {monitor['inconsistent_states']}")
    if monitor["properties_violated"]:
        print(f"properties violated:      {monitor['properties_violated']}")
    accounting = report.accounting()
    print(f"predicted: {accounting['violations_predicted']}  "
          f"steered: {accounting['steering_modified_behavior']}  "
          f"isc blocks: {accounting['isc_blocks']}")


def main() -> None:
    print("Running the partition schedule with CrystalBall OFF ...")
    baseline = run(Mode.OFF)
    describe("steering off", baseline)

    print("\nRunning the SAME seed with execution steering ...")
    steered = run(Mode.STEERING)
    describe("steering on", steered)

    avoided = baseline.live_inconsistent_states() - steered.live_inconsistent_states()
    print(f"\nSame partitions, same seed: steering avoided {avoided} "
          f"inconsistent live states "
          f"({baseline.live_inconsistent_states()} -> "
          f"{steered.live_inconsistent_states()}).")


if __name__ == "__main__":
    main()
