#!/usr/bin/env python3
"""Deployed mode: the same CrystalBall run over real asyncio TCP sockets.

The same seeded RandTree deployment is executed twice — once on the
default ``sim`` backend (simulated transport) and once on the ``tcp``
backend, where every service and control-plane message crosses a real
loopback socket as a length-prefixed compact-bytes frame before its
handler runs.  Checkpoint responses (cloned node states) genuinely travel
over the wire.  The demo then verifies the deployed-mode equivalence the
backend API guarantees: identical property violations and identical
final protocol-state digests.

Each run is one fluent :class:`repro.api.Experiment`; the tcp run is also
available as ``python -m repro run randtree --backend tcp``.

Run with::

    python examples/deployed_tcp.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import Experiment
from repro.backends import protocol_state_digest


def run_backend(backend: str, *, nodes: int = 5, duration: float = 120.0,
                seed: int = 3):
    experiment = (Experiment("randtree")
                  .nodes(nodes)
                  .duration(duration)
                  .crystalball("debug")
                  .seed(seed))
    if backend != "sim":
        experiment.backend(backend)
    return experiment.run()


def main() -> None:
    print("Running the seeded RandTree deployment on both backends ...")
    reports = {backend: run_backend(backend) for backend in ("sim", "tcp")}

    rows = []
    for backend, report in reports.items():
        wire = report.outcome.get("wire", {})
        rows.append([
            backend,
            sum(report.violations_by_property().values()),
            report.total_predicted(),
            wire.get("frames_sent", "-"),
            wire.get("control_frames", "-"),
            wire.get("wire_bytes", "-"),
            protocol_state_digest(report.simulator)[:12],
        ])
    print()
    print(format_table(
        ["backend", "violations", "predicted", "frames", "control frames",
         "wire bytes", "state digest"],
        rows,
        title="sim vs tcp: one seed, two transports",
    ))

    sim_report, tcp_report = reports["sim"], reports["tcp"]
    assert (sim_report.violations_by_property()
            == tcp_report.violations_by_property()), "violation sets differ"
    assert (protocol_state_digest(sim_report.simulator)
            == protocol_state_digest(tcp_report.simulator)), "states diverged"

    wire = tcp_report.outcome["wire"]
    checkpoint_frames = {mtype: count
                         for mtype, count in wire["by_mtype"].items()
                         if mtype.startswith("_cb_")}
    print("\nEquivalence holds: the tcp run shipped "
          f"{wire['frames_sent']} frames ({wire['wire_bytes']} bytes) over "
          "real sockets — control plane included "
          f"({checkpoint_frames}) — and reproduced the exact violations "
          "and final states of the simulated run.")


if __name__ == "__main__":
    main()
