#!/usr/bin/env python3
"""Execution steering on a live RandTree deployment (Figures 2 and 3, §5.4.1).

Three configurations of the same churn workload are compared:

1. CrystalBall off — the deployed system reaches inconsistent states;
2. immediate safety check only — imminent violations are blocked as they
   are about to happen;
3. execution steering + immediate safety check — consequence prediction
   installs event filters ahead of time and the fallback catches the rest.

Run with::

    python examples/randtree_steering.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import CrystalBallConfig, Mode
from repro.mc import SearchBudget, TransitionConfig
from repro.runtime import NetworkModel
from repro.sim import OverlayWorkload
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def run_mode(mode: Mode, *, nodes: int = 8, duration: float = 300.0, seed: int = 5):
    addresses_start = 1
    bootstrap_config = RandTreeConfig(bootstrap=(), max_children=2)
    workload = OverlayWorkload(
        protocol_factory=lambda: RandTree(bootstrap_config),
        properties=ALL_PROPERTIES,
        node_count=nodes,
        duration=duration,
        churn_mean_interval=60.0,
        crystalball_mode=mode,
        crystalball_config=CrystalBallConfig(
            mode=mode,
            search_budget=SearchBudget(max_states=400, max_depth=6),
            transition=TransitionConfig(enable_resets=True, max_resets_per_node=1),
        ),
        network=NetworkModel(rst_loss_probability=0.5),
        seed=seed,
        address_start=addresses_start,
    )
    # All nodes share the same bootstrap node (the first address).
    bootstrap_config.bootstrap = (workload.addresses()[0],)
    return workload.run()


def main() -> None:
    rows = []
    for mode, label in [(Mode.OFF, "CrystalBall off"),
                        (Mode.ISC_ONLY, "immediate safety check only"),
                        (Mode.STEERING, "execution steering + ISC")]:
        print(f"Running RandTree churn workload with: {label} ...")
        result = run_mode(mode)
        rows.append([
            label,
            result.monitor.inconsistent_states,
            result.total_predicted(),
            result.total_steered(),
            result.total_unhelpful(),
            result.total_isc_blocks(),
            result.churn_events,
        ])

    print()
    print(format_table(
        ["configuration", "live inconsistent states", "predicted", "steered",
         "unhelpful", "ISC blocks", "churn events"],
        rows,
        title="RandTree execution steering (cf. Section 5.4.1)",
    ))
    print("\nIn the paper's 1.4 h, 25-node run: 121 inconsistent states with "
          "CrystalBall off, 325 ISC engagements in ISC-only mode, and with "
          "steering active 480 predictions / 415 behaviour changes / 160 ISC "
          "fallbacks and no uncaught violation.")


if __name__ == "__main__":
    main()
