#!/usr/bin/env python3
"""Execution steering on a live RandTree deployment (Figures 2 and 3, §5.4.1).

Three configurations of the same churn workload are compared:

1. CrystalBall off — the deployed system reaches inconsistent states;
2. immediate safety check only — imminent violations are blocked as they
   are about to happen;
3. execution steering + immediate safety check — consequence prediction
   installs event filters ahead of time and the fallback catches the rest.

Each configuration is one fluent :class:`repro.api.Experiment`; the same
run is available as ``python -m repro run randtree --mode steering``.

Run with::

    python examples/randtree_steering.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget


def run_mode(mode: Mode, *, nodes: int = 8, duration: float = 300.0, seed: int = 5):
    return (Experiment("randtree")
            .nodes(nodes)
            .duration(duration)
            .churn(interval=60.0)
            .network(rst_loss=0.5)
            .crystalball(mode,
                         budget=SearchBudget(max_states=400, max_depth=6))
            .options(max_children=2)
            .seed(seed)
            .run())


def main() -> None:
    rows = []
    for mode, label in [(Mode.OFF, "CrystalBall off"),
                        (Mode.ISC_ONLY, "immediate safety check only"),
                        (Mode.STEERING, "execution steering + ISC")]:
        print(f"Running RandTree churn workload with: {label} ...")
        report = run_mode(mode)
        rows.append([
            label,
            report.live_inconsistent_states(),
            report.total_predicted(),
            report.total_steered(),
            report.total_unhelpful(),
            report.total_isc_blocks(),
            report.churn_events,
        ])

    print()
    print(format_table(
        ["configuration", "live inconsistent states", "predicted", "steered",
         "unhelpful", "ISC blocks", "churn events"],
        rows,
        title="RandTree execution steering (cf. Section 5.4.1)",
    ))
    print("\nIn the paper's 1.4 h, 25-node run: 121 inconsistent states with "
          "CrystalBall off, 325 ISC engagements in ISC-only mode, and with "
          "steering active 480 predictions / 415 behaviour changes / 160 ISC "
          "fallbacks and no uncaught violation.")


if __name__ == "__main__":
    main()
