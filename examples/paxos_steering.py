#!/usr/bin/env python3
"""Steering Paxos away from injected consensus-safety bugs (Figures 13/14).

Runs the scripted Figure 13 scenario for both injected bugs in three
configurations (CrystalBall off, execution steering, immediate safety check
only) and reports whether the agreement property — at most one value chosen —
was preserved.

Run with::

    python examples/paxos_steering.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Mode
from repro.systems.paxos import Figure13Scenario


def main() -> None:
    rows = []
    for bug in (1, 2):
        for mode, label in [(Mode.OFF, "off"),
                            (Mode.STEERING, "steering"),
                            (Mode.ISC_ONLY, "ISC only")]:
            scenario = Figure13Scenario(bug=bug, inter_round_delay=20.0,
                                        crystalball_mode=mode, seed=17)
            print(f"bug{bug} / {label}: running the Figure 13 schedule ...")
            result = scenario.run()
            rows.append([
                f"bug{bug}",
                label,
                "violated" if result.violation_occurred else "safe",
                sorted(result.chosen_values),
                result.steering_filters_triggered,
                result.isc_blocks,
            ])

    print()
    print(format_table(
        ["bug", "CrystalBall", "agreement", "chosen values",
         "filter triggers", "ISC blocks"],
        rows,
        title="Paxos safety under injected bugs (cf. Figures 13 and 14)",
    ))
    print("\nThe paper's 200-run experiment: execution steering avoids the "
          "inconsistency in 87% (bug1) and 85% (bug2) of runs, the immediate "
          "safety check in another 11%, leaving 2% / 5% uncaught.")


if __name__ == "__main__":
    main()
