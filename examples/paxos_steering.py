#!/usr/bin/env python3
"""Steering Paxos away from injected consensus-safety bugs (Figures 13/14).

Runs the scripted Figure 13 scenario for both injected bugs in three
configurations (CrystalBall off, execution steering, immediate safety check
only) and reports whether the agreement property — at most one value chosen —
was preserved.  Each run goes through the unified API's scenario registry;
the same runs are available as::

    python -m repro run paxos --scenario figure13-bug1 --mode steering

Run with::

    python examples/paxos_steering.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import Experiment
from repro.core import Mode


def main() -> None:
    rows = []
    for bug in (1, 2):
        for mode, label in [(Mode.OFF, "off"),
                            (Mode.STEERING, "steering"),
                            (Mode.ISC_ONLY, "ISC only")]:
            print(f"bug{bug} / {label}: running the Figure 13 schedule ...")
            report = (Experiment("paxos")
                      .scenario(f"figure13-bug{bug}")
                      .mode(mode)
                      .seed(17)
                      .options(inter_round_delay=20.0)
                      .run())
            outcome = report.outcome
            rows.append([
                f"bug{bug}",
                label,
                "violated" if outcome["violation_occurred"] else "safe",
                outcome["chosen_values"],
                report.total_filter_triggers(),
                report.total_isc_blocks(),
            ])

    print()
    print(format_table(
        ["bug", "CrystalBall", "agreement", "chosen values",
         "filter triggers", "ISC blocks"],
        rows,
        title="Paxos safety under injected bugs (cf. Figures 13 and 14)",
    ))
    print("\nThe paper's 200-run experiment: execution steering avoids the "
          "inconsistency in 87% (bug1) and 85% (bug2) of runs, the immediate "
          "safety check in another 11%, leaving 2% / 5% uncaught.")


if __name__ == "__main__":
    main()
