#!/usr/bin/env python3
"""Deep online debugging of Chord (Section 5.2.2, Figures 10 and 11).

Consequence prediction is run from the two scripted Chord states the paper
describes and finds both inconsistencies: a node whose predecessor points to
itself while its successor list names other nodes, and a violation of the
ring-ordering constraint.  The exhaustive baseline with the same budget is
shown for comparison, as is the effect of the suggested fixes.

The scripted states come from the registered Chord scenarios
(``repro.api.get_system("chord")``); the same searches are available as
``python -m repro run chord --scenario figure10``.

Run with::

    python examples/chord_debugging.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import Experiment, get_system
from repro.core import consequence_prediction
from repro.mc import SearchBudget, TransitionConfig, TransitionSystem, find_errors
from repro.systems.chord import ALL_PROPERTIES


def explore(scenario, *, resets: bool) -> dict:
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=resets, max_resets_per_node=1),
    )
    budget = SearchBudget(max_states=12000, max_depth=12)
    snapshot = scenario.global_state()
    prediction = consequence_prediction(system, snapshot, ALL_PROPERTIES, budget)
    baseline = find_errors(system, snapshot, ALL_PROPERTIES,
                           SearchBudget(max_states=12000, max_depth=12))
    return {"prediction": prediction, "baseline": baseline}


def main() -> None:
    chord = get_system("chord")
    rows = []
    for name, scenario_name, resets in [
        ("Figure 10 (pred = self)", "figure10", True),
        ("Figure 11 (ordering)", "figure11", False),
    ]:
        scenario = chord.scenarios[scenario_name].build()
        results = explore(scenario, resets=resets)
        prediction = results["prediction"]
        baseline = results["baseline"]
        rows.append([
            name,
            prediction.stats.states_visited,
            prediction.stats.max_depth_reached,
            len(prediction.unique_property_names()),
            baseline.stats.states_visited,
            baseline.stats.max_depth_reached,
            len(baseline.unique_property_names()),
        ])
        best = prediction.shortest_violation()
        if best is not None:
            print(f"{name}: {best.violation}")
            for step, event in enumerate(best.path, start=1):
                print(f"    {step}. {event.describe()}")
            print()

    print(format_table(
        ["scenario", "CP states", "CP depth", "CP bugs",
         "BFS states", "BFS depth", "BFS bugs"],
        rows,
        title="Consequence prediction vs exhaustive search on the Chord scenarios",
    ))

    print("\nWith the paper's fixes applied (via the Experiment API):")
    for name in ("figure10", "figure11"):
        report = (Experiment("chord").scenario(name)
                  .options(fixed=True).run())
        print(f"  {name}: {report.outcome['violations']} violations predicted")


if __name__ == "__main__":
    main()
