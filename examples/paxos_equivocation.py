#!/usr/bin/env python3
"""Byzantine equivocation against Paxos: hunt, minimize, replay, steer.

The benign nemesis (``repro.faults`` partitions, crashes, delays) can slow
Paxos down but never make two nodes *learn different values* — agreement
is safe under crash faults.  A byzantine acceptor is another matter: an
``EquivocatingNode`` that reports a fabricated higher-numbered accepted
value in its PROMISE tricks the next leader (via Paxos's own
value-selection rule) into proposing the poison, and the deployment
chooses two different values.

This walkthrough drives the full ``repro.attack`` pipeline:

1. **Hunt** — seeded equivocation schedules against the registered
   ``paxos.agreement`` property until one violates it.
2. **Minimize** — greedy delta debugging shrinks the violating schedule
   (drop steps, shrink windows) with a full re-execution per proposal.
3. **Replay** — the minimized trace re-executes to the *same* violation
   (simulated time + state digest): the counterexample is an artifact,
   not an anecdote.
4. **Steer** — the same minimized schedule runs again with CrystalBall
   execution steering enabled, to see how much of the damage the
   controllers absorb.

Run with::

    python examples/paxos_equivocation.py
"""

from __future__ import annotations

from repro.api import Experiment
from repro.attack import AttackConfig, build_faults, find_attack

SEED = 0


def describe(result) -> None:
    report = result.report
    print(f"\n--- attack report: {report.property_id} on {report.system} ---")
    if not report.found:
        print(f"no counterexample in {report.attempts} attempt(s) "
              f"({report.executions} seeded runs)")
        return
    print(f"FALSIFIED after {report.attempts} attempt(s), "
          f"{report.executions} seeded runs total "
          f"(attack seed {report.attack_seed})")
    print(f"trace minimized {report.original_steps} -> "
          f"{report.minimized_steps} step(s) via {report.reductions}")
    for index, step in enumerate(report.minimized_schedule.steps):
        window = "-" if step.duration is None else f"{step.duration:.1f}s"
        print(f"  step {index}: t={step.at:.1f}s {step.kind} "
              f"(window {window})")
    violation = report.violation
    print(f"violation: t={violation['sim_time']:.3f}s  "
          f"{violation['detail']}")
    print(f"state digest: {violation['state_digest']}  "
          f"replay verified: {report.replay['verified']}")


def steer(result) -> None:
    """Re-run the minimized byzantine schedule under execution steering."""
    schedule = result.schedule
    report = (Experiment("paxos")
              .mode("steering")
              .seed(SEED)
              .properties("paxos.agreement")
              .faults(*build_faults(schedule), seed=0, start_after=0.0)
              .run())
    records = [record for record in report.live_monitor.records
               if record.property_id == "paxos.agreement"]
    accounting = report.accounting()
    print("\n--- same minimized schedule, CrystalBall steering ON ---")
    print(f"predicted: {accounting['violations_predicted']}  "
          f"steered: {accounting['steering_modified_behavior']}  "
          f"isc blocks: {accounting['isc_blocks']}")
    baseline = result.report.violation_count
    print(f"agreement violations: {baseline} (off) -> {len(records)} "
          f"(steering)")
    if records:
        print("steering narrowed but did not eliminate the byzantine "
              "attack: equivocation forges protocol state that "
              "crash-fault checkpoints cannot fully reconcile.")
    elif accounting["violations_predicted"] == 0:
        print("no violation under steering — but with zero predictions "
              "the credit goes to divergence, not foresight: the "
              "controllers' checkpoint traffic re-times the round and "
              "the time-pinned equivocation window misses its target.")
    else:
        print("steering predicted the violation and filtered the attack.")


def main() -> None:
    print("Hunting a counterexample to paxos.agreement "
          "(byzantine equivocation) ...")
    result = find_attack(AttackConfig(
        system="paxos",
        property_id="paxos.agreement",
        faults=("equivocation",),
        seed=SEED,
    ))
    describe(result)
    if result.found:
        steer(result)


if __name__ == "__main__":
    main()
