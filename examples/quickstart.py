#!/usr/bin/env python3
"""Quickstart: predict the Figure 2 RandTree inconsistency from a live state.

This example reproduces the paper's running example (Sections 1.2 and 1.3):
starting from the three-node RandTree state at the top of Figure 2, a single
run of consequence prediction — the search CrystalBall executes continuously
next to the deployed system — predicts that a silent reset of node 13
followed by a re-join leads to node 13 appearing in both the children and
the sibling lists of node 9.

The scripted state comes from the unified API's system registry
(``repro.api``); the same scenario is available from the command line as
``python -m repro run randtree --scenario figure2``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Experiment, get_system
from repro.core import consequence_prediction
from repro.mc import SearchBudget, TransitionConfig, TransitionSystem, find_errors
from repro.systems.randtree import ALL_PROPERTIES


def main() -> None:
    randtree = get_system("randtree")
    scenario = randtree.scenarios["figure2"].build()
    snapshot = scenario.global_state()
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=True, max_resets_per_node=1),
    )

    print("Start state (the first row of Figure 2):")
    for addr, local in sorted(snapshot.nodes.items()):
        state = local.state
        print(f"  node {addr}: root={state.root} parent={state.parent} "
              f"children={sorted(map(str, state.children))} "
              f"siblings={sorted(map(str, state.siblings))}")

    print("\nRunning consequence prediction (the paper's Figure 8 algorithm)...")
    result = consequence_prediction(
        system, snapshot, ALL_PROPERTIES,
        SearchBudget(max_states=6000, max_depth=9),
    )
    print(f"  states visited: {result.stats.states_visited}")
    print(f"  max depth:      {result.stats.max_depth_reached}")
    print(f"  elapsed:        {result.stats.elapsed_seconds:.2f} s")
    print(f"  violations:     {len(result.violations)} "
          f"({len(result.unique_property_names())} distinct properties)")

    target = [v for v in result.violations
              if v.violation.property_name == "randtree.children_siblings_disjoint"]
    if target:
        best = min(target, key=lambda v: v.depth)
        print("\nPredicted Figure 2 inconsistency:")
        print(f"  {best.violation}")
        print("  event path:")
        for step, event in enumerate(best.path, start=1):
            print(f"    {step}. {event.describe()}")
    else:
        print("\nThe children/siblings violation was not found within the budget; "
              "increase max_states.")

    print("\nFor comparison, the same budget spent on the exhaustive search of "
          "Figure 5 (the MaceMC baseline):")
    baseline = find_errors(system, snapshot, ALL_PROPERTIES,
                           SearchBudget(max_states=6000, max_depth=9))
    print(f"  states visited: {baseline.stats.states_visited}, "
          f"max depth: {baseline.stats.max_depth_reached}, "
          f"distinct violations: {len(baseline.unique_property_names())}")

    print("\nApplying the paper's fixes (fix_update_sibling & co.) removes the "
          "predictions — the same search through the fluent Experiment API:")
    fixed_report = (Experiment("randtree").scenario("figure2")
                    .options(fixed=True, max_states=6000, max_depth=9).run())
    print(f"  violations with fixes applied: {fixed_report.outcome['violations']}")


if __name__ == "__main__":
    main()
