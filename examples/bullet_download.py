#!/usr/bin/env python3
"""Bullet' file distribution: the shadow-file-map bug and CrystalBall overhead.

Part 1 (Section 5.2.3): consequence prediction from a small Bullet' snapshot
predicts the file-map inconsistency caused by clearing the shadow map when
the bounded transport refuses a Diff.

Part 2 (Figure 17): a multi-node download is run with and without a
CrystalBall controller attached, comparing completion-time CDFs and the
bandwidth spent on checkpoints.

Run with::

    python examples/bullet_download.py
"""

from __future__ import annotations

from repro.analysis import empirical_cdf, format_table, median, slowdown
from repro.core import Mode, consequence_prediction
from repro.mc import GlobalState, SearchBudget, TransitionConfig, TransitionSystem
from repro.runtime import Address
from repro.systems.bulletprime import (
    ALL_PROPERTIES,
    BulletConfig,
    BulletPrime,
    DownloadScenario,
)
from repro.systems.bulletprime.protocol import DIFF_TIMER, DRAIN_TIMER, REQUEST_TIMER


def predict_shadow_map_bug() -> None:
    """Build a two-node sender/receiver snapshot where the send queue is
    nearly full and let consequence prediction find the inconsistency."""
    sender, receiver = Address(1), Address(2)
    config = BulletConfig(source=sender,
                          mesh={sender: (receiver,), receiver: (sender,)},
                          block_count=8, send_queue_capacity=64,
                          fix_shadow_map=False)
    protocol = BulletPrime(config)
    sender_state = protocol.initial_state(sender)
    receiver_state = protocol.initial_state(receiver)
    # The send queue towards the receiver is almost full (a block transfer is
    # outstanding), so the next Diff will be refused.
    sender_state.queue_bytes[receiver] = 60

    snapshot = GlobalState.from_snapshot(
        {sender: sender_state, receiver: receiver_state},
        timers={sender: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER},
                receiver: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER}},
    )
    system = TransitionSystem(protocol, TransitionConfig(enable_resets=False))
    result = consequence_prediction(system, snapshot, ALL_PROPERTIES,
                                    SearchBudget(max_states=4000, max_depth=6))
    print("Part 1 — predicting the shadow-file-map inconsistency:")
    print(f"  states visited: {result.stats.states_visited}, "
          f"violations: {len(result.violations)}")
    best = result.shortest_violation()
    if best is not None:
        print(f"  {best.violation}")
        for step, event in enumerate(best.path, start=1):
            print(f"    {step}. {event.describe()}")
    print()


def compare_download_overhead() -> None:
    print("Part 2 — download completion times with and without CrystalBall:")
    baseline = DownloadScenario(node_count=12, block_count=32,
                                crystalball_mode=Mode.OFF, seed=3).run()
    monitored = DownloadScenario(node_count=12, block_count=32,
                                 crystalball_mode=Mode.DEBUG, seed=3).run()
    rows = [
        ["baseline", baseline.nodes_completed, f"{median(baseline.sorted_times()):.1f}",
         baseline.service_bytes, 0],
        ["CrystalBall", monitored.nodes_completed,
         f"{median(monitored.sorted_times()):.1f}",
         monitored.service_bytes, monitored.checkpoint_bytes],
    ]
    print(format_table(
        ["run", "nodes done", "median completion (s)", "service bytes",
         "checkpoint bytes"],
        rows))
    rel = slowdown(baseline.sorted_times(), monitored.sorted_times())
    print(f"  relative median slowdown: {rel * 100:.1f}% "
          "(the paper reports <10% for a 20 MB download on 49 nodes)")
    print("  CDF (CrystalBall run):")
    for point in empirical_cdf(monitored.sorted_times())[::3]:
        print(f"    {point.fraction:5.2f} of nodes finished by {point.value:7.1f} s")


def main() -> None:
    predict_shadow_map_bug()
    compare_download_overhead()


if __name__ == "__main__":
    main()
