#!/usr/bin/env python3
"""Bullet' file distribution: the shadow-file-map bug and CrystalBall overhead.

Part 1 (Section 5.2.3): consequence prediction from a small Bullet' snapshot
predicts the file-map inconsistency caused by clearing the shadow map when
the bounded transport refuses a Diff.  The snapshot comes from the
registered ``shadow-map`` scenario.

Part 2 (Figure 17): the registered ``download`` scenario is run with and
without a CrystalBall controller attached, comparing completion-time CDFs
and the bandwidth spent on checkpoints.  The same runs are available as
``python -m repro run bulletprime --scenario download``.

Run with::

    python examples/bullet_download.py
"""

from __future__ import annotations

from repro.analysis import empirical_cdf, format_table, median, slowdown
from repro.api import Experiment


def predict_shadow_map_bug() -> None:
    report = (Experiment("bulletprime").scenario("shadow-map").run())
    print("Part 1 — predicting the shadow-file-map inconsistency:")
    print(f"  states visited: {report.outcome['states_visited']}, "
          f"violations: {report.outcome['violations']}")
    if report.outcome["shortest_violation"]:
        print(f"  {report.outcome['shortest_violation']}")
        for step, described in enumerate(report.outcome["shortest_path"], start=1):
            print(f"    {step}. {described}")
    print()


def compare_download_overhead() -> None:
    print("Part 2 — download completion times with and without CrystalBall:")
    common = dict(node_count=12, block_count=32)
    baseline = (Experiment("bulletprime").scenario("download")
                .mode("off").seed(3).options(**common).run())
    monitored = (Experiment("bulletprime").scenario("download")
                 .mode("debug").seed(3).options(**common).run())

    def times(report):
        return sorted(report.outcome["completion_times"].values())

    rows = [
        ["baseline", baseline.outcome["nodes_completed"],
         f"{median(times(baseline)):.1f}", baseline.outcome["service_bytes"], 0],
        ["CrystalBall", monitored.outcome["nodes_completed"],
         f"{median(times(monitored)):.1f}", monitored.outcome["service_bytes"],
         monitored.outcome["checkpoint_bytes"]],
    ]
    print(format_table(
        ["run", "nodes done", "median completion (s)", "service bytes",
         "checkpoint bytes"],
        rows))
    rel = slowdown(times(baseline), times(monitored))
    print(f"  relative median slowdown: {rel * 100:.1f}% "
          "(the paper reports <10% for a 20 MB download on 49 nodes)")
    print("  CDF (CrystalBall run):")
    for point in empirical_cdf(times(monitored))[::3]:
        print(f"    {point.fraction:5.2f} of nodes finished by {point.value:7.1f} s")


def main() -> None:
    predict_shadow_map_bug()
    compare_download_overhead()


if __name__ == "__main__":
    main()
