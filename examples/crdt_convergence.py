#!/usr/bin/env python3
"""CRDT replicas: predicted divergence of an LWW set, convergence of OR-Set.

Part 1 runs consequence prediction from the registered ``concurrent-ops``
snapshot: a remove of ``x`` racing a duplicate add.  In the buggy
last-writer-wins mode the duplicate resurrects the element on one replica
only, so the search falsifies both ``crdtset.converged`` and
``crdtset.no_tombstone_resurrection`` within a handful of transitions.
The same snapshot with ``fixed=True`` (the real OR-Set with causal
delivery and tag dedup) explores clean.

Part 2 runs the live anti-entropy deployment under a partition preset and
shows every replica converging to the same observable set and counter
value once the partitions heal — the convergence the pairwise property
checks throughout the run.

The same runs are available as::

    python -m repro run crdtset --scenario concurrent-ops
    python -m repro run crdtset --scenario partition-sync --mode debug

Run with::

    python examples/crdt_convergence.py
"""

from __future__ import annotations

from repro.api import Experiment


def falsify_lww_variant() -> int:
    print("Part 1 — model-checking the concurrent remove/duplicate-add "
          "race:")
    buggy = Experiment("crdtset").scenario("concurrent-ops").run()
    outcome = buggy.outcome
    print(f"  LWW mode: {outcome['violations']} violating states in "
          f"{outcome['states_visited']} explored")
    if outcome["shortest_violation"]:
        print(f"  first: {outcome['shortest_violation']}")
        for step, described in enumerate(outcome["shortest_path"], start=1):
            print(f"    {step}. {described}")

    fixed = (Experiment("crdtset").scenario("concurrent-ops")
             .options(fixed=True).run())
    print(f"  OR-Set mode (fixed=True): {fixed.outcome['violations']} "
          f"violations in {fixed.outcome['states_visited']} states")
    print()
    return outcome["violations"]


def converge_under_partitions() -> bool:
    print("Part 2 — live anti-entropy sync under healed partitions:")
    report = (Experiment("crdtset")
              .scenario("partition-sync")
              .seed(3)
              .run())
    outcome = report.outcome
    for node, observed in sorted(outcome["sets_by_node"].items()):
        print(f"  {node}: set={observed} "
              f"counter={outcome['counters_by_node'][node]}")
    print(f"  converged: {outcome['converged']}, "
          f"resurrections: {outcome['resurrections']}, "
          f"violations observed: {report.violations_observed()}")
    return bool(outcome["converged"])


def main() -> int:
    lww_violations = falsify_lww_variant()
    converged = converge_under_partitions()
    ok = lww_violations > 0 and converged
    if not ok:
        print("\nunexpected: LWW should be falsified and the OR-Set "
              "deployment should converge")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
