#!/usr/bin/env python3
"""Parallel model checking: sharded-frontier search and portfolio mode.

The controller's consequence prediction, the exhaustive baseline and the
filter-safety checks all run through a :class:`SearchEngine`.  This example
runs the same Figure 2 RandTree search through the serial engine and the
sharded-frontier parallel engine, shows they find the same inconsistencies,
and then races a portfolio of strategies (exhaustive, consequence
prediction, random walks) from the same snapshot.

The scripted snapshot comes from the unified API's registry; a live run
with the parallel engine is one builder chain away::

    Experiment("randtree").crystalball("debug", engine="parallel").run()

Run with::

    python examples/parallel_search.py
"""

from __future__ import annotations

import os

from repro.api import get_system
from repro.core import CrystalBallConfig
from repro.mc import (
    ParallelEngine,
    SearchBudget,
    SearchKind,
    SerialEngine,
    TransitionConfig,
    TransitionSystem,
    make_engine,
    run_portfolio,
)


def _keys(result):
    return sorted({(v.violation.property_name, str(v.violation.node))
                   for v in result.violations})


def main() -> None:
    randtree = get_system("randtree")
    scenario = randtree.scenarios["figure2"].build()
    properties = list(randtree.properties)
    snapshot = scenario.global_state()
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=True, max_resets_per_node=1))
    budget = SearchBudget(max_states=None, max_depth=5)

    print(f"Machine has {os.cpu_count()} CPU(s); searching the Figure 2 "
          f"snapshot to depth {budget.max_depth} with each engine.\n")
    engines = [SerialEngine(), ParallelEngine(num_workers=2)]
    results = []
    for engine in engines:
        result = engine.run(system, snapshot, properties, budget,
                            kind=SearchKind.EXHAUSTIVE)
        results.append(result)
        print(f"  {engine!r}: {result.stats.states_visited} states in "
              f"{result.stats.elapsed_seconds:.2f}s, "
              f"{len(result.violations)} violations")
    assert _keys(results[0]) == _keys(results[1])
    print("  -> both engines report the same (property, node) violations\n")

    print("The controller picks its engine from CrystalBallConfig:")
    config = CrystalBallConfig(engine="parallel:2")
    print(f"  CrystalBallConfig(engine='parallel:2') -> "
          f"{make_engine(config.engine)!r}\n")

    print("Portfolio mode races complementary strategies from one snapshot:")
    outcome = run_portfolio(system, snapshot, properties,
                            SearchBudget(max_states=2000, max_depth=8),
                            wall_clock_seconds=30.0, walks=2)
    for name in sorted(outcome.results):
        result = outcome.results[name]
        print(f"  {name:>12}: {result.stats.states_visited:>5} states, "
              f"{len(result.violations)} violations")
    print(f"  winner: {outcome.winner} "
          f"(first strategy to predict a violation)")
    union = outcome.union_violations()
    print(f"  union of predictions: {len(union)} distinct (property, node) pairs")
    best = union[0]
    print(f"  shallowest: {best.violation} (depth {best.depth})")


if __name__ == "__main__":
    main()
