"""Campaign sweeps: steering-off vs steering-on across seeds and faults.

The paper's headline numbers are aggregates — how often consequence
prediction plus execution steering avoids inconsistencies *across many
runs* — and the campaign subsystem is how the repo produces them.  This
example sweeps RandTree over seeds × fault presets × steering modes in one
worker-pool campaign, then reads the avoided-vs-observed story straight
off the per-axis rollups.

Run with::

    PYTHONPATH=src python examples/campaign_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Experiment
from repro.campaign import render_campaign_report


def main() -> int:
    report = (Experiment("randtree")
              .nodes(5)
              .duration(120)
              .network(rst_loss=0.6)
              .churn(False)
              .options(bootstrap_index=1, max_children=2,
                       fix_recovery_timer=True)
              .sweep(seeds=range(3),
                     faults=["partition", "partition-churn"],
                     modes=["off", "steering"],
                     jobs=2))

    print(render_campaign_report(report))
    print()

    off = report.rollups["mode"]["off"]
    steering = report.rollups["mode"]["steering"]
    print(f"steering off : {off['live_inconsistent_states']} live "
          f"inconsistent states over {off['runs']} runs")
    print(f"steering on  : {steering['live_inconsistent_states']} live "
          f"inconsistent states, {steering['violations_avoided']} "
          f"violations avoided over {steering['runs']} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
