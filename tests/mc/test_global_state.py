"""Tests for global states."""

from repro.mc import ErrorNotification, GlobalState
from repro.runtime import Address, Message
from repro.systems.randtree import RandTree, RandTreeConfig


def _protocol():
    return RandTree(RandTreeConfig(bootstrap=(Address(1),)))


def _state(addr, **kwargs):
    state = _protocol().initial_state(addr)
    for key, value in kwargs.items():
        setattr(state, key, value)
    return state


def test_from_snapshot_builds_node_locals():
    a, b = Address(1), Address(2)
    gs = GlobalState.from_snapshot({a: _state(a), b: _state(b)},
                                   timers={a: ["recovery"]})
    assert set(gs.nodes) == {a, b}
    assert gs.nodes[a].timers == frozenset({"recovery"})
    assert gs.nodes[b].timers == frozenset()


def test_state_hash_stable_and_sensitive():
    a = Address(1)
    gs1 = GlobalState.from_snapshot({a: _state(a)})
    gs2 = GlobalState.from_snapshot({a: _state(a)})
    gs3 = GlobalState.from_snapshot({a: _state(a, joined=True)})
    assert gs1.state_hash() == gs2.state_hash()
    assert gs1.state_hash() != gs3.state_hash()


def test_hash_sensitive_to_inflight_and_errors():
    a, b = Address(1), Address(2)
    base = GlobalState.from_snapshot({a: _state(a), b: _state(b)})
    msg = Message(mtype="Join", src=a, dst=b, payload={})
    with_msg = GlobalState.from_snapshot({a: _state(a), b: _state(b)},
                                         inflight=[msg])
    assert base.state_hash() != with_msg.state_hash()
    from dataclasses import replace
    with_err = replace(base, errors=(ErrorNotification(dst=a, peer=b),))
    assert base.state_hash() != with_err.state_hash()


def test_clone_is_independent():
    a = Address(1)
    gs = GlobalState.from_snapshot({a: _state(a)})
    copy = gs.clone()
    copy.nodes[a].state.joined = True
    assert gs.nodes[a].state.joined is False


def test_reset_counts_accumulate():
    a = Address(1)
    gs = GlobalState.from_snapshot({a: _state(a)})
    assert gs.reset_count(a) == 0
    gs2 = gs.with_reset(a).with_reset(a)
    assert gs2.reset_count(a) == 2
    assert gs.reset_count(a) == 0
    assert gs.state_hash() != gs2.state_hash()


def test_size_bytes_positive_and_cached():
    a = Address(1)
    gs = GlobalState.from_snapshot({a: _state(a)})
    size = gs.size_bytes()
    assert size > 0
    assert gs.size_bytes() == size


def test_describe_mentions_nodes():
    a = Address(1)
    gs = GlobalState.from_snapshot({a: _state(a)})
    assert "RandTreeState" in gs.describe()
