"""Tests for exhaustive search, random walks and search bookkeeping."""

from repro.core import consequence_prediction
from repro.mc import (
    SearchBudget,
    SearchStats,
    TransitionConfig,
    TransitionSystem,
    find_errors,
    random_walk_search,
)
from repro.systems.randtree import ALL_PROPERTIES, Figure2Scenario


def _system(scenario, **config):
    defaults = dict(enable_resets=True, max_resets_per_node=1)
    defaults.update(config)
    return TransitionSystem(scenario.protocol, TransitionConfig(**defaults))


def test_budget_limits_states():
    budget = SearchBudget(max_states=5)
    stats = SearchStats()
    assert not budget.exhausted(stats)
    stats.states_visited = 5
    assert budget.exhausted(stats)


def test_budget_depth_allowed():
    budget = SearchBudget(max_depth=3)
    assert budget.depth_allowed(3)
    assert not budget.depth_allowed(4)
    assert SearchBudget().depth_allowed(1000)


def test_exhaustive_respects_state_budget():
    scenario = Figure2Scenario.build()
    result = find_errors(_system(scenario), scenario.global_state(),
                         ALL_PROPERTIES, SearchBudget(max_states=50))
    assert result.stats.states_visited <= 50


def test_exhaustive_finds_violation_with_enough_budget():
    scenario = Figure2Scenario.build()
    result = find_errors(_system(scenario), scenario.global_state(),
                         ALL_PROPERTIES,
                         SearchBudget(max_states=4000, max_depth=4))
    assert result.stats.max_depth_reached >= 2
    # Shallow depths already expose the "reset node re-joins itself" family.
    assert result.found_violation


def test_exhaustive_visits_no_duplicate_states():
    scenario = Figure2Scenario.build()
    result = find_errors(_system(scenario, enable_resets=False),
                         scenario.global_state(), ALL_PROPERTIES,
                         SearchBudget(max_states=500, max_depth=6))
    assert result.stats.states_visited <= 500
    assert result.stats.states_visited > 0


def test_stop_at_first_violation_short_circuits():
    scenario = Figure2Scenario.build()
    full = find_errors(_system(scenario), scenario.global_state(),
                       ALL_PROPERTIES, SearchBudget(max_states=3000, max_depth=4))
    early = find_errors(_system(scenario), scenario.global_state(),
                        ALL_PROPERTIES,
                        SearchBudget(max_states=3000, max_depth=4,
                                     stop_at_first_violation=True))
    assert early.stats.states_visited <= full.stats.states_visited


def test_consequence_prediction_skips_explored_local_actions():
    scenario = Figure2Scenario.build()
    result = consequence_prediction(_system(scenario), scenario.global_state(),
                                    ALL_PROPERTIES,
                                    SearchBudget(max_states=1500, max_depth=6))
    assert result.stats.internal_actions_skipped > 0


def test_consequence_prediction_visits_fewer_states_than_bfs_at_same_depth():
    scenario = Figure2Scenario.build()
    budget = SearchBudget(max_states=100000, max_depth=4)
    cp = consequence_prediction(_system(scenario), scenario.global_state(),
                                ALL_PROPERTIES, budget)
    bfs = find_errors(_system(scenario), scenario.global_state(),
                      ALL_PROPERTIES, budget)
    assert cp.stats.states_visited < bfs.stats.states_visited


def test_consequence_prediction_finds_figure2_bug():
    scenario = Figure2Scenario.build()
    result = consequence_prediction(_system(scenario), scenario.global_state(),
                                    ALL_PROPERTIES,
                                    SearchBudget(max_states=8000, max_depth=9))
    assert "randtree.children_siblings_disjoint" in result.unique_property_names()
    violation = min((v for v in result.violations
                     if v.violation.property_name == "randtree.children_siblings_disjoint"),
                    key=lambda v: v.depth)
    assert violation.path  # a real event path, suitable for steering/replay


def test_fixed_protocol_no_longer_predicts_the_figure2_bug():
    scenario = Figure2Scenario.build(fixed=True)
    result = consequence_prediction(_system(scenario), scenario.global_state(),
                                    ALL_PROPERTIES,
                                    SearchBudget(max_states=4000, max_depth=8))
    names = result.unique_property_names()
    assert "randtree.children_siblings_disjoint" not in names
    assert "randtree.recovery_timer_running" not in names


def test_random_walk_reaches_depth_and_reports():
    scenario = Figure2Scenario.build()
    result = random_walk_search(_system(scenario), scenario.global_state(),
                                ALL_PROPERTIES, walks=10, walk_depth=12, seed=3)
    assert result.stats.max_depth_reached > 4
    assert result.stats.transitions_applied > 0


def test_search_stats_memory_accounting():
    scenario = Figure2Scenario.build()
    result = consequence_prediction(_system(scenario), scenario.global_state(),
                                    ALL_PROPERTIES,
                                    SearchBudget(max_states=300, max_depth=5))
    assert result.stats.peak_memory_bytes > 0
    assert result.stats.memory_per_state() > 0
    assert sum(result.stats.states_by_depth.values()) == result.stats.states_visited
