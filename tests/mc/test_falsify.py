"""Unit tests for repro.mc.falsify with toy executors (no live runs)."""

import pytest

from repro.mc import (
    FalsificationEngine,
    greedy_minimize,
    seeded_candidates,
)

# Any registered property id works for the engine's up-front validation;
# the toy executors never run the property itself.
PROPERTY = "paxos.agreement"


def test_engine_rejects_unknown_property_up_front():
    with pytest.raises(ValueError, match="no registered"):
        FalsificationEngine("no.such.property", lambda c: None, [])


def test_falsify_stops_at_first_violating_candidate():
    executed = []

    def execute(candidate):
        executed.append(candidate)
        return "boom" if candidate >= 3 else None

    engine = FalsificationEngine(
        PROPERTY, execute, seeded_candidates(lambda seed: seed))
    result = engine.falsify()
    assert result.found
    assert result.candidate == 3
    assert result.evidence == "boom"
    assert result.attempts == 4
    assert executed == [0, 1, 2, 3]  # nothing past the first violation


def test_falsify_respects_the_attempt_budget():
    engine = FalsificationEngine(
        PROPERTY, lambda candidate: None,
        seeded_candidates(lambda seed: seed), max_attempts=5)
    result = engine.falsify()
    assert not result.found
    assert result.attempts == 5
    assert result.candidate is None


def test_falsify_drains_finite_candidates_without_budget():
    result = FalsificationEngine(
        PROPERTY, lambda candidate: None, [1, 2, 3]).falsify()
    assert not result.found
    assert result.attempts == 3


# -- greedy_minimize ---------------------------------------------------------

def _drop_one(candidate):
    """Propose every variant with one element removed."""
    for index in range(len(candidate)):
        yield candidate[:index] + candidate[index + 1:]


def test_greedy_minimize_reaches_the_1_minimal_core():
    # The "violation" needs both 3 and 5; everything else is noise.
    def execute(candidate):
        return "boom" if {3, 5} <= set(candidate) else None

    result = greedy_minimize(
        (1, 3, 2, 5, 4), "boom", [("drop", _drop_one)], execute)
    assert sorted(result.candidate) == [3, 5]
    assert result.evidence == "boom"
    assert result.reductions == ["drop"] * 3
    assert result.executions > 0


def test_greedy_minimize_keeps_original_when_nothing_shrinks():
    def execute(candidate):
        return "boom" if len(candidate) >= 3 else None

    result = greedy_minimize(
        (1, 2, 3), "orig", [("drop", _drop_one)], execute)
    assert result.candidate == (1, 2, 3)
    assert result.evidence == "orig"
    assert result.reductions == []


def test_greedy_minimize_stops_at_the_execution_budget():
    calls = []

    def execute(candidate):
        calls.append(candidate)
        return "boom"  # everything "violates": unbounded greed

    result = greedy_minimize(
        tuple(range(10)), "boom", [("drop", _drop_one)], execute,
        max_executions=4)
    assert result.executions == 4
    assert len(calls) == 4
    # Each accepted reduction dropped exactly one element.
    assert len(result.candidate) == 10 - len(result.reductions)


def test_greedy_minimize_tries_reducers_in_order():
    accepted = []

    def execute(candidate):
        return "boom"

    def noop(candidate):
        return iter(())  # proposes nothing; next reducer gets its turn

    def shrink(candidate):
        if candidate:
            yield candidate[1:]

    result = greedy_minimize(
        (1, 2), "boom", [("noop", noop), ("shrink", shrink)], execute)
    assert result.candidate == ()
    assert result.reductions == ["shrink", "shrink"]


def test_seeded_candidates_starts_at_offset():
    stream = seeded_candidates(lambda seed: seed * 10, start=3)
    assert [next(stream) for _ in range(3)] == [30, 40, 50]
