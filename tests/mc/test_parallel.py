"""Parallel engine: serial/parallel equivalence, portfolio mode, budgets."""

import pytest

from repro.core import CrystalBallConfig, CrystalBallController
from repro.mc import (
    GlobalState,
    ParallelEngine,
    SearchBudget,
    SearchKind,
    SerialEngine,
    TransitionConfig,
    TransitionSystem,
    find_errors,
    make_engine,
    run_portfolio,
)
from repro.runtime import Address
from repro.systems import bulletprime, chord, paxos, randtree
from repro.systems.bulletprime.protocol import DIFF_TIMER, REQUEST_TIMER


def _randtree_case():
    scenario = randtree.Figure2Scenario.build()
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=True, max_resets_per_node=1))
    return system, scenario.global_state(), randtree.ALL_PROPERTIES, 4


def _chord_case():
    scenario = chord.Figure10Scenario.build()
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=True, max_resets_per_node=1))
    return system, scenario.global_state(), chord.ALL_PROPERTIES, 3


def _paxos_case():
    scenario = paxos.Figure13Scenario(bug=1)
    protocol = scenario.build_protocol()
    a, b, c = scenario.addresses
    states = {addr: protocol.initial_state(addr) for addr in (a, b, c)}
    states[a].pending_proposal = 0
    states[b].pending_proposal = 1
    system = TransitionSystem(protocol, TransitionConfig(enable_resets=False))
    return system, GlobalState.from_snapshot(states), paxos.ALL_PROPERTIES, 4


def _bulletprime_case():
    src, rcv = Address(1), Address(2)
    protocol = bulletprime.BulletPrime(bulletprime.BulletConfig(
        source=src, mesh={src: (rcv,), rcv: (src,)}, block_count=2,
        fix_shadow_map=False))
    states = {addr: protocol.initial_state(addr) for addr in (src, rcv)}
    timers = {src: [DIFF_TIMER], rcv: [REQUEST_TIMER]}
    system = TransitionSystem(protocol, TransitionConfig(enable_resets=False))
    return system, GlobalState.from_snapshot(states, timers=timers), \
        bulletprime.ALL_PROPERTIES, 4


CASES = {
    "randtree": _randtree_case,
    "chord": _chord_case,
    "paxos": _paxos_case,
    "bulletprime": _bulletprime_case,
}


def _violation_keys(result):
    return {(v.violation.property_name, v.violation.node)
            for v in result.violations}


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_parallel_engine_equivalent_to_serial(case):
    """Same violations, same visited state-hash set, same depth histogram."""
    system, start, properties, depth = CASES[case]()
    budget = SearchBudget(max_states=None, max_depth=depth,
                          record_visited_hashes=True)

    serial = SerialEngine().run(system, start, properties, budget,
                                kind=SearchKind.EXHAUSTIVE)
    parallel = ParallelEngine(num_workers=2).run(
        system, start, properties, budget, kind=SearchKind.EXHAUSTIVE)

    assert _violation_keys(parallel) == _violation_keys(serial)
    assert parallel.stats.visited_hashes == serial.stats.visited_hashes
    assert parallel.stats.states_visited == serial.stats.states_visited
    assert parallel.stats.states_by_depth == serial.stats.states_by_depth
    # Breadth-first level synchronisation keeps reported depths minimal.
    assert ({(v.violation.property_name, v.violation.node, v.depth)
             for v in parallel.violations}
            == {(v.violation.property_name, v.violation.node, v.depth)
                for v in serial.violations})


def test_parallel_consequence_prediction_covers_serial():
    """Parallel Figure 8 merges localExplored at round boundaries, so it
    explores a superset of the serial pruning — never less."""
    system, start, properties, _ = _randtree_case()
    budget = SearchBudget(max_states=None, max_depth=5,
                          record_visited_hashes=True)
    serial = SerialEngine().run(system, start, properties, budget,
                                kind=SearchKind.CONSEQUENCE)
    parallel = ParallelEngine(num_workers=2).run(
        system, start, properties, budget, kind=SearchKind.CONSEQUENCE)
    assert _violation_keys(serial) <= _violation_keys(parallel)
    assert serial.stats.visited_hashes <= parallel.stats.visited_hashes


def test_parallel_respects_max_states_budget():
    system, start, properties, _ = _randtree_case()
    result = ParallelEngine(num_workers=2).run(
        system, start, properties, SearchBudget(max_states=100, max_depth=None))
    assert result.stats.states_visited <= 100


def test_parallel_stop_at_first_violation():
    system, start, properties, _ = _randtree_case()
    full = ParallelEngine(num_workers=2).run(
        system, start, properties, SearchBudget(max_states=None, max_depth=4))
    early = ParallelEngine(num_workers=2).run(
        system, start, properties,
        SearchBudget(max_states=None, max_depth=4,
                     stop_at_first_violation=True))
    assert early.found_violation
    assert early.stats.states_visited < full.stats.states_visited


def test_queued_hash_set_prevents_duplicate_enqueues():
    """Satellite fix: in a completed search every enqueued state is visited
    exactly once — re-enqueues from different parents are counted as
    duplicates instead of growing the frontier."""
    system, start, properties, _ = _randtree_case()
    result = find_errors(system, start, properties,
                         SearchBudget(max_states=None, max_depth=4))
    assert result.stats.states_visited == result.stats.states_enqueued + 1
    assert result.stats.duplicate_states > 0
    assert result.stats.frontier_bytes == 0


def test_max_frontier_bytes_bounds_the_search():
    system, start, properties, _ = _randtree_case()
    unbounded = find_errors(system, start, properties,
                            SearchBudget(max_states=None, max_depth=4))
    bounded = find_errors(system, start, properties,
                          SearchBudget(max_states=None, max_depth=4,
                                       max_frontier_bytes=10_000))
    assert bounded.stats.states_visited < unbounded.stats.states_visited


def test_make_engine_specs():
    assert isinstance(make_engine(None), SerialEngine)
    assert isinstance(make_engine("serial"), SerialEngine)
    assert isinstance(make_engine("parallel"), ParallelEngine)
    engine = make_engine("parallel:3")
    assert isinstance(engine, ParallelEngine) and engine.num_workers == 3
    assert make_engine(engine) is engine
    with pytest.raises(ValueError):
        make_engine("quantum")
    with pytest.raises(ValueError):
        make_engine("parallel:abc")
    with pytest.raises(ValueError):
        make_engine("parallel:0")


def test_controller_selects_engine_from_config():
    scenario = randtree.Figure2Scenario.build()
    config = CrystalBallConfig(engine="parallel:2")
    controller = CrystalBallController(Address(9), scenario.protocol,
                                       randtree.ALL_PROPERTIES, config)
    assert isinstance(controller.engine, ParallelEngine)
    assert controller.engine.num_workers == 2
    default = CrystalBallController(Address(9), scenario.protocol,
                                    randtree.ALL_PROPERTIES)
    assert isinstance(default.engine, SerialEngine)


def test_portfolio_finds_the_figure2_violation():
    system, start, properties, _ = _randtree_case()
    outcome = run_portfolio(system, start, properties,
                            SearchBudget(max_states=2000, max_depth=8),
                            wall_clock_seconds=60.0, walks=2)
    assert outcome.found_violation
    assert outcome.winner is not None
    names = {v.violation.property_name for v in outcome.union_violations()}
    assert "randtree.children_siblings_disjoint" in names
    merged = outcome.merged_result(start)
    assert merged.found_violation
    # One violation per (property, node) in the union.
    keys = [(v.violation.property_name, v.violation.node)
            for v in outcome.union_violations()]
    assert len(keys) == len(set(keys))


def test_parallel_rejects_event_filter_outside_consequence():
    system, start, properties, _ = _randtree_case()
    with pytest.raises(ValueError):
        ParallelEngine(num_workers=2).run(
            system, start, properties, SearchBudget(max_states=10),
            kind=SearchKind.EXHAUSTIVE, event_filter=lambda event: None)


def test_portfolio_reports_crashing_strategies():
    system, start, properties, _ = _randtree_case()

    def boom():
        raise RuntimeError("strategy exploded")

    outcome = run_portfolio(
        system, start, properties, wall_clock_seconds=30.0,
        strategies=[("boom", boom),
                    ("ok", lambda: find_errors(
                        system, start, properties,
                        SearchBudget(max_states=50, max_depth=3)))])
    assert "boom" in outcome.errors
    assert "strategy exploded" in outcome.errors["boom"]
    assert "ok" in outcome.results
    assert "boom" not in outcome.unfinished


def test_portfolio_first_violation_wins_returns_early():
    system, start, properties, _ = _randtree_case()
    outcome = run_portfolio(system, start, properties,
                            SearchBudget(max_states=4000, max_depth=8),
                            wall_clock_seconds=60.0, walks=1,
                            first_violation_wins=True)
    assert outcome.winner is not None
    assert outcome.results[outcome.winner].found_violation
