"""Tests for the safety-property framework."""

from repro.mc import GlobalState, SafetyProperty, check_all, node_property
from repro.runtime import Address
from repro.systems.randtree import RandTree, RandTreeConfig


def _gs(**node_kwargs):
    protocol = RandTree(RandTreeConfig())
    a = Address(1)
    state = protocol.initial_state(a)
    for key, value in node_kwargs.items():
        setattr(state, key, value)
    return a, GlobalState.from_snapshot({a: state})


def test_safety_property_holds_and_violations():
    prop = SafetyProperty("always_fails", lambda gs: [(None, "boom")])
    _, gs = _gs()
    assert not prop.holds(gs)
    violations = prop.violations(gs)
    assert len(violations) == 1
    assert violations[0].property_name == "always_fails"
    assert "boom" in str(violations[0])


def test_node_property_reports_per_node():
    prop = node_property("joined_nodes_have_root",
                         lambda addr, state, timers, gs:
                         ["joined without root"] if state.joined and state.root is None else [])
    a, ok = _gs(joined=False)
    assert prop.holds(ok)
    a, bad = _gs(joined=True, root=None)
    violations = prop.violations(bad)
    assert violations and violations[0].node == a


def test_check_all_combines_properties():
    p1 = SafetyProperty("p1", lambda gs: [(None, "x")])
    p2 = SafetyProperty("p2", lambda gs: [])
    _, gs = _gs()
    found = check_all([p1, p2], gs)
    assert [v.property_name for v in found] == ["p1"]
