"""Tests for the transition system (the ``;`` relation of Figure 4)."""

from repro.mc import GlobalState, TransitionConfig, TransitionSystem
from repro.runtime import Address, MessageEvent, ResetEvent, TimerEvent
from repro.systems.randtree import (
    JOIN,
    JOIN_TIMER,
    RandTree,
    RandTreeConfig,
)


def _setup(n=2, **config):
    addrs = [Address(i + 1) for i in range(n)]
    protocol = RandTree(RandTreeConfig(bootstrap=(addrs[0],)))
    states = {a: protocol.initial_state(a) for a in addrs}
    timers = {a: [JOIN_TIMER] for a in addrs}
    gs = GlobalState.from_snapshot(states, timers=timers)
    system = TransitionSystem(protocol, TransitionConfig(**config))
    return addrs, protocol, gs, system


def test_internal_events_include_timers_and_resets():
    addrs, _, gs, system = _setup()
    events = system.internal_events(gs, addrs[0])
    kinds = {type(e).__name__ for e in events}
    assert "TimerEvent" in kinds and "ResetEvent" in kinds


def test_reset_bound_respected():
    addrs, _, gs, system = _setup(max_resets_per_node=1)
    after = system.apply(gs, ResetEvent(node=addrs[0]))
    assert not any(isinstance(e, ResetEvent)
                   for e in system.internal_events(after, addrs[0]))


def test_disable_resets_removes_reset_actions():
    addrs, _, gs, system = _setup(enable_resets=False)
    assert not any(isinstance(e, ResetEvent)
                   for e in system.internal_events(gs, addrs[0]))


def test_timer_event_consumes_timer_and_produces_messages():
    addrs, _, gs, system = _setup()
    # Node 2's join timer fires: it sends a Join to the bootstrap node 1.
    after = system.apply(gs, TimerEvent(node=addrs[1], timer=JOIN_TIMER))
    assert JOIN_TIMER in after.nodes[addrs[1]].timers  # re-armed while not joined
    assert any(m.mtype == JOIN and m.dst == addrs[0] for m in after.inflight)
    # Original state untouched.
    assert not gs.inflight


def test_message_event_removes_message_from_network():
    addrs, _, gs, system = _setup()
    mid = system.apply(gs, TimerEvent(node=addrs[1], timer=JOIN_TIMER))
    join = next(m for m in mid.inflight if m.mtype == JOIN)
    after = system.apply(mid, MessageEvent(node=addrs[0], message=join))
    assert join not in after.inflight
    assert addrs[1] in after.nodes[addrs[0]].state.children


def test_messages_to_unknown_nodes_are_dropped():
    addrs, protocol, gs, system = _setup()
    # Remove the bootstrap node from the snapshot: the Join goes to the dummy.
    partial = GlobalState.from_snapshot(
        {addrs[1]: gs.nodes[addrs[1]].state.clone()},
        timers={addrs[1]: [JOIN_TIMER]})
    after = system.apply(partial, TimerEvent(node=addrs[1], timer=JOIN_TIMER))
    assert after.inflight == ()


def test_reset_produces_error_notifications_for_neighbors():
    addrs, protocol, gs, system = _setup()
    # Make node 2 a child of node 1 so they are neighbours.
    gs.nodes[addrs[0]].state.children.add(addrs[1])
    gs.nodes[addrs[0]].state.refresh_peers()
    gs.nodes[addrs[1]].state.parent = addrs[0]
    gs.nodes[addrs[1]].state.refresh_peers()
    after = system.apply(gs, ResetEvent(node=addrs[1]))
    assert any(e.dst == addrs[0] and e.peer == addrs[1] for e in after.errors)
    assert after.reset_count(addrs[1]) == 1
    # The reset node's own state is fresh.
    assert after.nodes[addrs[1]].state.joined is False


def test_apply_filtered_consumes_message_without_handler():
    addrs, _, gs, system = _setup()
    mid = system.apply(gs, TimerEvent(node=addrs[1], timer=JOIN_TIMER))
    join = next(m for m in mid.inflight if m.mtype == JOIN)
    event = MessageEvent(node=addrs[0], message=join)
    steered = system.apply_filtered(mid, event, reset_connection=True)
    assert join not in steered.inflight
    # Handler did not run: node 1 has no children.
    assert not steered.nodes[addrs[0]].state.children
    # The sender is notified via a connection error.
    assert any(e.dst == addrs[1] for e in steered.errors)


def test_enabled_events_cover_network_and_internal():
    addrs, _, gs, system = _setup()
    mid = system.apply(gs, TimerEvent(node=addrs[1], timer=JOIN_TIMER))
    events = system.enabled_events(mid)
    assert any(isinstance(e, MessageEvent) for e in events)
    assert any(isinstance(e, TimerEvent) for e in events)
