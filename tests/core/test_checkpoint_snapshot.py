"""Tests for checkpoints, checkpoint storage and neighbourhood snapshots."""

from repro.core import Checkpoint, CheckpointStore, NeighborhoodSnapshot, PeerTransferCache
from repro.core.snapshot import SnapshotGather, cluster_recent_peers
from repro.runtime import Address
from repro.systems.randtree import RandTree, RandTreeConfig


def _checkpoint(addr, cn, **state_kwargs):
    protocol = RandTree(RandTreeConfig())
    state = protocol.initial_state(addr)
    for key, value in state_kwargs.items():
        setattr(state, key, value)
    return Checkpoint(node=addr, checkpoint_number=cn, state=state,
                      timers=frozenset({"recovery"}))


def test_checkpoint_sizes_positive():
    cp = _checkpoint(Address(1), 1)
    assert cp.size_bytes() > 0
    assert cp.compressed_bytes() > 0


def test_store_quota_prunes_oldest():
    store = CheckpointStore(quota=3)
    for cn in range(1, 6):
        store.record(_checkpoint(Address(1), cn))
    assert len(store) == 3
    assert store.pruned == 2
    assert store.latest().checkpoint_number == 5
    assert store.checkpoints[0].checkpoint_number == 3


def test_store_respond_returns_earliest_satisfying_checkpoint():
    store = CheckpointStore(quota=10)
    for cn in (2, 4, 6):
        store.record(_checkpoint(Address(1), cn))
    assert store.respond(3).checkpoint_number == 4
    assert store.respond(6).checkpoint_number == 6
    assert store.respond(7) is None  # pruned / not yet taken


def test_peer_transfer_cache_discounts_unchanged_checkpoints():
    cache = PeerTransferCache()
    peer = Address(2)
    cp = _checkpoint(Address(1), 1, joined=True)
    first = cache.transfer_cost(peer, cp)
    second = cache.transfer_cost(peer, _checkpoint(Address(1), 2, joined=True))
    assert second < first
    assert cache.bytes_saved > 0


def test_snapshot_gather_completion_and_negatives():
    origin = Address(1)
    expected = frozenset({Address(2), Address(3)})
    gather = SnapshotGather(origin=origin, checkpoint_number=5, expected=expected)
    assert not gather.complete
    gather.record_response(_checkpoint(Address(2), 5))
    gather.record_negative(Address(3), current_cn=2)
    assert gather.complete
    assert gather.retry_checkpoint_number() == 2
    assert gather.missing == frozenset()


def test_snapshot_from_gather_includes_local_and_tracks_missing():
    origin = Address(1)
    gather = SnapshotGather(origin=origin, checkpoint_number=3,
                            expected=frozenset({Address(2), Address(3)}))
    gather.record_response(_checkpoint(Address(2), 3))
    snapshot = NeighborhoodSnapshot.from_gather(gather, _checkpoint(origin, 3))
    assert origin in snapshot.members
    assert Address(2) in snapshot.members
    assert Address(3) in snapshot.missing
    assert snapshot.is_consistent()
    assert snapshot.total_bytes() > 0


def test_snapshot_to_global_state_clones_states():
    origin = Address(1)
    local = _checkpoint(origin, 1, joined=True)
    snapshot = NeighborhoodSnapshot(origin=origin, checkpoint_number=1,
                                    checkpoints={origin: local})
    gs = snapshot.to_global_state()
    gs.nodes[origin].state.joined = False
    assert local.state.joined is True
    assert gs.nodes[origin].timers == frozenset({"recovery"})


def test_snapshot_inconsistent_when_checkpoint_older_than_requested():
    origin = Address(1)
    snapshot = NeighborhoodSnapshot(
        origin=origin, checkpoint_number=5,
        checkpoints={origin: _checkpoint(origin, 4)})
    assert not snapshot.is_consistent()


def test_cluster_recent_peers_filters_by_window_and_caps():
    now = 100.0
    contacts = {Address(i): now - i * 10 for i in range(1, 10)}
    recent = cluster_recent_peers(contacts, now=now, window=30.0, max_peers=2)
    assert len(recent) == 2
    assert Address(1) in recent
