"""Tests for event filters, steering-point selection and filter safety."""

from repro.core import (
    EventFilter,
    check_filter_safety,
    choose_steering_point,
    consequence_prediction,
    derive_filter,
    evaluate_violation,
)
from repro.mc import SearchBudget, TransitionConfig, TransitionSystem
from repro.runtime import Address, AppEvent, FilterAction, Message, MessageEvent, ResetEvent, TimerEvent
from repro.systems.randtree import ALL_PROPERTIES, Figure2Scenario, UPDATE_SIBLING


def _message_event(node, mtype="Join", src=None):
    src = src or Address(9)
    return MessageEvent(node=node,
                        message=Message(mtype=mtype, src=src, dst=node, payload={}))


def test_message_filter_matches_type_source_and_node():
    node, src = Address(1), Address(2)
    flt = EventFilter(node=node, message_type="Join", message_src=src)
    assert flt.matches(_message_event(node, "Join", src))
    assert not flt.matches(_message_event(node, "Join", Address(3)))
    assert not flt.matches(_message_event(Address(5), "Join", src))
    assert not flt.matches(_message_event(node, "Probe", src))


def test_timer_filter_is_delayed_not_dropped():
    node = Address(1)
    flt = EventFilter(node=node, timer_name="recovery",
                      action=FilterAction.DROP_AND_RESET)
    event = TimerEvent(node=node, timer="recovery")
    assert flt.matches(event)
    assert flt.decision(event) is FilterAction.DELAY


def test_derive_filter_for_each_event_kind():
    node = Address(1)
    assert derive_filter(node, _message_event(node)).message_type == "Join"
    assert derive_filter(node, TimerEvent(node=node, timer="t")).timer_name == "t"
    assert derive_filter(node, AppEvent(node=node, call="join")).app_call == "join"
    assert derive_filter(node, ResetEvent(node=node)) is None
    assert derive_filter(node, _message_event(Address(2))) is None


def test_filter_describe_is_readable():
    flt = EventFilter(node=Address(1), message_type="Join", message_src=Address(2))
    text = flt.describe()
    assert "Join" in text and "drop" in text


def _figure2_prediction():
    scenario = Figure2Scenario.build()
    system = TransitionSystem(scenario.protocol,
                              TransitionConfig(enable_resets=True,
                                               max_resets_per_node=1))
    snapshot = scenario.global_state()
    result = consequence_prediction(system, snapshot, ALL_PROPERTIES,
                                    SearchBudget(max_states=8000, max_depth=9))
    violation = min((v for v in result.violations
                     if v.violation.property_name == "randtree.children_siblings_disjoint"),
                    key=lambda v: v.depth)
    return scenario, system, snapshot, result, violation


def test_choose_steering_point_picks_local_message_event():
    scenario, system, snapshot, result, violation = _figure2_prediction()
    point = choose_steering_point(scenario.n9, violation)
    assert point is not None
    assert point.node == scenario.n9
    # Node 1 also has a handler on the path (the forwarded Join).
    assert choose_steering_point(scenario.n1, violation) is not None
    # The resetting node n13 cannot steer its own reset.
    point13 = choose_steering_point(scenario.n13, violation)
    assert point13 is None or point13.node == scenario.n13


def test_evaluate_violation_installs_safe_filter_for_figure2():
    scenario, system, snapshot, result, violation = _figure2_prediction()
    decision = evaluate_violation(scenario.n9, system, snapshot, ALL_PROPERTIES,
                                  violation,
                                  expected_violations=result.violations)
    assert decision.filter is not None
    assert decision.actionable
    assert decision.filter.node == scenario.n9


def test_check_filter_safety_flags_nothing_for_benign_filter():
    scenario, system, snapshot, result, violation = _figure2_prediction()
    flt = EventFilter(node=scenario.n9, message_type=UPDATE_SIBLING,
                      message_src=scenario.n1)
    assert check_filter_safety(system, snapshot, ALL_PROPERTIES, flt,
                               budget=SearchBudget(max_states=400, max_depth=6),
                               expected_violations=result.violations)
