"""Tests for the CrystalBall controller attached to a live simulation."""

from repro.core import (
    CrystalBallConfig,
    LivePropertyMonitor,
    Mode,
    attach_crystalball,
)
from repro.mc import SearchBudget, TransitionConfig
from repro.runtime import NetworkModel, Simulator, make_addresses
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _build_sim(n=3, seed=1, mode=Mode.DEBUG, max_states=300, bootstrap_index=0,
               fix_recovery_timer=False):
    addrs = make_addresses(n)
    protocol_config = RandTreeConfig(bootstrap=(addrs[bootstrap_index],),
                                     max_children=2,
                                     fix_recovery_timer=fix_recovery_timer)
    sim = Simulator(lambda: RandTree(protocol_config), NetworkModel(),
                    seed=seed, tick_interval=10.0)
    for a in addrs:
        sim.add_node(a)
    config = CrystalBallConfig(
        mode=mode,
        search_budget=SearchBudget(max_states=max_states, max_depth=6),
        transition=TransitionConfig(enable_resets=True, max_resets_per_node=1),
    )
    controllers = attach_crystalball(sim, ALL_PROPERTIES, config=config)
    for i, a in enumerate(addrs):
        sim.schedule_app(1.0 + 3 * i, a, "join", {})
    return sim, addrs, controllers


def test_controllers_collect_snapshots_and_run_model_checker():
    sim, addrs, controllers = _build_sim()
    sim.run(until=80.0)
    total_runs = sum(c.stats.model_checker_runs for c in controllers.values())
    total_snapshots = sum(c.stats.snapshots_collected for c in controllers.values())
    assert total_runs > 0
    assert total_snapshots > 0
    assert all(c.stats.checkpoints_taken > 0 for c in controllers.values())


def test_checkpoint_requests_and_responses_flow():
    sim, addrs, controllers = _build_sim()
    sim.run(until=80.0)
    requests = sum(c.stats.checkpoint_requests_sent for c in controllers.values())
    responses = sum(c.stats.checkpoint_responses_sent for c in controllers.values())
    assert requests > 0
    assert responses > 0
    assert sum(c.stats.checkpoint_bytes_sent for c in controllers.values()) > 0


def test_debug_mode_predicts_violations_after_reset():
    sim, addrs, controllers = _build_sim(seed=2)
    sim.network.rst_loss_probability = 1.0
    sim.schedule_reset(30.0, addrs[2])
    sim.run(until=120.0)
    predicted = sum(c.stats.violations_predicted for c in controllers.values())
    assert predicted > 0
    # Debug mode never installs filters.
    assert all(c.stats.filters_installed == 0 for c in controllers.values())


def test_steering_mode_installs_filters_and_reduces_inconsistencies():
    # Bootstrap through the middle node so the Figure 2 topology forms (the
    # smallest node takes over the root role); the recovery-timer bug is
    # assumed fixed so the remaining inconsistencies are the steerable ones.
    sim, addrs, controllers = _build_sim(seed=2, mode=Mode.STEERING,
                                         max_states=800, bootstrap_index=1,
                                         fix_recovery_timer=True)
    LivePropertyMonitor(ALL_PROPERTIES).install(sim)
    sim.network.rst_loss_probability = 1.0
    sim.schedule_reset(60.0, addrs[2])
    sim.run(until=200.0)
    predicted = sum(c.stats.violations_predicted for c in controllers.values())
    installed = sum(c.stats.filters_installed for c in controllers.values())
    isc_blocks = sum(c.stats.isc_blocks for c in controllers.values())
    assert predicted > 0
    # The predicted inconsistency is acted upon: either an event filter was
    # installed ahead of time or the immediate safety check blocked it.
    assert installed + isc_blocks > 0
    report = controllers[addrs[0]].report()
    assert report["mode"] == "steering"
    assert "filters_installed" in report


def test_off_mode_controller_is_inert():
    addrs = make_addresses(2)
    protocol_config = RandTreeConfig(bootstrap=(addrs[0],))
    sim = Simulator(lambda: RandTree(protocol_config), NetworkModel(), seed=1,
                    tick_interval=5.0)
    for a in addrs:
        sim.add_node(a)
    config = CrystalBallConfig(mode=Mode.OFF)
    controllers = attach_crystalball(sim, ALL_PROPERTIES, config=config)
    sim.schedule_app(1.0, addrs[1], "join", {})
    sim.run(until=30.0)
    assert all(c.stats.model_checker_runs == 0 for c in controllers.values())


def test_live_property_monitor_counts_inconsistencies():
    addrs = make_addresses(2)
    protocol_config = RandTreeConfig(bootstrap=(addrs[0],))
    sim = Simulator(lambda: RandTree(protocol_config), NetworkModel(), seed=1)
    for a in addrs:
        sim.add_node(a)
    monitor = LivePropertyMonitor(ALL_PROPERTIES).install(sim)
    for i, a in enumerate(addrs):
        sim.schedule_app(1.0 + i, a, "join", {})
    sim.run(until=30.0)
    # The buggy bootstrap join leaves the root without a recovery timer, which
    # the live monitor notices as soon as another node joins under it.
    assert monitor.events_checked > 0
    report = monitor.report()
    assert report["inconsistent_states"] >= 0
    assert isinstance(report["properties_violated"], list)
