"""Tests for sampled deep checking (CheckingPolicy) and delta-encoded
checkpoint accounting."""

import json
from dataclasses import dataclass, field
from hashlib import sha256

import pytest

from repro.api import Experiment
from repro.core.checkpoint import Checkpoint, PeerTransferCache
from repro.core.controller import CheckingPolicy, CrystalBallConfig
from repro.mc.search import SearchBudget
from repro.runtime import Address, NodeState, make_addresses
from repro.runtime.serialization import (
    compressed_size,
    delta_fields,
    delta_size,
)

# ------------------------------------------------------------ CheckingPolicy


def test_period_one_phase_is_always_zero():
    policy = CheckingPolicy()
    for addr in make_addresses(10):
        assert policy.phase(addr) == 0
        assert policy.checks_in_round(addr, 0)
        assert policy.checks_in_round(addr, 7)


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        CheckingPolicy(period=0)


def test_phases_are_deterministic_and_spread():
    policy = CheckingPolicy(period=4, seed=3)
    addrs = make_addresses(64)
    phases = [policy.phase(a) for a in addrs]
    assert phases == [CheckingPolicy(period=4, seed=3).phase(a)
                      for a in addrs]
    # The sha1-based rotation spreads 64 nodes over all 4 phases.
    assert set(phases) == {0, 1, 2, 3}
    for phase, addr in zip(phases, addrs):
        assert policy.checks_in_round(addr, phase)
        assert not policy.checks_in_round(addr, phase + 1)
        assert policy.checks_in_round(addr, phase + 4)


def test_different_seed_rotates_differently():
    addrs = make_addresses(64)
    a = [CheckingPolicy(period=8, seed=0).phase(addr) for addr in addrs]
    b = [CheckingPolicy(period=8, seed=1).phase(addr) for addr in addrs]
    assert a != b


# ------------------------------------------------- sampled runs end to end


def _digest(report):
    data = report.to_dict()
    data.pop("wall_clock_seconds")
    return sha256(json.dumps(data, sort_keys=True).encode()).hexdigest()


def _run(checking=None, seed=5, duration=60):
    experiment = (Experiment("randtree")
                  .nodes(12)
                  .duration(duration)
                  .churn(False)
                  .seed(seed))
    kwargs = {"budget": SearchBudget(max_states=12, max_depth=2)}
    if checking is not None:
        kwargs["checking"] = checking
    experiment.crystalball("debug", **kwargs)
    return experiment.run()


def test_explicit_period_one_is_bit_identical_to_default():
    assert _digest(_run()) == _digest(_run(CheckingPolicy(period=1)))


def test_sampled_checking_runs_fewer_deep_checks():
    full = _run()
    sampled = _run(CheckingPolicy(period=4, seed=0))
    assert 0 < sampled.total("model_checker_runs") \
        < full.total("model_checker_runs")
    assert sampled.total("snapshots_collected") \
        < full.total("snapshots_collected")
    # Sampling also shrinks the control plane, not just CPU.
    assert sampled.checkpoint_bytes() < full.checkpoint_bytes()


def test_sampled_checking_is_seed_deterministic():
    policy = CheckingPolicy(period=3, seed=9)
    assert _digest(_run(policy)) == _digest(_run(policy))


def test_off_duty_controllers_still_answer_requests():
    # Even with a long period, on-duty nodes gather complete snapshots:
    # off-duty peers answer checkpoint requests on demand.
    sampled = _run(CheckingPolicy(period=6, seed=2), duration=200)
    assert sampled.total("checkpoint_responses_sent") > 0
    assert sampled.total("snapshots_collected") > 0
    assert sampled.total("incomplete_snapshots") == 0


def test_config_copy_preserves_scale_settings():
    config = CrystalBallConfig(checking=CheckingPolicy(period=5, seed=1),
                               delta_checkpoints=True,
                               batched_control_plane=True)
    copied = config.copy()
    assert copied.checking == config.checking
    assert copied.delta_checkpoints and copied.batched_control_plane


# ------------------------------------------------------------ delta encoding


@dataclass
class _State(NodeState):
    addr: Address = None
    counter: int = 0
    log: list = field(default_factory=list)
    table: dict = field(default_factory=dict)


def _state(addr, counter=0, log=(), table=()):
    return _State(addr=addr, counter=counter, log=list(log),
                  table=dict(table))


def test_delta_fields_names_only_changed_fields():
    a = make_addresses(1)[0]
    old = _state(a, counter=1, log=["x"] * 50)
    new = _state(a, counter=2, log=["x"] * 50)
    assert set(delta_fields(old, new)) == {"counter"}
    assert delta_fields(old, old.clone()) == {}
    assert delta_fields(old, 42) is None  # not field-wise comparable


def test_delta_size_is_small_for_small_changes():
    a = make_addresses(1)[0]
    old = _state(a, counter=1, log=["payload"] * 200)
    new = _state(a, counter=2, log=["payload"] * 200)
    assert delta_size(old, old.clone()) == 16  # identity fingerprint only
    assert delta_size(old, new) < compressed_size(new)
    # Disjoint states cost no more than a full send.
    other = _state(a, counter=9, log=["other"] * 200,
                   table={i: i for i in range(50)})
    assert delta_size(old, other) <= compressed_size(other) + 16


def test_checkpoint_delta_bytes_bounded_by_full_send():
    a = make_addresses(1)[0]
    old = _state(a, counter=1, log=["payload"] * 200)
    new = _state(a, counter=2, log=["payload"] * 200)
    checkpoint = Checkpoint(node=a, checkpoint_number=2, state=new,
                            timers=frozenset({"t"}))
    assert checkpoint.delta_bytes(None) == checkpoint.compressed_bytes()
    assert checkpoint.delta_bytes(old) < checkpoint.compressed_bytes()


def test_transfer_cache_delta_path_charges_less():
    a, b = make_addresses(2)
    old = _state(a, counter=1, log=["payload"] * 200)
    new = _state(a, counter=2, log=["payload"] * 200)

    plain = PeerTransferCache()
    plain.transfer_cost(b, Checkpoint(a, 1, old))
    full_resend = plain.transfer_cost(b, Checkpoint(a, 2, new))

    delta = PeerTransferCache()
    delta.transfer_cost(b, Checkpoint(a, 1, old), delta=True)
    delta_resend = delta.transfer_cost(b, Checkpoint(a, 2, new), delta=True)
    assert delta_resend < full_resend
    assert delta.bytes_saved > 0


def test_delta_checkpoints_flag_shrinks_control_bytes():
    # kvstore state carries a large static client script next to small
    # changing counters — exactly the shape delta encoding targets (only
    # the changed top-level fields travel).
    def run(delta):
        return (Experiment("kvstore")
                .nodes(5)
                .duration(200)
                .seed(4)
                .options(ops_per_node=40, keys=8)
                .crystalball("debug",
                             budget=SearchBudget(max_states=12, max_depth=2),
                             delta_checkpoints=delta)
                .run())

    plain, delta = run(False), run(True)
    assert delta.checkpoint_bytes() < plain.checkpoint_bytes() / 2
    # Accounting only: the run itself is otherwise unchanged.
    assert delta.total("snapshots_collected") \
        == plain.total("snapshots_collected")
