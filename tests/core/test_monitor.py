"""Live property monitor: incremental fast path, episode dedup, liveness."""

import itertools

import pytest

from repro.api import Experiment
from repro.core.monitor import LivePropertyMonitor
from repro.properties import eventually, node_property
from repro.runtime import Address, NetworkModel, Simulator, make_addresses
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _tree_sim(nodes=3, seed=1):
    addrs = make_addresses(nodes)
    config = RandTreeConfig(bootstrap=(addrs[0],))
    sim = Simulator(lambda: RandTree(config), NetworkModel(), seed=seed)
    for addr in addrs:
        sim.add_node(addr)
    for index, addr in enumerate(addrs):
        sim.schedule_app(1.0 + index * 5.0, addr, "join", {})
    return sim, addrs


# ---------------------------------------------------------------- equivalence


@pytest.mark.parametrize("system,settings", [
    ("randtree", dict(nodes=5, duration=150.0)),
    ("chord", dict(nodes=6, duration=150.0)),
    ("paxos", dict(nodes=3, duration=60.0)),
    ("bulletprime", dict(nodes=6, duration=150.0)),
])
def test_incremental_monitor_is_bit_identical_to_full_recheck(system, settings):
    reports = []
    for incremental in (True, False):
        experiment = (Experiment(system)
                      .nodes(settings["nodes"])
                      .duration(settings["duration"])
                      .seed(11)
                      .incremental_monitor(incremental))
        reports.append(experiment.run())
    fast, full = reports
    assert fast.live_monitor.records == full.live_monitor.records
    fast_report = fast.live_monitor.report()
    full_report = full.live_monitor.report()
    for key in ("events_checked", "inconsistent_states",
                "distinct_violation_episodes", "properties_violated",
                "violations_by_property", "by_severity", "episodes"):
        assert fast_report[key] == full_report[key], key


def test_incremental_equivalence_under_faults_and_violations():
    """The known violation-heavy seed must agree episode-for-episode."""
    reports = []
    for incremental in (True, False):
        report = (Experiment("randtree")
                  .nodes(5)
                  .duration(150.0)
                  .churn(interval=50.0)
                  .network(rst_loss=0.6)
                  .options(bootstrap_index=1, max_children=2,
                           fix_recovery_timer=True)
                  .seed(9)
                  .incremental_monitor(incremental)
                  .run())
        reports.append(report)
    fast, full = reports
    assert full.live_inconsistent_states() > 0, (
        "seed no longer produces violations; pick a violating seed")
    assert fast.live_monitor.records == full.live_monitor.records
    assert fast.live_inconsistent_states() == full.live_inconsistent_states()


# --------------------------------------------------------------- episode dedup


def test_drifting_detail_is_one_episode():
    """Satellite fix: episodes key on (property, node), detail is payload."""
    counter = itertools.count()

    def drifting(addr, state, timers, gs):
        yield f"members changed (revision {next(counter)})"

    prop = node_property("t.drifting", drifting, local_only=True)
    sim, addrs = _tree_sim(nodes=2)
    monitor = LivePropertyMonitor([prop]).install(sim)
    sim.run(until=40.0)
    assert monitor.events_checked > 2
    # One persistent episode per node, despite a new detail every event.
    assert monitor.new_violations == 2
    assert len(monitor.records) == 2
    assert {record.node for record in monitor.records} == \
        {str(addr) for addr in addrs}
    # The detail payload is the text at episode open.
    assert all("revision" in record.detail for record in monitor.records)
    # Every event still counts as an inconsistent state.
    assert monitor.inconsistent_states == monitor.events_checked


def test_cleared_violation_reopens_as_new_episode():
    flag = {"on": True}

    def toggled(addr, state, timers, gs):
        if flag["on"]:
            yield "bad"

    # local_only=False forces a full re-check per event so the toggle is
    # picked up immediately regardless of which node executed.
    prop = node_property("t.toggled", toggled, local_only=False)
    sim, addrs = _tree_sim(nodes=1)
    monitor = LivePropertyMonitor([prop]).install(sim)
    sim.run(until=10.0)
    assert monitor.new_violations == 1
    flag["on"] = False
    sim.schedule_app(11.0, addrs[0], "join", {})
    sim.run(until=12.0)
    flag["on"] = True
    sim.schedule_app(13.0, addrs[0], "join", {})
    sim.run(until=30.0)
    assert monitor.new_violations == 2, (
        "a violation that cleared and recurred is a new episode")


# ------------------------------------------------------------------ edge cases


def test_empty_property_set_counts_nothing():
    sim, _ = _tree_sim()
    monitor = LivePropertyMonitor([]).install(sim)
    sim.run(until=30.0)
    monitor.finalize(sim.now)
    assert monitor.events_checked > 0
    assert monitor.inconsistent_states == 0
    assert monitor.records == []
    report = monitor.report()
    assert report["violations_by_property"] == {}
    assert report["distinct_violation_episodes"] == 0


def test_experiment_with_explicit_empty_selection_runs_clean():
    report = (Experiment("randtree").nodes(3).duration(40.0).churn(False)
              .properties().seed(3).run())
    assert report.live_monitor.properties == []
    assert report.violations_observed() == 0
    assert report.violations_by_property() == {}


def test_node_departure_mid_run_closes_and_reopens_episodes():
    """Cross-node/churn edge: a node leaving drops its cached episodes."""

    def always(addr, state, timers, gs):
        yield "always violating"

    prop = node_property("t.always", always, local_only=True)
    sim, addrs = _tree_sim(nodes=3)
    monitor = LivePropertyMonitor([prop]).install(sim)
    sim.run(until=30.0)
    assert monitor.new_violations == 3
    victim = addrs[1]
    sim.crash_node(victim)
    sim.schedule_app(31.0, addrs[0], "join", {})
    sim.run(until=40.0)
    active_nodes = {node for (_, node) in monitor._active}
    assert victim not in active_nodes, "departed node must leave _active"
    sim.revive_node(victim)
    sim.schedule_app(41.0, victim, "join", {})
    sim.run(until=60.0)
    # The revived node reopens its episode (fresh state, fresh incarnation).
    assert monitor.new_violations == 4
    reopened = [r for r in monitor.records if r.node == str(victim)]
    assert len(reopened) == 2


def test_monitor_handles_mixed_state_types_in_global_state():
    """A cross-system selection over a live run never crashes the monitor."""
    from repro.systems.chord.properties import ALL_PROPERTIES as CHORD_PROPERTIES

    sim, _ = _tree_sim(nodes=3)
    monitor = LivePropertyMonitor(
        list(ALL_PROPERTIES) + list(CHORD_PROPERTIES)).install(sim)
    sim.run(until=40.0)
    assert monitor.events_checked > 0
    assert all(not record.property_id.startswith("chord.")
               for record in monitor.records), (
        "chord properties must not fire on RandTree state")


# -------------------------------------------------------------------- liveness


def test_eventually_window_is_anchored_at_install_not_first_event():
    """install() opens run-start-relative windows at sim.now, so a late
    first event cannot stretch the deadline."""
    prop = eventually("t.anchored", lambda gs: False, within=15.0)
    sim, addrs = _tree_sim(nodes=1)
    sim._queue.clear()  # drop the scheduled joins: first event comes late
    monitor = LivePropertyMonitor([prop]).install(sim)
    sim.schedule_app(20.0, addrs[0], "join", {})
    sim.run(until=25.0)
    # Window opened at install (t=0), deadline 15 < first event at 20.
    assert monitor.liveness_violations == 1


def test_liveness_violation_flows_into_records_and_finalize():
    prop = eventually("t.never", lambda gs: False, within=15.0)
    sim, _ = _tree_sim(nodes=2)
    monitor = LivePropertyMonitor([prop]).install(sim)
    sim.run(until=10.0)
    assert monitor.liveness_violations == 0
    sim.schedule_app(20.0, Address(1), "join", {})
    sim.run(until=25.0)
    monitor.finalize(sim.now)
    monitor.finalize(sim.now)  # idempotent
    assert monitor.liveness_violations == 1
    (record,) = [r for r in monitor.records if r.kind == "liveness"]
    assert record.property_id == "t.never"
    assert record.severity == "warning"
    # Liveness expiries are episodes, not inconsistent live states.
    report = monitor.report()
    assert report["liveness_violations"] == 1
    assert report["violations_by_property"]["t.never"] == 1
