"""Tests for the immediate safety check and error-path replay."""

from repro.core import ImmediateSafetyCheck, consequence_prediction, replay_error_path
from repro.mc import SearchBudget, TransitionConfig, TransitionSystem
from repro.runtime import Address, Message, MessageEvent
from repro.systems.randtree import (
    ALL_PROPERTIES,
    Figure2Scenario,
    UPDATE_SIBLING,
)


def _figure2():
    scenario = Figure2Scenario.build()
    system = TransitionSystem(scenario.protocol,
                              TransitionConfig(enable_resets=True,
                                               max_resets_per_node=1))
    return scenario, system, scenario.global_state()


def test_isc_blocks_update_sibling_that_creates_inconsistency():
    scenario, system, snapshot = _figure2()
    isc = ImmediateSafetyCheck(system, ALL_PROPERTIES)
    n9_state = snapshot.nodes[scenario.n9].state.clone()
    # n13 is already a child of n9; the incoming UpdateSibling would make it a
    # sibling as well.
    event = MessageEvent(
        node=scenario.n9,
        message=Message(mtype=UPDATE_SIBLING, src=scenario.n1, dst=scenario.n9,
                        payload={"sibling": scenario.n13}))
    outcome = isc.check(scenario.n9, n9_state,
                        snapshot.nodes[scenario.n9].timers, event,
                        neighborhood=snapshot)
    assert not outcome.allowed
    assert outcome.new_violations
    assert isc.events_blocked == 1


def test_isc_allows_harmless_update_sibling():
    scenario, system, snapshot = _figure2()
    isc = ImmediateSafetyCheck(system, ALL_PROPERTIES)
    other = Address(50)
    event = MessageEvent(
        node=scenario.n9,
        message=Message(mtype=UPDATE_SIBLING, src=scenario.n1, dst=scenario.n9,
                        payload={"sibling": other}))
    outcome = isc.check(scenario.n9, snapshot.nodes[scenario.n9].state.clone(),
                        snapshot.nodes[scenario.n9].timers, event,
                        neighborhood=snapshot)
    assert outcome.allowed


def test_isc_ignores_pre_existing_violations():
    scenario, system, snapshot = _figure2()
    # Introduce a pre-existing inconsistency at another node.
    snapshot.nodes[scenario.n1].state.siblings.add(scenario.n9)
    snapshot.nodes[scenario.n1].state.children.add(scenario.n9)
    isc = ImmediateSafetyCheck(system, ALL_PROPERTIES)
    event = MessageEvent(
        node=scenario.n9,
        message=Message(mtype=UPDATE_SIBLING, src=scenario.n1, dst=scenario.n9,
                        payload={"sibling": Address(50)}))
    outcome = isc.check(scenario.n9, snapshot.nodes[scenario.n9].state.clone(),
                        snapshot.nodes[scenario.n9].timers, event,
                        neighborhood=snapshot)
    assert outcome.allowed


def test_replay_reproduces_figure2_path_on_fresh_snapshot():
    scenario, system, snapshot = _figure2()
    result = consequence_prediction(system, snapshot, ALL_PROPERTIES,
                                    SearchBudget(max_states=8000, max_depth=9))
    violation = min((v for v in result.violations
                     if v.violation.property_name == "randtree.children_siblings_disjoint"),
                    key=lambda v: v.depth)
    replay = replay_error_path(system, scenario.global_state(), violation.path,
                               ALL_PROPERTIES)
    assert replay.reproduced
    assert replay.violations
    assert replay.steps_executed > 0


def test_replay_does_not_reproduce_on_fixed_protocol():
    scenario, system, snapshot = _figure2()
    result = consequence_prediction(system, snapshot, ALL_PROPERTIES,
                                    SearchBudget(max_states=8000, max_depth=9))
    violation = min((v for v in result.violations
                     if v.violation.property_name == "randtree.children_siblings_disjoint"),
                    key=lambda v: v.depth)
    fixed = Figure2Scenario.build(fixed=True)
    fixed_system = TransitionSystem(fixed.protocol,
                                    TransitionConfig(enable_resets=True,
                                                     max_resets_per_node=1))
    replay = replay_error_path(fixed_system, fixed.global_state(),
                               violation.path, ALL_PROPERTIES)
    assert not replay.reproduced
