"""Tests for topology generation and trace utilities."""

import random

from repro.obs import filter_trace, format_trace, summarize
from repro.runtime import Address, NetworkModel, Simulator, make_addresses
from repro.sim import InetTopology, TopologyConfig
from tests.runtime.test_simulator import EchoProtocol


def test_topology_latency_within_sane_bounds():
    topo = InetTopology(TopologyConfig(router_count=60, seed=1))
    addrs = make_addresses(10)
    topo.attach_clients(addrs)
    rng = random.Random(0)
    for _ in range(20):
        a, b = rng.sample(addrs, 2)
        latency = topo.latency(a, b, rng)
        assert 0 < latency < 2.0


def test_topology_mean_rtt_close_to_target():
    config = TopologyConfig(router_count=80, target_mean_rtt=0.13, seed=2)
    topo = InetTopology(config)
    addrs = make_addresses(20)
    topo.attach_clients(addrs)
    mean_rtt = topo.mean_rtt_estimate(addrs)
    assert 0.001 < mean_rtt < 1.0


def test_topology_network_model_integrates_with_simulator():
    topo = InetTopology(TopologyConfig(router_count=40, seed=3))
    addrs = make_addresses(2)
    topo.attach_clients(addrs)
    sim = Simulator(EchoProtocol, topo.network_model(), seed=1)
    for a in addrs:
        sim.add_node(a)
    sim.schedule_app(1.0, addrs[0], "ping", {"target": addrs[1]})
    sim.run(until=5.0)
    assert ("pong", addrs[1]) in sim.nodes[addrs[0]].state.received


def test_loss_probability_range():
    topo = InetTopology(TopologyConfig(router_count=30, seed=4))
    rng = random.Random(1)
    loss = topo.loss_probability(Address(1), Address(2), rng)
    assert 0.001 <= loss <= 0.005


def test_trace_summary_and_filtering():
    sim = Simulator(EchoProtocol, NetworkModel(), seed=1, trace=True)
    addrs = make_addresses(2)
    for a in addrs:
        sim.add_node(a)
    sim.schedule_app(1.0, addrs[0], "ping", {"target": addrs[1]})
    sim.run(until=3.0)
    summary = summarize(sim.trace)
    assert summary.total_events == len(sim.trace) > 0
    assert summary.duration() >= 0
    only_b = filter_trace(sim.trace, node=addrs[1])
    assert all(rec.node == addrs[1] for rec in only_b)
    text = format_trace(sim.trace, limit=5)
    assert text.splitlines()


def test_trace_summary_empty():
    summary = summarize([])
    assert summary.total_events == 0 and summary.duration() == 0
