"""Tests for the analysis helpers and report formatting."""

import pytest

from repro.analysis import (
    ExperimentLog,
    empirical_cdf,
    format_table,
    growth_ratios,
    mean,
    median,
    percentile,
    slowdown,
    stddev,
)


def test_mean_median_stddev_basic():
    assert mean([1, 2, 3]) == 2
    assert mean([]) == 0.0
    assert median([5, 1, 3]) == 3
    assert median([1, 2, 3, 4]) == 2.5
    assert stddev([2, 2, 2]) == 0.0
    assert stddev([1]) == 0.0


def test_percentile_interpolates_and_validates():
    values = [10, 20, 30, 40]
    assert percentile(values, 0.5) == 25
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_empirical_cdf_monotone():
    cdf = empirical_cdf([3, 1, 2])
    assert [p.value for p in cdf] == [1, 2, 3]
    assert cdf[-1].fraction == 1.0


def test_slowdown_relative_to_baseline():
    assert slowdown([10, 10, 10], [11, 11, 11]) == pytest.approx(0.1)
    assert slowdown([], [1]) == 0.0


def test_growth_ratios():
    assert growth_ratios([1, 2, 8]) == [2.0, 4.0]
    assert growth_ratios([0, 5]) == []


def test_format_table_aligns_and_titles():
    text = format_table(["a", "bb"], [[1, 2.5], ["xxx", "y"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_experiment_log_renders_records():
    log = ExperimentLog()
    log.add("Table 1", "13 bugs", "12 bugs", "seeded")
    rendered = log.render()
    assert "Table 1" in rendered and "13 bugs" in rendered
