"""Chrome trace-event export: timeline shape, flow arrows, metadata."""

import json

from repro.obs import chrome_trace, write_chrome_trace

from tests.obs.test_trace_tools import STEERING_TRACE, meta


def test_chrome_trace_top_level_shape():
    out = chrome_trace(STEERING_TRACE)
    assert set(out) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert out["displayTimeUnit"] == "ms"
    assert out["otherData"]["system"] == "randtree"
    json.dumps(out)


def test_nodes_become_named_threads():
    out = chrome_trace(STEERING_TRACE)
    names = [e for e in out["traceEvents"] if e["ph"] == "M"]
    labels = {e["args"]["name"] for e in names}
    assert "(global)" in labels
    assert "node 1:5000" in labels
    # Every timeline event lands on a declared thread.
    tids = {e["tid"] for e in names}
    assert all(e["tid"] in tids for e in out["traceEvents"])


def test_records_become_complete_events_in_microseconds():
    out = chrome_trace(STEERING_TRACE)
    mc = next(e for e in out["traceEvents"]
              if e["ph"] == "X" and e["name"].startswith("mc_run"))
    assert mc["ts"] == 10_000_000
    assert mc["args"]["states"] == 50
    assert "kind" not in mc["args"]


def test_send_deliver_pairs_emit_flow_arrows():
    trace = [
        meta(),
        {"kind": "send", "t": 1.0, "node": "1:5000", "msg": 42,
         "mtype": "ping", "dst": "2:5000", "transport": "udp",
         "control": False, "bytes": 64},
        {"kind": "deliver", "t": 1.5, "node": "2:5000", "msg": 42,
         "mtype": "ping", "src": "1:5000"},
    ]
    out = chrome_trace(trace)
    flows = [e for e in out["traceEvents"] if e["ph"] in ("s", "f")]
    assert [e["ph"] for e in flows] == ["s", "f"]
    assert flows[0]["id"] == flows[1]["id"] == 42
    assert all(e["cat"] == "message" for e in flows)


def test_write_chrome_trace_returns_event_count(tmp_path):
    path = tmp_path / "chrome.json"
    written = write_chrome_trace(STEERING_TRACE, path)
    payload = json.loads(path.read_text())
    assert written == len(payload["traceEvents"]) > 0
