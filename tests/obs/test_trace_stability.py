"""Traces are stable across interpreter hash seeds.

Digests and record field orders must not leak ``PYTHONHASHSEED``: two
subprocesses with different hash seeds must produce byte-identical traces
once the ``wall`` fields (real time) are stripped.
"""

import json
import os
import subprocess
import sys

from repro.obs import strip_wall_fields

_SCRIPT = """
import json, sys
from repro.api import Experiment
from repro.obs.trace_tools import read_trace, strip_wall_fields

path = sys.argv[1]
(Experiment("randtree").nodes(4).duration(40.0).seed(3)
 .mode("debug").trace(path).run())
records = strip_wall_fields(read_trace(path))
json.dump(records, sys.stdout, sort_keys=True)
"""


def _run_with_hash_seed(hash_seed, tmp_path):
    env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    out = tmp_path / f"seed{hash_seed}.jsonl"
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(result.stdout)


def test_trace_identical_across_hash_seeds(tmp_path):
    first = _run_with_hash_seed(0, tmp_path)
    second = _run_with_hash_seed(42, tmp_path)
    assert first == second
    assert first[0]["kind"] == "meta"
    assert any(record["kind"] == "mc_run" for record in first)


def test_strip_wall_fields_is_what_the_comparison_relies_on():
    records = [{"kind": "mc_run", "t": 1.0, "wall": 0.5, "states": 3}]
    assert strip_wall_fields(records) == [
        {"kind": "mc_run", "t": 1.0, "states": 3}
    ]
