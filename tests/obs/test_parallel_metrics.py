"""The sharded parallel engine reports fork/handoff/barrier metrics."""

from repro.api import Experiment


def test_parallel_engine_profiles_itself_into_the_registry():
    report = (Experiment("randtree").nodes(4).ticks(2).seed(1)
              .mode("debug").crystalball(engine="parallel:2")
              .metrics(True).run())
    counters = report.metrics["counters"]
    histograms = report.metrics["histograms"]
    assert counters["parallel.searches"] >= 1
    assert counters["parallel.rounds"] >= 1
    assert histograms["parallel.fork_seconds"]["count"] >= 1
    assert histograms["parallel.barrier_wait_seconds"]["count"] >= 1
    # Handoff counters exist (may be zero when no state crosses shards).
    assert "parallel.handoff_items" in counters
    assert "parallel.handoff_bytes" in counters
