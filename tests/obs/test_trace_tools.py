"""Trace analysis tools: validation, filtering, summaries, causal chains."""

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    causal_chain,
    filter_records,
    format_records,
    strip_wall_fields,
    summarize_records,
    validate_trace,
)
from repro.obs.trace_tools import read_trace


def meta():
    return {"kind": "meta", "v": SCHEMA_VERSION, "system": "randtree",
            "scenario": None, "mode": "steering", "seed": 7, "nodes": 3}


STEERING_TRACE = [
    meta(),
    {"kind": "fault", "t": 5.0, "node": None, "fault": "partition",
     "action": "inject", "detail": {"links_cut": 2}},
    {"kind": "checkpoint", "t": 9.0, "node": "1:5000", "cn": 2,
     "forced": False},
    {"kind": "snapshot", "t": 10.0, "node": "1:5000", "cn": 2, "members": 3,
     "missing": 0, "complete": True},
    {"kind": "mc_run", "t": 10.0, "node": "1:5000", "engine": "serial",
     "states": 50, "transitions": 80, "depth": 5, "violations": 1,
     "wall": 0.25},
    {"kind": "violation", "t": 10.0, "node": "1:5000", "property": "p",
     "severity": "critical", "vkind": "predicted", "detail": "bad"},
    {"kind": "violation", "t": 8.0, "node": "1:5000", "property": "p",
     "severity": "critical", "vkind": "predicted", "detail": "older run"},
    {"kind": "filter_install", "t": 10.0, "node": "1:5000",
     "filter": "filter#1", "property": "p", "path_len": 2},
    {"kind": "filter_trigger", "t": 12.0, "node": "1:5000",
     "filter": "filter#1", "action": "delay", "desc": "timer x"},
    {"kind": "run_end", "t": 20.0, "events": 99},
]


# ------------------------------------------------------------- validation


def test_validate_accepts_a_well_formed_trace():
    assert validate_trace(STEERING_TRACE) == []


def test_validate_flags_structural_problems():
    assert validate_trace([]) == ["trace is empty"]
    problems = validate_trace([{"kind": "event", "t": 1.0}])
    assert any("not a 'meta' header" in p for p in problems)
    bad_version = dict(meta(), v=99)
    problems = validate_trace([bad_version])
    assert any("unsupported schema version" in p for p in problems)
    problems = validate_trace([meta(), {"kind": "wat", "t": 1.0}])
    assert any("unknown kind 'wat'" in p for p in problems)
    problems = validate_trace([meta(), {"kind": "event"}])
    assert any("missing 't'" in p for p in problems)
    problems = validate_trace([meta(), meta()])
    assert any("duplicate 'meta'" in p for p in problems)


def test_read_trace_reports_bad_lines_with_position(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "meta"}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        read_trace(path)
    path.write_text('[1, 2]\n')
    with pytest.raises(ValueError, match="expected a JSON object"):
        read_trace(path)


# ------------------------------------------------ filtering and summaries


def test_summarize_records_skips_meta_and_counts_kinds():
    summary = summarize_records(STEERING_TRACE)
    assert summary.total_events == len(STEERING_TRACE) - 1
    assert summary.by_kind["violation"] == 2
    assert "None" not in summary.by_node  # nodeless records excluded
    assert summary.duration() == 15.0


def test_filter_records_by_node_kind_and_substring():
    assert all(r["node"] == "1:5000"
               for r in filter_records(STEERING_TRACE, node="1:5000"))
    assert [r["kind"] for r in filter_records(STEERING_TRACE,
                                              kind="mc_run")] == ["mc_run"]
    hits = filter_records(STEERING_TRACE, contains="links_cut")
    assert [r["kind"] for r in hits] == ["fault"]
    # Meta never appears in filtered output.
    assert all(r["kind"] != "meta" for r in filter_records(STEERING_TRACE))


def test_format_records_renders_aligned_lines_with_limit():
    text = format_records(STEERING_TRACE[1:], limit=3)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[-1].startswith("... (")
    assert "fault" in lines[0]


def test_strip_wall_fields_removes_only_wall():
    stripped = strip_wall_fields(STEERING_TRACE)
    mc = next(r for r in stripped if r["kind"] == "mc_run")
    assert "wall" not in mc
    assert mc["states"] == 50
    # Original untouched.
    assert "wall" in STEERING_TRACE[4]


# ----------------------------------------------------------- causal chain


def test_causal_chain_tells_the_steering_story_in_order():
    chain = causal_chain(STEERING_TRACE, "1:5000")
    kinds = [r["kind"] for r in chain]
    assert kinds == ["fault", "checkpoint", "snapshot", "mc_run",
                     "violation", "filter_install", "filter_trigger"]
    # Only the violation from the decisive mc run, not the older one.
    violation = next(r for r in chain if r["kind"] == "violation")
    assert violation["t"] == 10.0


def test_causal_chain_is_empty_when_steering_never_fired():
    assert causal_chain(STEERING_TRACE, "9:9999") == []
    assert causal_chain([meta()], "1:5000") == []
