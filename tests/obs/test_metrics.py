"""MetricsRegistry: memoization, kind safety, snapshot schema, rollup subset."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_gauge_tracks_value_and_high_water_mark():
    gauge = Gauge()
    gauge.set(3.0)
    gauge.set(1.0)
    assert gauge.value == 1.0
    assert gauge.max_value == 3.0
    gauge.update_max(7.0)
    assert gauge.max_value == 7.0
    gauge.update_max(2.0)  # keeps the high-water mark
    assert gauge.max_value == 7.0


def test_histogram_five_number_summary():
    histogram = Histogram()
    assert histogram.mean == 0.0
    for value in (3.0, 1.0, 2.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == 6.0
    assert histogram.min == 1.0
    assert histogram.max == 3.0
    assert histogram.last == 2.0
    assert histogram.mean == 2.0


def test_registry_memoizes_per_name():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.gauge("x")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.histogram("x")


def test_registry_shorthands():
    registry = MetricsRegistry()
    registry.inc("c", 2)
    registry.inc("c")
    registry.observe("h", 1.5)
    assert registry.counter("c").value == 3
    assert registry.histogram("h").count == 1


def test_snapshot_shape_is_json_ready_and_sorted():
    registry = MetricsRegistry()
    registry.inc("z.second")
    registry.inc("a.first", 4)
    registry.gauge("depth").update_max(6)
    registry.observe("wait", 0.5)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["counters", "gauges", "histograms"]
    assert list(snapshot["counters"]) == ["a.first", "z.second"]
    assert snapshot["counters"]["a.first"] == 4
    assert snapshot["gauges"]["depth"] == {"value": 6, "max": 6}
    assert snapshot["histograms"]["wait"] == {
        "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
        "mean": 0.5, "last": 0.5,
    }
    json.dumps(snapshot)  # JSON-serializable as-is


def test_counters_subset_excludes_parallel_names():
    registry = MetricsRegistry()
    registry.inc("runtime.events_executed", 10)
    registry.inc("parallel.rounds", 3)
    registry.inc("parallel.handoff_items", 40)
    counters = registry.counters()
    assert counters == {"runtime.events_executed": 10}
    # ... but the full snapshot still shows them.
    assert registry.snapshot()["counters"]["parallel.rounds"] == 3
