"""Observability must not perturb runs: tracing+metrics on vs off, same
seed, bit-identical RunReport on every bundled system."""

import pytest

from repro.api import Experiment
from repro.obs import validate_trace
from repro.obs.trace_tools import read_trace

#: (system, nodes, duration) — small but long enough that checkpoints,
#: snapshots and model-checker runs all fire.
DEPLOYMENTS = [
    ("randtree", 5, 40.0),
    ("chord", 8, 40.0),
    ("paxos", 5, 40.0),
    ("bulletprime", 6, 40.0),
    ("crdtset", 3, 40.0),
    ("kvstore", 3, 40.0),
]


def _deterministic_dict(report):
    data = report.to_dict()
    data.pop("metrics")  # present only when metrics were enabled
    data.pop("wall_clock_seconds")  # real time, never deterministic
    return data


@pytest.mark.parametrize("system,nodes,duration", DEPLOYMENTS)
def test_tracing_and_metrics_do_not_perturb_the_run(
    system, nodes, duration, tmp_path
):
    def build():
        return (Experiment(system).nodes(nodes).duration(duration)
                .seed(11).mode("debug"))

    plain = build().run()
    trace_path = tmp_path / f"{system}.jsonl"
    observed = build().trace(trace_path).metrics(True).run()

    assert _deterministic_dict(plain) == _deterministic_dict(observed)

    # The observed run actually observed something.
    counters = observed.metrics["counters"]
    assert counters["runtime.events_executed"] > 0
    records = read_trace(trace_path)
    assert validate_trace(records) == []
    assert records[0]["system"] == system
    assert records[-1]["kind"] == "run_end"
    # Traced event count matches the metrics counter for executed events.
    executed = sum(1 for r in records
                   if r["kind"] == "event" and r["outcome"] == "executed")
    assert executed == counters["runtime.events_executed"]


def test_metrics_snapshot_is_seed_deterministic():
    def run():
        return (Experiment("randtree").nodes(5).duration(40.0)
                .seed(3).mode("debug").metrics(True).run())

    first, second = run(), run()
    snap_a, snap_b = first.metrics, second.metrics
    assert snap_a["counters"] == snap_b["counters"]
    assert snap_a["gauges"] == snap_b["gauges"]
    # Histograms carry wall-clock sums: counts match, durations may not.
    assert {name: h["count"] for name, h in snap_a["histograms"].items()} \
        == {name: h["count"] for name, h in snap_b["histograms"].items()}
