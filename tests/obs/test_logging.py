"""repro.obs.log: verbosity mapping, idempotent handlers, progress logger."""

import logging

from repro.obs import configure_logging, get_logger, progress_logger
from repro.obs.log import _HANDLER_MARKER, PROGRESS_LOGGER_NAME


def _marked_handlers(logger):
    return [h for h in logger.handlers if getattr(h, _HANDLER_MARKER, False)]


def test_get_logger_hangs_under_the_repro_tree():
    logger = get_logger("repro.runtime.simulator")
    assert logger.name == "repro.runtime.simulator"
    assert logger.parent is not None


def test_configure_logging_maps_verbosity_to_levels():
    root = logging.getLogger("repro")
    configure_logging(0)
    assert root.level == logging.WARNING
    configure_logging(1)
    assert root.level == logging.INFO
    configure_logging(2)
    assert root.level == logging.DEBUG
    configure_logging(5)
    assert root.level == logging.DEBUG


def test_repeated_configuration_never_duplicates_handlers():
    for _ in range(3):
        configure_logging(1)
    assert len(_marked_handlers(logging.getLogger("repro"))) == 1
    assert len(_marked_handlers(logging.getLogger(PROGRESS_LOGGER_NAME))) == 1


def test_progress_logger_is_always_on_and_does_not_propagate():
    progress = progress_logger()
    assert progress.name == PROGRESS_LOGGER_NAME
    assert progress.isEnabledFor(logging.INFO)
    assert progress.propagate is False
    # Self-configuring: a handler exists even without configure_logging.
    assert len(_marked_handlers(progress)) == 1


def test_progress_lines_render_bare(capsys):
    # Drop handlers created by earlier tests so progress_logger() rebinds
    # a fresh one to the capsys-captured stderr.
    logger = logging.getLogger(PROGRESS_LOGGER_NAME)
    for handler in _marked_handlers(logger):
        logger.removeHandler(handler)
    progress_logger().info("ok    run-1  injected=0 (0.1s)")
    captured = capsys.readouterr()
    assert "ok    run-1  injected=0 (0.1s)" in captured.err
    assert "INFO" not in captured.err
