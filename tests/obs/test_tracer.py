"""Trace schema v1: every record kind round-trips through JSON unchanged."""

import json

import pytest

from repro.obs import (
    RECORD_KINDS,
    SCHEMA_VERSION,
    JsonlTracer,
    MemoryTracer,
    NullTracer,
    Tracer,
    validate_trace,
)
from repro.obs.trace_tools import read_trace


def emit_one_of_each(tracer):
    """Drive every typed helper once; returns the expected kind sequence."""
    tracer.meta(system="randtree", scenario=None, mode="steering", seed=7,
                nodes=5)
    tracer.event(1.0, "1:5000", "msg", "executed", "deliver Ping", eid=0,
                 msg=42)
    tracer.send(1.0, "1:5000", 42, "ping", "2:5000", "udp", False, 64)
    tracer.deliver(1.1, "2:5000", 42, "ping", "1:5000")
    tracer.drop(1.2, 43, "pong", "loss")
    tracer.checkpoint(2.0, "1:5000", 3, forced=True)
    tracer.snapshot(2.5, "1:5000", 3, 4, 1)
    tracer.mc_run(3.0, "1:5000", engine="serial", states=100, transitions=250,
                  depth=6, violations=2, wall=0.125)
    tracer.filter_install(3.0, "1:5000", "filter#1: delay timer",
                          property_id="randtree.p", path_len=2)
    tracer.filter_trigger(4.0, "1:5000", "filter#1: delay timer", "delay",
                          "timer join_retry")
    tracer.violation(3.0, "1:5000", "randtree.p", "critical", "predicted",
                     "root is a child", digest="abc123")
    tracer.fault(5.0, "partition", "inject", {"links_cut": 6})
    tracer.run_end(10.0, 1234)
    return ["meta", "event", "send", "deliver", "drop", "checkpoint",
            "snapshot", "mc_run", "filter_install", "filter_trigger",
            "violation", "fault", "run_end"]


def test_every_record_kind_has_a_typed_helper():
    tracer = MemoryTracer()
    kinds = emit_one_of_each(tracer)
    assert sorted(kinds) == sorted(RECORD_KINDS)
    assert [record["kind"] for record in tracer.records] == kinds


def test_schema_round_trips_through_json(tmp_path):
    memory = MemoryTracer()
    emit_one_of_each(memory)
    path = tmp_path / "t.jsonl"
    jsonl = JsonlTracer(path)
    for record in memory.records:
        jsonl.emit(record)
    jsonl.close()
    assert jsonl.records_written == len(memory.records)
    assert read_trace(path) == memory.records


def test_emitted_records_satisfy_schema_v1():
    tracer = MemoryTracer()
    emit_one_of_each(tracer)
    assert validate_trace(tracer.records) == []
    meta = tracer.records[0]
    assert meta["v"] == SCHEMA_VERSION
    for record in tracer.records[1:]:
        assert "t" in record


def test_record_payload_fields_are_stable():
    tracer = MemoryTracer()
    emit_one_of_each(tracer)
    by_kind = {record["kind"]: record for record in tracer.records}
    assert by_kind["send"] == {
        "kind": "send", "t": 1.0, "node": "1:5000", "msg": 42,
        "mtype": "ping", "dst": "2:5000", "transport": "udp",
        "control": False, "bytes": 64,
    }
    assert by_kind["deliver"]["msg"] == by_kind["send"]["msg"]
    assert by_kind["snapshot"]["complete"] is False  # one member missing
    assert by_kind["mc_run"]["wall"] == 0.125
    assert by_kind["filter_install"]["property"] == "randtree.p"
    assert by_kind["violation"]["digest"] == "abc123"


def test_jsonl_tracer_writes_compact_lines_and_close_is_idempotent(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = JsonlTracer(path)
    tracer.event(1.0, "n", "msg", "executed", "x")
    tracer.close()
    tracer.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert ": " not in lines[0]  # compact separators
    assert json.loads(lines[0])["kind"] == "event"


def test_null_tracer_emits_nothing():
    tracer = NullTracer()
    emit_one_of_each(tracer)
    tracer.close()


def test_base_tracer_requires_emit():
    with pytest.raises(NotImplementedError):
        Tracer().event(0.0, "n", "msg", "executed", "x")
