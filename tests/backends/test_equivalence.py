"""Sim-vs-tcp semantic equivalence: same seed, same violations, same states.

The deployed-mode claim rests on the tcp backend being a *transport* change
only: the deterministic coordinator draws the same RNG sequence and executes
the same (time, seq) schedule, so a seeded run must produce the identical
property-violation set and land every node in the identical protocol state
— even though every delivery crossed a real socket as a compact-bytes
frame.  These runs are small (4-5 nodes, short horizons) to keep the real
socket traffic cheap in CI.
"""

from repro.api import Experiment
from repro.backends import protocol_state_digest


def _run(system, backend, *, seed, nodes, duration, **extra):
    experiment = (Experiment(system)
                  .nodes(nodes).duration(duration).seed(seed)
                  .crystalball("debug"))
    for name, value in extra.items():
        getattr(experiment, name)(value)
    if backend != "sim":
        experiment.backend(backend)
    return experiment.run()


def _assert_equivalent(sim_report, tcp_report):
    assert sim_report.violations_by_property() == \
        tcp_report.violations_by_property()
    assert protocol_state_digest(sim_report.simulator) == \
        protocol_state_digest(tcp_report.simulator)
    assert sim_report.total_predicted() == tcp_report.total_predicted()


def test_randtree_sim_and_tcp_agree_on_violations_and_states():
    sim_report = _run("randtree", "sim", seed=3, nodes=5, duration=120)
    tcp_report = _run("randtree", "tcp", seed=3, nodes=5, duration=120)
    _assert_equivalent(sim_report, tcp_report)
    # The tcp run genuinely used the wire: frames were shipped, including
    # control-plane checkpoint traffic, with no local fallbacks.
    wire = tcp_report.outcome["wire"]
    assert wire["frames_sent"] > 0
    assert wire["control_frames"] > 0
    assert wire["fallback_local"] == 0
    assert "wire" not in sim_report.outcome


def test_kvstore_sim_and_tcp_agree_on_violations_and_states():
    sim_report = _run("kvstore", "sim", seed=7, nodes=4, duration=100)
    tcp_report = _run("kvstore", "tcp", seed=7, nodes=4, duration=100)
    _assert_equivalent(sim_report, tcp_report)
    assert tcp_report.outcome["wire"]["frames_sent"] > 0


def test_tcp_run_detects_seeded_violation_over_real_sockets():
    """ISSUE acceptance: a tcp run with CrystalBall attached detects at
    least one seeded property violation over real sockets and reports it
    with backend="tcp"."""
    report = _run("randtree", "tcp", seed=3, nodes=5, duration=120)
    assert report.backend == "tcp"
    assert report.to_dict()["backend"] == "tcp"
    assert sum(report.violations_by_property().values()) >= 1


def test_sim_report_omits_backend_field_in_serialized_form():
    report = _run("randtree", "sim", seed=1, nodes=3, duration=40)
    assert report.backend == "sim"
    assert "backend" not in report.to_dict()
