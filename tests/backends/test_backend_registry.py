"""Tests for the execution-backend registry and option validation."""

import pytest

from repro.backends import (
    AsyncioTcpBackend,
    ExecutionBackend,
    SimBackend,
    backend_names,
    get_backend,
    make_backend,
    register_backend,
)
from repro.runtime import NetworkModel, Simulator


class _Null:
    def initial_state(self, addr):
        return None


def test_builtin_backends_registered():
    assert backend_names() == ["sim", "tcp"]
    assert get_backend("sim") is SimBackend
    assert get_backend("tcp") is AsyncioTcpBackend


def test_unknown_backend_rejected_with_known_names():
    with pytest.raises(ValueError, match="sim, tcp"):
        get_backend("grpc")


def test_register_backend_is_idempotent_but_guards_conflicts():
    assert register_backend("sim", SimBackend) is SimBackend
    with pytest.raises(ValueError, match="already registered"):
        register_backend("sim", AsyncioTcpBackend)


def test_simulator_satisfies_the_backend_protocol():
    sim = Simulator(_Null, NetworkModel(), seed=0)
    assert isinstance(sim, ExecutionBackend)


def test_sim_backend_rejects_any_option():
    with pytest.raises(ValueError, match="no options"):
        make_backend("sim", _Null, options={"host": "127.0.0.1"})


def test_tcp_backend_rejects_unknown_options():
    with pytest.raises(ValueError, match="unknown option"):
        make_backend("tcp", _Null, options={"prot": 99})


def test_tcp_backend_accepts_its_options():
    backend = make_backend("tcp", _Null, seed=4,
                           options={"host": "127.0.0.1", "port_base": 0,
                                    "frame_timeout": 5.0})
    assert backend.host == "127.0.0.1"
    assert backend.frame_timeout == 5.0


def test_make_backend_builds_plain_simulator_for_sim():
    backend = make_backend("sim", _Null, tick_interval=7.0)
    assert isinstance(backend, Simulator)
    assert backend.tick_interval == 7.0
