"""Focused tests for the tcp backend's local-fallback accounting.

The contract (``AsyncioTcpBackend._deliver_over_wire``): a delivery whose
socket round-trip fails (torn connection, timeout) executes the *local*
copy so protocol semantics never depend on socket health, and each such
delivery increments ``wire_fallbacks`` — surfaced as
``outcome["wire"]["fallback_local"]``.  Deliveries to dead peers skip the
wire by design (the inherited local path records the drop) and must NOT
count as fallbacks.
"""

from repro.api import Experiment
from repro.backends import protocol_state_digest
from repro.backends.tcp import AsyncioTcpBackend
from repro.faults.types import CrashRestart


def _run(backend, *, seed=3, nodes=4, duration=60, faults=(), **options):
    experiment = (Experiment("kvstore")
                  .nodes(nodes).duration(duration).seed(seed))
    if faults:
        experiment.faults(*faults, seed=0)
    if backend != "sim":
        experiment.backend(backend, **options)
    return experiment.run()


def test_torn_sockets_fall_back_locally_with_identical_semantics(
        monkeypatch):
    async def torn_writer(self, src, dst):
        raise OSError("connection torn by test")

    monkeypatch.setattr(AsyncioTcpBackend, "_writer_for", torn_writer)
    tcp_report = _run("tcp")
    wire = tcp_report.outcome["wire"]
    # Every attempted wire delivery tore and fell back.
    assert wire["fallback_local"] > 0
    assert wire["frames_sent"] == 0
    # The local path executed the same deliveries: the run is
    # semantically identical to the sim backend under the same seed.
    sim_report = _run("sim")
    assert protocol_state_digest(tcp_report.simulator) == \
        protocol_state_digest(sim_report.simulator)
    assert tcp_report.violations_by_property() == \
        sim_report.violations_by_property()


def test_frame_timeout_counts_as_fallback(monkeypatch):
    async def swallow_frame(writer, message):
        return 0  # frame "written" but never echoed back: inbox starves

    monkeypatch.setattr("repro.backends.tcp.write_frame", swallow_frame)
    report = _run("tcp", duration=20, frame_timeout=0.01)
    wire = report.outcome["wire"]
    assert wire["fallback_local"] > 0
    assert wire["frames_sent"] == 0


def test_dead_peer_deliveries_are_not_fallbacks():
    # Crash one node permanently mid-run: deliveries addressed to it take
    # the local path by design (which records the drop) and leave the
    # fallback counter untouched; live traffic keeps using the wire.
    report = _run("tcp", faults=[CrashRestart(at=10.0, target=None)])
    assert report.faults_injected() >= 1
    wire = report.outcome["wire"]
    assert wire["fallback_local"] == 0
    assert wire["frames_sent"] > 0
