"""Tests for the deployed-mode wire format (frames and accounting)."""

import struct

import pytest

from repro.backends import (
    FRAME_MAGIC,
    HEADER_SIZE,
    KIND_CONTROL,
    KIND_SERVICE,
    MAX_FRAME_BYTES,
    WireError,
    WireStats,
    decode_frame,
    decode_header,
    encode_frame,
)
from repro.runtime import Address, Message, Transport

_HEADER = struct.Struct(">HBI")


def _msg(**kwargs):
    defaults = dict(mtype="Ping", src=Address(1), dst=Address(2),
                    payload={"n": 7})
    defaults.update(kwargs)
    return Message(**defaults)


def test_encode_decode_round_trip_preserves_message():
    message = _msg(payload={"blocks": (1, 2, 3), "origin": Address(4)},
                   transport=Transport.UDP, checkpoint_number=5)
    decoded = decode_frame(encode_frame(message))
    assert decoded.mtype == message.mtype
    assert decoded.src == message.src and decoded.dst == message.dst
    assert decoded.payload == message.payload
    assert decoded.transport is Transport.UDP
    assert decoded.checkpoint_number == 5
    assert decoded.msg_id == message.msg_id


def test_header_tags_control_frames():
    service = encode_frame(_msg())
    control = encode_frame(_msg(mtype="_cb_checkpoint_request", control=True))
    assert _HEADER.unpack(service[:HEADER_SIZE])[1] == KIND_SERVICE
    assert _HEADER.unpack(control[:HEADER_SIZE])[1] == KIND_CONTROL


def test_header_announces_payload_length():
    frame = encode_frame(_msg())
    magic, _kind, length = _HEADER.unpack(frame[:HEADER_SIZE])
    assert magic == FRAME_MAGIC
    assert length == len(frame) - HEADER_SIZE


def test_truncated_header_rejected():
    with pytest.raises(WireError, match="truncated"):
        decode_header(b"\x00\x01")


def test_bad_magic_rejected():
    header = _HEADER.pack(0xDEAD, KIND_SERVICE, 4)
    with pytest.raises(WireError, match="magic"):
        decode_header(header)


def test_unknown_kind_rejected():
    header = _HEADER.pack(FRAME_MAGIC, 9, 4)
    with pytest.raises(WireError, match="kind"):
        decode_header(header)


def test_oversized_announcement_rejected():
    header = _HEADER.pack(FRAME_MAGIC, KIND_SERVICE, MAX_FRAME_BYTES + 1)
    with pytest.raises(WireError, match="ceiling"):
        decode_header(header)


def test_length_mismatch_rejected():
    frame = encode_frame(_msg())
    with pytest.raises(WireError, match="header says"):
        decode_frame(frame + b"trailing")


def test_wire_stats_split_service_from_control():
    stats = WireStats()
    stats.record(_msg(), 100)
    stats.record(_msg(mtype="_cb_checkpoint_request", control=True), 50)
    stats.record(_msg(), 100)
    report = stats.report()
    assert report["frames_sent"] == 3
    assert report["service_frames"] == 2
    assert report["control_frames"] == 1
    assert report["wire_bytes"] == 250
    assert report["by_mtype"] == {"Ping": 2, "_cb_checkpoint_request": 1}
