"""Integration tests for the Bullet' download workload (Figure 17)."""

from repro.core import Mode
from repro.systems.bulletprime import DownloadScenario


def test_download_completes_for_all_nodes():
    result = DownloadScenario(node_count=8, block_count=16, seed=4,
                              max_time=200.0).run()
    assert result.nodes_completed == result.total_nodes
    times = result.sorted_times()
    assert times and times[-1] <= 200.0


def test_crystalball_overhead_is_moderate():
    baseline = DownloadScenario(node_count=8, block_count=16, seed=4,
                                max_time=300.0).run()
    monitored = DownloadScenario(node_count=8, block_count=16, seed=4,
                                 max_time=300.0,
                                 crystalball_mode=Mode.DEBUG).run()
    assert monitored.nodes_completed == monitored.total_nodes
    assert monitored.checkpoint_bytes > 0
    base = sorted(baseline.completion_times.values())[-1]
    mon = sorted(monitored.completion_times.values())[-1]
    # The checkpointing control plane must not blow up the download time.
    assert mon <= base * 2.0


def test_buggy_shadow_map_can_delay_or_block_downloads():
    buggy = DownloadScenario(node_count=8, block_count=16, seed=4,
                             fix_shadow_map=False, max_time=200.0).run()
    fixed = DownloadScenario(node_count=8, block_count=16, seed=4,
                             fix_shadow_map=True, max_time=200.0).run()
    assert fixed.nodes_completed >= buggy.nodes_completed
