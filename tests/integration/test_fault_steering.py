"""Integration: execution steering under the fault-injection nemesis.

The paper's headline claim, restaged with the nemesis layer: under network
partitions, a live RandTree deployment walks into inconsistent states; the
*same seed* (hence the identical fault schedule) with execution steering
enabled avoids them, because consequence prediction sees the violation
coming and the controller filters the offending events.
"""

from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget

SEED = 9


def _partitioned_randtree(mode):
    # Bootstrap through the second-smallest node so root handovers occur;
    # the recovery-timer bug is fixed so the partition-induced root
    # inconsistencies (Figure 9 family) are the ones at stake.  Churn is
    # off: the nemesis partitions are the only adversary.
    return (Experiment("randtree")
            .nodes(5)
            .duration(200)
            .churn(False)
            .network(rst_loss=0.6)
            .crystalball(mode, budget=SearchBudget(max_states=300, max_depth=6))
            .options(bootstrap_index=1, max_children=2,
                     fix_recovery_timer=True)
            .faults("partition")
            .max_events(120_000)
            .seed(SEED)
            .run())


def test_steering_avoids_partition_induced_violation():
    baseline = _partitioned_randtree(Mode.OFF)
    # The partition schedule pushes the unprotected run into inconsistent
    # states (a partitioned node elects itself root and re-merges badly).
    assert baseline.faults_injected() > 0
    assert baseline.live_inconsistent_states() > 0
    assert any(name.startswith("randtree.root")
               for name in baseline.monitor["properties_violated"])

    steered = _partitioned_randtree(Mode.STEERING)
    # Identical fault schedule...
    assert steered.faults["schedule"] and (
        [e for e in steered.faults["schedule"] if e["kind"] == "inject"]
        == [e for e in baseline.faults["schedule"] if e["kind"] == "inject"])
    # ...but CrystalBall steers around every violation the baseline hit.
    assert steered.live_inconsistent_states() == 0
    acted = (steered.total_predicted() + steered.total_steered()
             + steered.total_isc_blocks() + steered.total_filter_triggers())
    assert acted > 0
