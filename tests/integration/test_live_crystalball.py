"""Integration tests: CrystalBall attached to live simulated deployments."""

from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget


def _randtree_experiment(mode, seed=9, duration=200.0, nodes=5):
    # Bootstrap through the second-smallest node so root handovers occur
    # (the Figure 2 topology); the recovery-timer bug is assumed fixed so the
    # steerable inconsistencies are the remaining ones.
    return (Experiment("randtree")
            .nodes(nodes)
            .duration(duration)
            .churn(interval=50.0)
            .network(rst_loss=0.6)
            .crystalball(mode,
                         budget=SearchBudget(max_states=300, max_depth=6))
            .options(bootstrap_index=1, max_children=2,
                     fix_recovery_timer=True)
            .max_events(120_000)
            .seed(seed)
            .run())


def test_deep_online_debugging_finds_randtree_inconsistencies():
    report = _randtree_experiment(Mode.DEBUG)
    assert report.total_predicted() > 0
    found = report.distinct_violations_found()
    assert any(name.startswith("randtree.") for name in found)
    # Checkpoint traffic flowed between the nodes.
    assert report.checkpoint_bytes() > 0


def test_execution_steering_changes_behavior_in_live_run():
    report = _randtree_experiment(Mode.STEERING)
    acted = (report.total_predicted() + report.total_steered()
             + report.total_isc_blocks() + report.total_filter_triggers())
    assert acted > 0


def test_paxos_bug1_violation_without_crystalball_and_avoidance_with():
    baseline = (Experiment("paxos").scenario("figure13-bug1")
                .mode(Mode.OFF).seed(21)
                .options(inter_round_delay=15.0).run())
    assert baseline.outcome["violation_occurred"]
    steered = (Experiment("paxos").scenario("figure13-bug1")
               .mode(Mode.STEERING).seed(21)
               .options(inter_round_delay=15.0).run())
    assert not steered.outcome["violation_occurred"]
    assert steered.outcome["avoided_by_steering"] \
        or steered.outcome["avoided_by_isc"]
