"""Integration tests: CrystalBall attached to live simulated deployments."""

import pytest

from repro.core import CrystalBallConfig, Mode
from repro.mc import SearchBudget, TransitionConfig
from repro.runtime import NetworkModel
from repro.sim import OverlayWorkload
from repro.systems.paxos import Figure13Scenario
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _randtree_workload(mode, seed=9, duration=200.0, nodes=5):
    config = RandTreeConfig(max_children=2, fix_recovery_timer=True)
    workload = OverlayWorkload(
        protocol_factory=lambda: RandTree(config),
        properties=ALL_PROPERTIES,
        node_count=nodes,
        duration=duration,
        churn_mean_interval=50.0,
        crystalball_mode=mode,
        crystalball_config=CrystalBallConfig(
            mode=mode,
            search_budget=SearchBudget(max_states=300, max_depth=6),
            transition=TransitionConfig(enable_resets=True, max_resets_per_node=1),
        ),
        network=NetworkModel(rst_loss_probability=0.6),
        seed=seed,
        max_events=120_000,
    )
    # Bootstrap through the second-smallest node so root handovers occur
    # (the Figure 2 topology); the recovery-timer bug is assumed fixed so the
    # steerable inconsistencies are the remaining ones.
    workload.protocol_factory = lambda: RandTree(RandTreeConfig(
        bootstrap=(workload.addresses()[1],), max_children=2,
        fix_recovery_timer=True))
    return workload.run()


def test_deep_online_debugging_finds_randtree_inconsistencies():
    result = _randtree_workload(Mode.DEBUG)
    assert result.total_predicted() > 0
    found = result.distinct_violations_found()
    assert any(name.startswith("randtree.") for name in found)
    # Checkpoint traffic flowed between the nodes.
    assert result.checkpoint_bytes() > 0


def test_execution_steering_changes_behavior_in_live_run():
    result = _randtree_workload(Mode.STEERING)
    acted = (result.total_predicted() + result.total_steered()
             + result.total_isc_blocks() + result.total_filter_triggers())
    assert acted > 0


def test_paxos_bug1_violation_without_crystalball_and_avoidance_with():
    baseline = Figure13Scenario(bug=1, inter_round_delay=15.0,
                                crystalball_mode=Mode.OFF, seed=21).run()
    assert baseline.violation_occurred
    steered = Figure13Scenario(bug=1, inter_round_delay=15.0,
                               crystalball_mode=Mode.STEERING, seed=21).run()
    assert not steered.violation_occurred
    assert steered.avoided_by_steering or steered.avoided_by_isc
