"""Scale smoke tests: large workload-driven deployments under sampled
checking must complete, and the control plane must stay flat per node.

The 1000-node variant is gated behind ``CB_SLOW_TESTS=1`` (it takes tens
of seconds); the 64-vs-256 comparison always runs.
"""

import os

import pytest

from repro.api import Experiment
from repro.core.controller import CheckingPolicy
from repro.mc import SearchBudget


def _scaled_chord(n, duration=60.0, seed=1):
    """One scaled run: sampled checking (~16 on-duty controllers), delta
    checkpoints, a per-node-constant lookup load, no live properties."""
    return (Experiment("chord")
            .nodes(n)
            .duration(duration)
            .churn(False)
            .properties()
            .workload("lookups", rate=2.0 * n, burst=max(4, n // 16),
                      start=20.0)
            .crystalball("debug",
                         budget=SearchBudget(max_states=8, max_depth=2),
                         checking=CheckingPolicy(period=max(1, n // 16),
                                                 seed=0),
                         delta_checkpoints=True)
            .metrics()
            .max_events(4_000_000)
            .seed(seed)
            .run())


def _per_node_control_bytes(report):
    return report.checkpoint_bytes() / len(report.nodes)


def test_scaled_runs_complete_and_control_bytes_stay_flat():
    small, large = _scaled_chord(64), _scaled_chord(256)
    for report in (small, large):
        # The workload ran to completion: requests flowed and (nearly)
        # all of them came back.
        assert report.requests_injected() > 0
        assert report.requests_completed() > 0.9 * report.requests_injected()
        assert report.metrics["counters"]["runtime.messages_delivered"] > 0
        # Deep checking still happened under sampling.
        assert report.total("snapshots_collected") > 0
    # Quadrupling the deployment must not grow the per-node control
    # plane: sampled checking keeps the number of on-duty controllers
    # proportional to n/period, so the per-node cost stays flat.
    assert _per_node_control_bytes(large) \
        <= 1.5 * _per_node_control_bytes(small)


@pytest.mark.skipif(not os.environ.get("CB_SLOW_TESTS"),
                    reason="set CB_SLOW_TESTS=1 to run the 1000-node smoke")
def test_thousand_node_chord_smoke():
    report = _scaled_chord(1000)
    assert report.requests_injected() > 50_000
    assert report.requests_completed() > 0.9 * report.requests_injected()
    assert report.total("snapshots_collected") > 0
    # Flat per-node control bytes at 1000 nodes too.
    baseline = _per_node_control_bytes(_scaled_chord(256))
    assert _per_node_control_bytes(report) <= 1.5 * baseline
