"""Committed golden digests: the scaled runtime (active-set scheduler,
batched delivery, inflight index) must produce bit-identical reports.

The digests in ``tests/_golden/report_digests_fast.json`` were captured
from the per-node-tick runtime before the O(active) scheduler landed.
Any refactor of the event loop, network batching or checkpoint path that
changes (time, seq) allocation order — and therefore event order — shows
up here as a digest mismatch on at least one system.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.api import Experiment
from repro.mc import SearchBudget

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "_golden"
     / "report_digests_fast.json").read_text())

#: The exact configurations the goldens were captured with.
CONFIGS = {
    "randtree": dict(nodes=24, duration=50.0, options={}),
    "chord": dict(nodes=24, duration=50.0, options={}),
    "paxos": dict(nodes=24, duration=40.0, options={}),
    "bulletprime": dict(nodes=24, duration=50.0, options={"block_count": 3}),
    "crdtset": dict(nodes=24, duration=50.0, options={}),
    "kvstore": dict(nodes=24, duration=50.0, options={"ops_per_node": 2}),
}
SEED = 3


def _digest(system):
    tuning = CONFIGS[system]
    report = (Experiment(system)
              .nodes(tuning["nodes"])
              .duration(tuning["duration"])
              .churn(False)
              .crystalball("debug",
                           budget=SearchBudget(max_states=16, max_depth=2))
              .faults("chaos")
              .options(**tuning["options"])
              .seed(SEED)
              .run())
    data = report.to_dict()
    data.pop("wall_clock_seconds")
    blob = json.dumps(data, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("system", sorted(CONFIGS))
def test_report_digest_matches_committed_golden(system):
    assert _digest(system) == GOLDEN[f"{system}:{SEED}"], (
        f"{system} report diverged from the committed golden — the "
        f"scaled runtime is no longer bit-identical to the per-node-tick "
        f"baseline for this seed")
