"""JSONL result store: streaming appends, torn lines, resume bookkeeping."""

import json

from repro.campaign import ResultStore, make_record


def _record(run_id, status="ok", **summary):
    return make_record(
        {"run_id": run_id, "system": "randtree", "faults": [], "mode": "off",
         "seed": 0, "scenario": None},
        status=status,
        wall_clock_seconds=0.5,
        summary=summary or {"faults_injected": 1},
        error=None if status == "ok" else "boom",
    )


def test_append_streams_one_json_line_per_record(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    store.append(_record("a"))
    store.append(_record("b"))
    lines = (tmp_path / "store.jsonl").read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["run"]["run_id"] == "a"
    assert [r["run"]["run_id"] for r in store.load()] == ["a", "b"]


def test_append_creates_parent_directories(tmp_path):
    store = ResultStore(tmp_path / "deep" / "nested" / "store.jsonl")
    store.append(_record("a"))
    assert store.exists()


def test_torn_trailing_line_is_skipped(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ResultStore(path)
    store.append(_record("a"))
    with path.open("a") as handle:
        handle.write('{"run": {"run_id": "b"}, "status"')  # crash mid-write
    assert [r["run"]["run_id"] for r in store.load()] == ["a"]


def test_completed_keeps_latest_success_per_run(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    store.append(_record("a"))
    store.append(_record("b", status="error"))
    store.append(_record("b"))
    done = store.completed()
    assert set(done) == {"a", "b"}


def test_completed_drops_runs_whose_latest_record_failed(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    store.append(_record("a"))
    store.append(_record("a", status="error"))
    assert store.completed() == {}


def test_missing_store_loads_empty(tmp_path):
    store = ResultStore(tmp_path / "absent.jsonl")
    assert not store.exists()
    assert store.load() == []
    assert store.completed() == {}
