"""The campaign ``properties=`` axis: expansion, determinism, rollups."""

import pytest

from repro.api import Experiment
from repro.campaign import CampaignSpec, parse_axes, run_campaign
from repro.campaign.spec import RunSpec


def test_default_axis_keeps_legacy_run_ids():
    spec = CampaignSpec(systems=["randtree"], seeds=[1])
    (run,) = spec.expand()
    assert run.properties is None
    assert run.run_id == "randtree:live:none:off:seed=1"


def test_property_axis_adds_a_props_segment():
    spec = CampaignSpec(systems=["randtree"], seeds=[1],
                        properties=["randtree.*", None, "none"])
    runs = spec.expand()
    assert [run.run_id for run in runs] == [
        "randtree:live:none:off:seed=1:props=randtree.*",
        "randtree:live:none:off:seed=1",
        "randtree:live:none:off:seed=1:props=none",
    ]
    assert runs[0].properties == ("randtree.*",)
    assert runs[1].properties is None
    assert runs[2].properties == ()


def test_combo_values_and_axes_dict():
    spec = CampaignSpec(systems=["randtree"],
                        properties=["randtree.*+chord.*", "default"])
    runs = spec.expand()
    assert runs[0].properties == ("randtree.*", "chord.*")
    assert runs[1].properties is None
    assert spec.axes_dict()["properties"] == ["randtree.*+chord.*", "default"]


def test_unknown_property_pattern_fails_expand():
    spec = CampaignSpec(systems=["randtree"], properties=["bogus.*"])
    with pytest.raises(ValueError, match="matches no registered property"):
        spec.expand()


def test_properties_axis_refuses_scripted_scenarios():
    spec = CampaignSpec(systems=["randtree"], scenarios=["figure2"],
                        properties=["randtree.*"])
    with pytest.raises(ValueError, match="scripted scenarios"):
        spec.expand()


def test_runspec_round_trips_properties():
    run = RunSpec(system="randtree", properties=("randtree.*",),
                  properties_exclude=("randtree.recovery*",), seed=2)
    assert RunSpec.from_dict(run.to_dict()) == run
    bare = RunSpec(system="randtree")
    assert RunSpec.from_dict(bare.to_dict()) == bare


def test_parse_axes_properties_values():
    kwargs = parse_axes({"properties": "randtree.*,default,none"})
    assert kwargs["properties"] == ["randtree.*", None, "none"]


def _campaign_spec():
    return CampaignSpec(
        systems=["randtree"],
        seeds=[9],
        modes=["off"],
        properties=["randtree.*", "none"],
        duration=100.0,
        nodes=5,
        churn=True,
        churn_interval=50.0,
        network={"rst_loss": 0.6},
        options={"bootstrap_index": 1, "max_children": 2,
                 "fix_recovery_timer": True},
    )


def test_property_axis_produces_per_property_columns_deterministically():
    serial = run_campaign(_campaign_spec(), jobs=1)
    pooled = run_campaign(_campaign_spec(), jobs=2)
    assert serial.deterministic_dict() == pooled.deterministic_dict(), (
        "aggregate must be bit-identical across worker counts")
    assert serial.properties, "per-property columns must be present"
    assert all(name.startswith("randtree.") for name in serial.properties)
    for column in serial.properties.values():
        assert set(column) == {"violations", "runs_affected"}
    # The rollup axis separates the two selections.
    buckets = serial.rollups["properties"]
    assert set(buckets) == {"randtree.*", "none"}
    assert buckets["none"]["violations_observed"] == 0
    assert buckets["randtree.*"]["violations_observed"] > 0


def test_sweep_carries_builder_selection_and_exclude():
    report = (Experiment("randtree")
              .nodes(3)
              .duration(60.0)
              .churn(False)
              .properties("randtree.*",
                          exclude=["randtree.rejoins_within_window",
                                   "randtree.eventually_all_joined"])
              .sweep(seeds=[1, 2], jobs=1))
    assert report.run_count == 2
    assert set(report.rollups["properties"]) == {"randtree.*"}
    for run in report.runs:
        assert run["properties"] == ["randtree.*"]


def test_resume_accepts_stores_written_before_the_properties_axis(tmp_path):
    """Old JSONL records lack the properties/properties_exclude keys; they
    must still count as done when every present field matches defaults."""
    import json

    from repro.campaign import run_campaign
    from repro.campaign.store import make_record

    spec = CampaignSpec(systems=["randtree"], seeds=[5], duration=40.0,
                        nodes=3)
    (run,) = spec.expand()
    legacy_run = {key: value for key, value in run.to_dict().items()
                  if key not in ("properties", "properties_exclude")}
    record = make_record(legacy_run, status="ok", wall_clock_seconds=1.0,
                         summary={"faults_injected": 0,
                                  "violations_observed": 0})
    store_path = tmp_path / "store.jsonl"
    store_path.write_text(json.dumps(record) + "\n")

    report = run_campaign(spec, jobs=1, out=store_path, resume=True)
    assert report.timing["resumed_runs"] == 1, (
        "a pre-properties-axis record whose fields all match must resume")

    # A record that differs in a real setting still re-executes.
    changed = dict(legacy_run, duration=99.0)
    store_path.write_text(
        json.dumps(make_record(changed, status="ok", wall_clock_seconds=1.0,
                               summary={})) + "\n")
    report = run_campaign(spec, jobs=1, out=store_path, resume=True)
    assert report.timing["resumed_runs"] == 0


def test_sweep_refuses_property_instances():
    from repro.properties import get_property

    experiment = (Experiment("randtree").duration(30.0)
                  .properties(get_property("randtree.no_self_reference")))
    with pytest.raises(ValueError, match="cannot carry Property instances"):
        experiment.sweep(seeds=[1], jobs=1)


def test_sweep_warns_about_uncarried_full_recheck_setting():
    experiment = (Experiment("randtree").duration(30.0).churn(False)
                  .incremental_monitor(False))
    with pytest.warns(UserWarning, match="incremental_monitor"):
        experiment.sweep(seeds=[1], jobs=1)
    # Restoring the default clears the warning.
    experiment.incremental_monitor(True)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        experiment.sweep(seeds=[1], jobs=1)
