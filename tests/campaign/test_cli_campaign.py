"""The ``python -m repro campaign`` subcommand."""

import json

from repro.api.cli import main


def test_campaign_runs_a_tiny_matrix_and_prints_the_table(capsys, tmp_path):
    store = tmp_path / "store.jsonl"
    assert main(["campaign",
                 "--axes", "systems=randtree,paxos",
                 "--axes", "presets=partition",
                 "--axes", "seeds=1",
                 "--duration", "30",
                 "--jobs", "1",
                 "--out", str(store)]) == 0
    out = capsys.readouterr().out
    assert "campaign: 2 runs (ok 2, failed 0)" in out
    assert "system=randtree" in out
    records = [json.loads(line) for line in store.read_text().splitlines()]
    assert len(records) == 2
    assert all(record["status"] == "ok" for record in records)


def test_campaign_json_aggregate_is_machine_readable(capsys):
    assert main(["campaign",
                 "--axes", "systems=randtree",
                 "--axes", "presets=partition,none",
                 "--axes", "seeds=1",
                 "--duration", "30",
                 "--jobs", "1",
                 "--json"]) == 0
    aggregate = json.loads(capsys.readouterr().out)
    assert aggregate["totals"]["runs"] == 2
    assert aggregate["totals"]["succeeded"] == 2
    assert set(aggregate["rollups"]["preset"]) == {"partition", "none"}
    assert aggregate["timing"]["jobs"] == 1


def test_campaign_pool_matches_serial_aggregate(capsys):
    args = ["campaign", "--axes", "systems=randtree,paxos",
            "--axes", "presets=partition", "--axes", "seeds=1",
            "--duration", "30", "--json"]
    assert main(args + ["--jobs", "1"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(args + ["--jobs", "2"]) == 0
    pooled = json.loads(capsys.readouterr().out)
    serial.pop("timing")
    pooled.pop("timing")
    assert serial == pooled


def test_campaign_writes_a_markdown_summary(capsys, tmp_path):
    summary = tmp_path / "summary.md"
    assert main(["campaign", "--axes", "systems=randtree",
                 "--axes", "presets=partition", "--axes", "seeds=1",
                 "--duration", "30", "--jobs", "1",
                 "--markdown-summary", str(summary)]) == 0
    capsys.readouterr()
    text = summary.read_text()
    assert text.startswith("### Campaign summary")
    assert "| total |" in text


def test_campaign_resume_skips_completed_runs(capsys, tmp_path):
    store = tmp_path / "store.jsonl"
    args = ["campaign", "--axes", "systems=randtree",
            "--axes", "presets=partition,none", "--axes", "seeds=1",
            "--duration", "30", "--jobs", "1", "--out", str(store), "--json"]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args + ["--resume"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["timing"]["resumed_runs"] == 2
    first.pop("timing")
    second.pop("timing")
    assert first == second


def test_campaign_fail_on_violation_gates_the_exit_code(capsys):
    # A partitioned randtree run with steering off reliably observes
    # inconsistent states at this duration/seed.
    assert main(["campaign", "--axes", "systems=randtree",
                 "--axes", "presets=partition", "--axes", "seeds=1",
                 "--duration", "60", "--jobs", "1",
                 "--fail-on-violation"]) == 1
    err = capsys.readouterr().err
    assert "safety violation" in err


def test_campaign_repeated_axes_flags_for_the_same_key_merge(capsys):
    assert main(["campaign", "--axes", "systems=randtree",
                 "--axes", "presets=partition", "--axes", "presets=crash",
                 "--axes", "seeds=1", "--duration", "30", "--jobs", "1",
                 "--json"]) == 0
    aggregate = json.loads(capsys.readouterr().out)
    assert set(aggregate["rollups"]["preset"]) == {"partition", "crash"}


def test_campaign_markdown_summary_creates_parent_directories(capsys, tmp_path):
    summary = tmp_path / "deep" / "nested" / "summary.md"
    assert main(["campaign", "--axes", "systems=randtree",
                 "--axes", "seeds=1", "--duration", "20", "--jobs", "1",
                 "--markdown-summary", str(summary)]) == 0
    capsys.readouterr()
    assert summary.read_text().startswith("### Campaign summary")


def test_campaign_per_system_durations(capsys):
    assert main(["campaign", "--axes", "systems=randtree,paxos",
                 "--axes", "seeds=1", "--jobs", "1",
                 "--duration", "randtree=30", "--duration", "paxos=20",
                 "--json"]) == 0
    aggregate = json.loads(capsys.readouterr().out)
    assert aggregate["totals"]["runs"] == 2
