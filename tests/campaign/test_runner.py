"""Campaign execution: pool vs serial determinism, streaming, resume."""

import json

import pytest

from repro.api import Experiment
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    execute_run,
    run_campaign,
    run_one,
)

#: A tiny but non-trivial matrix: 2 systems × 2 fault combos × 1 seed.
TINY = dict(systems=["randtree", "paxos"],
            fault_presets=["partition", None],
            seeds=[1],
            duration=30.0)


def test_serial_and_pooled_runs_agree_on_the_aggregate(tmp_path):
    serial = run_campaign(CampaignSpec(**TINY), jobs=1,
                          out=tmp_path / "serial.jsonl")
    pooled = run_campaign(CampaignSpec(**TINY), jobs=2,
                          out=tmp_path / "pooled.jsonl")
    assert serial.deterministic_dict() == pooled.deterministic_dict()
    assert serial.timing["jobs"] == 1
    assert pooled.timing["jobs"] == 2


def test_rerunning_the_same_campaign_reproduces_the_aggregate_json():
    one = run_campaign(CampaignSpec(**TINY), jobs=1)
    two = run_campaign(CampaignSpec(**TINY), jobs=1)
    assert (json.dumps(one.deterministic_dict(), sort_keys=True)
            == json.dumps(two.deterministic_dict(), sort_keys=True))


def test_results_stream_to_the_store_as_runs_finish(tmp_path):
    seen = []
    runner = CampaignRunner(CampaignSpec(**TINY), jobs=1,
                            out=tmp_path / "store.jsonl",
                            progress=seen.append)
    report = runner.run()
    assert report.run_count == 4
    assert len(seen) == 4
    records = ResultStore(tmp_path / "store.jsonl").load()
    assert len(records) == 4
    assert all(record["status"] == "ok" for record in records)
    assert all(record["schema"] == 1 for record in records)
    # Per-run reports are carried in full for offline analysis.
    assert all("totals" in record["report"] for record in records)


def test_resume_skips_completed_runs_and_keeps_the_aggregate(tmp_path):
    store_path = tmp_path / "store.jsonl"
    full = run_campaign(CampaignSpec(**TINY), jobs=1, out=store_path)

    # Drop the last two lines: the campaign "crashed" half way through.
    lines = store_path.read_text().strip().splitlines()
    store_path.write_text("\n".join(lines[:2]) + "\n")

    calls = []
    resumed = CampaignRunner(CampaignSpec(**TINY), jobs=1, out=store_path,
                             progress=calls.append).run(resume=True)
    assert resumed.timing["resumed_runs"] == 2
    assert len(calls) == 2, "only the missing half reruns"
    assert resumed.deterministic_dict() == full.deterministic_dict()


def test_resume_ignores_store_entries_outside_the_campaign(tmp_path):
    store_path = tmp_path / "store.jsonl"
    run_campaign(CampaignSpec(**TINY), jobs=1, out=store_path)
    narrowed = dict(TINY, systems=["randtree"])
    resumed = run_campaign(CampaignSpec(**narrowed), jobs=1,
                           out=store_path, resume=True)
    assert resumed.run_count == 2
    assert resumed.timing["resumed_runs"] == 2


def test_resume_reruns_cells_whose_settings_changed(tmp_path):
    store_path = tmp_path / "store.jsonl"
    run_campaign(CampaignSpec(**TINY), jobs=1, out=store_path)
    longer = dict(TINY, duration=40.0)
    calls = []
    resumed = CampaignRunner(CampaignSpec(**longer), jobs=1, out=store_path,
                             progress=calls.append).run(resume=True)
    assert resumed.timing["resumed_runs"] == 0
    assert len(calls) == 4, "same run ids, different duration: all rerun"


def test_resume_without_a_store_is_an_error():
    with pytest.raises(ValueError, match="resume needs a result store"):
        CampaignRunner(CampaignSpec(**TINY), jobs=1).run(resume=True)


def test_a_failing_run_becomes_an_error_record_not_a_crash():
    spec = CampaignSpec(systems=["randtree"], duration=20.0,
                        options={"bogus_option": 1})
    report = run_campaign(spec, jobs=1)
    assert report.run_count == 1
    assert report.failed == 1
    (failure,) = report.failures
    assert "bogus_option" in failure["error"]


def test_execute_run_records_summary_without_wall_clock():
    spec = CampaignSpec(systems=["randtree"], fault_presets=["partition"],
                        seeds=[1], duration=30.0)
    (run,) = spec.expand()
    record = execute_run(run.to_dict())
    assert record["status"] == "ok"
    assert record["summary"]["faults_injected"] > 0
    assert "wall_clock" not in json.dumps(record["summary"])
    assert record["wall_clock_seconds"] > 0


def test_experiment_sweep_builds_on_the_builder_settings(tmp_path):
    report = (Experiment("randtree")
              .duration(30)
              .churn(False)
              .sweep(seeds=[1, 2], faults=["partition", None], jobs=1,
                     out=tmp_path / "sweep.jsonl"))
    assert report.run_count == 4
    assert report.succeeded == 4
    assert set(report.rollups["preset"]) == {"partition", "none"}
    assert set(report.rollups["seed"]) == {"1", "2"}
    assert ResultStore(tmp_path / "sweep.jsonl").exists()


def test_experiment_sweep_defaults_every_axis_to_the_builder_value():
    report = (Experiment("paxos")
              .duration(20)
              .seed(9)
              .faults("crash")
              .sweep(jobs=1))
    assert report.run_count == 1
    (row,) = report.runs
    assert row["seed"] == 9
    assert row["faults"] == ["crash"]


def test_sweep_cell_reproduces_a_plain_run_with_network_settings():
    def builder():
        return (Experiment("randtree")
                .nodes(4)
                .duration(40)
                .churn(False)
                .network(rst_loss=0.6)
                .seed(1))

    direct = builder().run()
    report = builder().sweep(jobs=1)
    (row,) = report.runs
    assert (row["summary"]["live_inconsistent_states"]
            == direct.live_inconsistent_states())


def test_sweep_rejects_an_explicit_network_model():
    from repro.runtime import NetworkModel

    with pytest.raises(ValueError, match="NetworkModel"):
        (Experiment("randtree").duration(20)
         .network(NetworkModel()).sweep(jobs=1))


def test_sweep_rejects_explicit_fault_instances():
    with pytest.raises(ValueError, match="Fault instances"):
        (Experiment("randtree").duration(20)
         .faults(partition_every=10, heal_after=2).sweep(jobs=1))


def test_sweep_carries_fault_start_after_into_the_cells():
    def builder():
        return (Experiment("randtree")
                .nodes(4)
                .duration(60)
                .churn(False)
                .seed(1)
                .faults("partition", start_after=50.0))

    direct = builder().run()
    report = builder().sweep(jobs=1)
    (row,) = report.runs
    assert row["summary"]["faults_injected"] == direct.faults_injected()
    assert (row["summary"]["live_inconsistent_states"]
            == direct.live_inconsistent_states())


def test_scenario_cells_honor_the_campaign_duration():
    spec = CampaignSpec(systems=["randtree"],
                        scenarios=["partition-recovery"],
                        duration=40.0)
    (run,) = spec.expand()
    report = run_one(run)
    assert report.simulated_seconds <= 40.0 + 1e-9
    assert report.scenario == "partition-recovery"


def test_sweep_warns_when_a_faults_axis_drops_fault_instances():
    from repro.faults import Partition

    with pytest.warns(UserWarning, match="Fault instances are dropped"):
        (Experiment("randtree").duration(20).churn(False)
         .faults(Partition(every=10, duration=2))
         .sweep(faults=["partition"], jobs=1))


def test_sweep_warns_about_uncarried_builder_settings():
    with pytest.warns(UserWarning, match="ignores these builder settings"):
        (Experiment("randtree").duration(20).churn(False)
         .crystalball("debug", engine="serial").sweep(jobs=1))
