"""Obs metrics flow into campaign summaries and the deterministic aggregate."""

from repro.campaign import CampaignSpec, build_campaign_report, make_record
from repro.campaign.runner import run_one, summarize_report


def _record(run, metrics, **summary_overrides):
    summary = {"node_count": 3, "simulated_seconds": 20.0, "churn_events": 0,
               "faults_injected": 0, "fault_types": [],
               "violations_predicted": 0, "violations_avoided": 0,
               "live_inconsistent_states": 0, "violations_observed": 0,
               "metrics": metrics}
    summary.update(summary_overrides)
    return make_record(run.to_dict(), status="ok", wall_clock_seconds=1.0,
                       summary=summary)


def test_aggregate_sums_metric_counters_across_runs():
    spec = CampaignSpec(systems=["randtree"], seeds=[1, 2])
    runs = spec.expand()
    records = [
        _record(runs[0], {"runtime.events_executed": 10, "mc.runs": 2}),
        _record(runs[1], {"runtime.events_executed": 7}),
    ]
    report = build_campaign_report(spec, runs, records, jobs=1)
    assert report.metrics == {"runtime.events_executed": 17, "mc.runs": 2}
    assert report.deterministic_dict()["metrics"] == report.metrics


def test_failed_runs_and_missing_metrics_do_not_contribute():
    spec = CampaignSpec(systems=["randtree"], seeds=[1, 2])
    runs = spec.expand()
    records = [
        _record(runs[0], {"runtime.events_executed": 5}),
        make_record(runs[1].to_dict(), status="error",
                    wall_clock_seconds=0.5, error="boom"),
    ]
    report = build_campaign_report(spec, runs, records, jobs=1)
    assert report.metrics == {"runtime.events_executed": 5}


def test_summarize_report_exposes_only_deterministic_counters():
    spec = CampaignSpec(systems=["randtree"], seeds=[1], duration=30.0,
                        nodes=4, modes=["debug"])
    report = run_one(spec.expand()[0])
    summary = summarize_report(report)
    metrics = summary["metrics"]
    assert metrics["runtime.events_executed"] > 0
    assert metrics["controller.ticks"] > 0
    # parallel.* counters never enter the rollup, and histograms/gauges
    # (wall-clock carriers) are not part of the summary at all.
    assert not any(name.startswith("parallel.") for name in metrics)
    assert all(isinstance(value, int) for value in metrics.values())


def test_live_campaign_cells_are_seed_deterministic_with_metrics():
    spec = CampaignSpec(systems=["randtree"], seeds=[5], duration=30.0,
                        nodes=4)
    run = spec.expand()[0]
    first = summarize_report(run_one(run))
    second = summarize_report(run_one(run))
    assert first == second
