"""Campaign aggregation math and rendering."""

import json

from repro.campaign import (
    CampaignSpec,
    build_campaign_report,
    make_record,
    render_campaign_report,
)
from repro.campaign.spec import RunSpec


def _summary(**overrides):
    summary = {"node_count": 4, "simulated_seconds": 30.0, "churn_events": 0,
               "faults_injected": 2, "fault_types": ["partition"],
               "violations_predicted": 1, "violations_avoided": 1,
               "live_inconsistent_states": 3, "violations_observed": 3}
    summary.update(overrides)
    return summary


def _fixture():
    spec = CampaignSpec(systems=["randtree", "paxos"],
                        fault_presets=["partition"], seeds=[1])
    runs = spec.expand()
    records = [
        make_record(runs[0].to_dict(), status="ok", wall_clock_seconds=1.0,
                    summary=_summary()),
        make_record(runs[1].to_dict(), status="error", wall_clock_seconds=2.0,
                    error="Traceback ...\nValueError: boom"),
    ]
    return spec, runs, records


def test_totals_and_rollups_fold_only_successful_summaries():
    spec, runs, records = _fixture()
    report = build_campaign_report(spec, runs, records, jobs=2)
    assert report.totals["runs"] == 2
    assert report.totals["succeeded"] == 1
    assert report.totals["failed"] == 1
    assert report.totals["faults_injected"] == 2
    assert report.totals["violations_observed"] == 3
    assert report.rollups["system"]["randtree"]["succeeded"] == 1
    assert report.rollups["system"]["paxos"]["failed"] == 1
    assert report.rollups["preset"]["partition"]["runs"] == 2
    (failure,) = report.failures
    assert failure["run_id"] == runs[1].run_id
    assert "boom" in failure["error"]


def test_aggregate_order_is_independent_of_completion_order():
    spec, runs, records = _fixture()
    forward = build_campaign_report(spec, runs, records, jobs=2)
    backward = build_campaign_report(spec, runs, list(reversed(records)),
                                     jobs=2)
    assert forward.deterministic_dict() == backward.deterministic_dict()


def test_deterministic_dict_excludes_timing():
    spec, runs, records = _fixture()
    report = build_campaign_report(spec, runs, records, jobs=2,
                                   wall_clock_seconds=12.5)
    data = report.to_dict()
    assert data["timing"]["wall_clock_seconds"] == 12.5
    deterministic = report.deterministic_dict()
    assert "timing" not in deterministic
    assert "wall_clock" not in json.dumps(deterministic)


def test_faultless_runs_flags_presets_that_injected_nothing():
    spec = CampaignSpec(systems=["randtree"], fault_presets=["partition"],
                        seeds=[1])
    runs = spec.expand()
    records = [make_record(runs[0].to_dict(), status="ok",
                           wall_clock_seconds=1.0,
                           summary=_summary(faults_injected=0))]
    report = build_campaign_report(spec, runs, records, jobs=1)
    assert report.faultless_runs() == [runs[0].run_id]


def test_render_plain_text_contains_rollups_and_failures():
    spec, runs, records = _fixture()
    report = build_campaign_report(spec, runs, records, jobs=2)
    text = render_campaign_report(report)
    assert "campaign: 2 runs (ok 1, failed 1)" in text
    assert "system=randtree" in text
    assert "ValueError: boom" in text


def test_render_markdown_is_a_github_table():
    spec, runs, records = _fixture()
    report = build_campaign_report(spec, runs, records, jobs=2)
    text = render_campaign_report(report, markdown=True)
    assert text.startswith("### Campaign summary")
    assert "| axis | runs | ok |" in text
    assert "| total | 2 | 1 | 1 |" in text
    assert "#### Failures (1)" in text


def test_missing_records_do_not_break_aggregation():
    spec, runs, _ = _fixture()
    report = build_campaign_report(spec, runs, [], jobs=1)
    assert report.totals["runs"] == 0
    assert report.runs == []


def test_single_valued_axes_are_elided_from_the_table():
    spec = CampaignSpec(systems=["randtree"], fault_presets=["partition"],
                        seeds=[1])
    runs = spec.expand()
    records = [make_record(run.to_dict(), status="ok", wall_clock_seconds=1.0,
                           summary=_summary()) for run in runs]
    text = render_campaign_report(
        build_campaign_report(spec, runs, records, jobs=1))
    assert "mode=off" not in text, "single-valued mode axis repeats totals"
    assert "system=randtree" in text


def test_runspec_helper_used_by_fixture_round_trips():
    run = RunSpec(system="randtree", faults=("partition",), seed=1)
    assert RunSpec.from_dict(run.to_dict()) == run
