"""CampaignSpec expansion, RunSpec identity and axis parsing."""

import pytest

from repro.campaign import CampaignSpec, RunSpec, parse_axes, parse_seed_values
from repro.faults.presets import list_presets


def test_expand_is_the_full_cross_product():
    spec = CampaignSpec(systems=["randtree", "paxos"],
                        fault_presets=["partition", None],
                        seeds=[1, 2, 3],
                        modes=["off", "debug"])
    runs = spec.expand()
    assert len(runs) == 2 * 2 * 3 * 2
    ids = [run.run_id for run in runs]
    assert len(set(ids)) == len(ids), "run ids must be unique"


def test_expand_defaults_to_every_registered_system():
    runs = CampaignSpec().expand()
    assert {run.system for run in runs} == {
        "randtree", "chord", "paxos", "bulletprime", "crdtset", "kvstore"}
    assert all(run.scenario is None for run in runs)
    assert all(run.faults == () for run in runs)


def test_preset_combo_string_expands_to_multiple_presets():
    spec = CampaignSpec(systems=["randtree"],
                        fault_presets=["partition+delay"])
    (run,) = spec.expand()
    assert run.faults == ("partition", "delay")
    assert "partition+delay" in run.run_id


def test_per_system_durations_override_the_scalar():
    spec = CampaignSpec(systems=["randtree", "paxos"], duration=100.0,
                        durations={"paxos": 30.0})
    by_system = {run.system: run for run in spec.expand()}
    assert by_system["randtree"].duration == 100.0
    assert by_system["paxos"].duration == 30.0


def test_run_id_is_stable_and_order_independent():
    run = RunSpec(system="chord", scenario="link-flap", mode="steering",
                  seed=7, faults=("partition", "delay"))
    assert run.run_id == "chord:link-flap:partition+delay:steering:seed=7"


def test_runspec_round_trips_through_dict():
    run = RunSpec(system="paxos", mode="debug", seed=3,
                  faults=("crash",), duration=45.0, nodes=5,
                  options=(("fixed", True),))
    again = RunSpec.from_dict(run.to_dict())
    assert again == run
    assert again.run_id == run.run_id


@pytest.mark.parametrize("axes, message", [
    (dict(systems=["nosuch"]), "unknown system"),
    (dict(systems=["randtree"], fault_presets=["nosuch"]), "unknown fault preset"),
    (dict(systems=["paxos"], scenarios=["nosuch"]), "no scenario"),
    (dict(systems=["randtree"], modes=["warp"]), "unknown mode"),
])
def test_expand_rejects_unknown_axis_values(axes, message):
    with pytest.raises(ValueError, match=message):
        CampaignSpec(**axes).expand()


def test_expand_rejects_an_empty_system_axis():
    with pytest.raises(ValueError, match="no systems"):
        CampaignSpec(systems=[]).expand()


def test_parse_seed_values_handles_ranges_and_lists():
    assert parse_seed_values("3") == [3]
    assert parse_seed_values("1,5,9") == [1, 5, 9]
    assert parse_seed_values("0-3") == [0, 1, 2, 3]
    assert parse_seed_values("0-2,7") == [0, 1, 2, 7]
    with pytest.raises(ValueError):
        parse_seed_values("5-1")
    with pytest.raises(ValueError):
        parse_seed_values("")


def test_parse_axes_expands_all_and_none():
    kwargs = parse_axes({"systems": "all", "presets": "all",
                         "seeds": "1-2", "modes": "off,debug",
                         "scenarios": "live"})
    assert kwargs["systems"] is None
    assert kwargs["fault_presets"] == list_presets()
    assert kwargs["seeds"] == [1, 2]
    assert kwargs["modes"] == ["off", "debug"]
    assert kwargs["scenarios"] == [None]


def test_parse_axes_accepts_faults_as_alias_for_presets():
    kwargs = parse_axes({"faults": "partition,none"})
    assert kwargs["fault_presets"] == ["partition", None]


def test_parse_axes_all_survives_merging_with_named_values():
    # Repeated --axes flags for one key merge into "all,<name>"; "all"
    # must still win rather than fall through as a literal name.
    assert parse_axes({"systems": "all,chord"})["systems"] is None
    merged = parse_axes({"presets": "all,chaos"})["fault_presets"]
    assert merged == list_presets()
    with_none = parse_axes({"presets": "all,none"})["fault_presets"]
    assert with_none == list_presets() + [None]


def test_fault_start_after_is_carried_into_every_cell():
    spec = CampaignSpec(systems=["randtree"], fault_presets=["partition"],
                        fault_start_after=42.0)
    (run,) = spec.expand()
    assert run.fault_start_after == 42.0
    assert RunSpec.from_dict(run.to_dict()).fault_start_after == 42.0


def test_expand_rejects_fault_presets_crossed_with_scenarios():
    spec = CampaignSpec(systems=["randtree"],
                        scenarios=["partition-recovery"],
                        fault_presets=["delay"])
    with pytest.raises(ValueError, match="scenarios script their own faults"):
        spec.expand()


def test_scenarios_with_the_default_faultfree_axis_are_fine():
    spec = CampaignSpec(systems=["randtree"],
                        scenarios=["partition-recovery"])
    (run,) = spec.expand()
    assert run.scenario == "partition-recovery"
    assert run.faults == ()


def test_expand_rejects_durations_for_unknown_systems():
    spec = CampaignSpec(systems=["randtree"], durations={"paxo": 60.0})
    with pytest.raises(ValueError, match="unknown system.*paxo"):
        spec.expand()


def test_parse_axes_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign axis"):
        parse_axes({"bogus": "1"})
