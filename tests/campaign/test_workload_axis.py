"""The campaign ``workloads=`` axis: expansion, run ids, end-to-end runs."""

import pytest

from repro.api import Experiment
from repro.campaign import CampaignSpec, parse_axes, run_campaign
from repro.campaign.spec import RunSpec


def test_default_axis_keeps_legacy_run_ids():
    spec = CampaignSpec(systems=["chord"], seeds=[1])
    (run,) = spec.expand()
    assert run.workload is None
    assert run.run_id == "chord:live:none:off:seed=1"


def test_workload_axis_adds_a_wl_segment():
    spec = CampaignSpec(systems=["chord"], seeds=[1],
                        workloads=["lookups", None, "none"])
    runs = spec.expand()
    assert [run.run_id for run in runs] == [
        "chord:live:none:off:seed=1:wl=lookups",
        "chord:live:none:off:seed=1",
        "chord:live:none:off:seed=1",
    ]
    assert runs[0].workload == "lookups"
    assert runs[1].workload is None and runs[2].workload is None


def test_axes_dict_lists_workloads():
    spec = CampaignSpec(systems=["chord"], workloads=["lookups", None])
    assert spec.axes_dict()["workloads"] == ["lookups", "none"]


def test_unknown_workload_fails_expand():
    spec = CampaignSpec(systems=["chord"], workloads=["bogus"])
    with pytest.raises(ValueError, match="known workloads"):
        spec.expand()
    # A workload must exist on *every* swept system.
    spec = CampaignSpec(systems=["chord", "randtree"], workloads=["lookups"])
    with pytest.raises(ValueError, match="randtree.*has no workload 'lookups'"):
        spec.expand()


def test_workload_axis_refuses_scripted_scenarios():
    spec = CampaignSpec(systems=["chord"], scenarios=["figure10"],
                        workloads=["lookups"])
    with pytest.raises(ValueError, match="scripted scenarios"):
        spec.expand()


def test_unknown_override_keys_fail_expand():
    spec = CampaignSpec(systems=["chord"], workloads=["lookups"],
                        workload_overrides={"rate": 50.0, "ratee": 1})
    with pytest.raises(ValueError, match="unknown workload override"):
        spec.expand()


def test_overrides_only_attach_to_workload_cells():
    spec = CampaignSpec(systems=["chord"], workloads=["lookups", None],
                        workload_overrides={"rate": 50.0})
    with_wl, without = spec.expand()
    assert with_wl.workload_overrides == (("rate", 50.0),)
    assert without.workload_overrides == ()


def test_runspec_round_trips_workload():
    run = RunSpec(system="chord", workload="lookups",
                  workload_overrides=(("burst", 4), ("rate", 50.0)), seed=2)
    assert RunSpec.from_dict(run.to_dict()) == run
    bare = RunSpec(system="chord")
    assert RunSpec.from_dict(bare.to_dict()) == bare
    # Records written before the workload axis existed still load.
    legacy = {key: value for key, value in bare.to_dict().items()
              if key not in ("workload", "workload_overrides")}
    assert RunSpec.from_dict(legacy) == bare


def test_parse_axes_workloads_values():
    kwargs = parse_axes({"workloads": "lookups,none"})
    assert kwargs["workloads"] == ["lookups", None]


def test_campaign_runs_workload_cells_end_to_end():
    spec = CampaignSpec(
        systems=["chord"],
        seeds=[3],
        workloads=["lookups", None],
        workload_overrides={"rate": 40.0, "burst": 4, "start": 40.0},
        duration=120.0,
        nodes=6,
    )
    report = run_campaign(spec, jobs=1)
    by_id = {run["run_id"]: run for run in report.runs}
    driven = by_id["chord:live:none:off:seed=3:wl=lookups"]
    idle = by_id["chord:live:none:off:seed=3"]
    assert driven["summary"]["requests_injected"] > 0
    assert driven["summary"]["requests_completed"] > 0
    assert idle["summary"]["requests_injected"] == 0


def test_sweep_carries_workload_selection():
    report = (Experiment("chord")
              .nodes(6)
              .duration(120.0)
              .churn(False)
              .workload("lookups", rate=40.0, burst=4, start=40.0)
              .sweep(seeds=[1, 2], jobs=1))
    assert report.run_count == 2
    for run in report.runs:
        assert run["run_id"].endswith(":wl=lookups")
        assert run["summary"]["requests_injected"] > 0
