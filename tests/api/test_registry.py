"""Registry round-trip tests for the unified experiment API."""

import pytest

from repro.api import (
    ScenarioSpec,
    SystemSpec,
    get_system,
    list_systems,
    register_system,
    unregister_system,
)
from repro.runtime import Protocol

BUNDLED = ("bulletprime", "chord", "crdtset", "kvstore", "paxos", "randtree")


def test_all_bundled_systems_are_registered():
    names = [spec.name for spec in list_systems()]
    for name in BUNDLED:
        assert name in names


@pytest.mark.parametrize("name", BUNDLED)
def test_get_system_round_trip(name):
    spec = get_system(name)
    assert spec.name == name
    assert spec.properties, "every system declares safety properties"
    assert spec.scenarios, "every system registers named scenarios"
    assert get_system(name) is spec


@pytest.mark.parametrize("name", BUNDLED)
def test_protocol_factory_builds_protocols(name):
    spec = get_system(name)
    import repro.runtime as runtime
    addresses = runtime.make_addresses(max(spec.default_nodes, 2))
    factory = spec.protocol_factory(addresses, {})
    protocol = factory()
    assert isinstance(protocol, Protocol)
    # The factory is reusable: every node gets its own call.
    assert isinstance(factory(), Protocol)


@pytest.mark.parametrize("name", BUNDLED)
def test_transition_factory_returns_fresh_configs(name):
    spec = get_system(name)
    assert spec.transition_factory() is not spec.transition_factory()


def test_scenario_lookup_rejects_unknown_names():
    spec = get_system("randtree")
    with pytest.raises(KeyError, match="figure2"):
        spec.scenario("no-such-scenario")


def test_get_system_rejects_unknown_names():
    with pytest.raises(KeyError, match="randtree"):
        get_system("no-such-system")


def test_register_and_unregister_custom_system():
    spec = SystemSpec(
        name="custom-test-system",
        summary="registry round-trip fixture",
        protocol_factory=lambda addresses, options: (lambda: None),
        properties=get_system("randtree").properties,
        scenarios={"noop": ScenarioSpec(name="noop", description="-",
                                        run=lambda **kw: None)},
    )
    try:
        register_system(spec)
        assert get_system("custom-test-system") is spec
        with pytest.raises(ValueError, match="already registered"):
            register_system(SystemSpec(
                name="custom-test-system", summary="clash",
                protocol_factory=spec.protocol_factory,
                properties=spec.properties))
    finally:
        unregister_system("custom-test-system")
    with pytest.raises(KeyError):
        get_system("custom-test-system")
