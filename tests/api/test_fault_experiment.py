"""Fault injection through the unified API: builder, CLI, scenarios."""

import json
import warnings

import pytest

from repro.api import Experiment
from repro.api.cli import main
from repro.faults import Partition, list_presets


def test_builder_faults_with_preset_names():
    report = (Experiment("randtree").nodes(4).duration(120).churn(False)
              .faults("partition").seed(3).run())
    assert report.faults_injected() > 0
    assert report.fault_breakdown()["partition"]["injected"] > 0
    assert report.to_dict()["faults"]["faults_injected"] == report.faults_injected()


def test_builder_partition_shorthand():
    report = (Experiment("paxos").nodes(3).duration(60).churn(False)
              .faults(partition_every=15.0, heal_after=5.0).seed(1).run())
    assert report.faults_injected() > 0
    assert set(report.fault_breakdown()) == {"partition"}
    healed = report.fault_breakdown()["partition"]["healed"]
    assert healed == report.fault_breakdown()["partition"]["injected"]


def test_builder_heal_after_requires_partition_every():
    with pytest.raises(ValueError, match="partition_every"):
        Experiment("paxos").faults(heal_after=5.0)


def test_builder_mixes_presets_and_fault_instances():
    report = (Experiment("randtree").nodes(3).duration(80).churn(False)
              .faults("clock-skew", Partition(at=20.0, duration=10.0))
              .seed(2).run())
    assert set(report.fault_breakdown()) == {"clock-skew", "partition"}


def test_fault_seed_decouples_schedule_from_run_seed():
    def breakdown(fault_seed):
        return (Experiment("randtree").nodes(4).duration(120).churn(False)
                .faults("crash", seed=fault_seed).seed(5).run()
                .faults.get("schedule"))
    assert breakdown(1) == breakdown(1)
    assert breakdown(1) != breakdown(2)


def test_scenario_warns_about_builder_faults():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        (Experiment("randtree").scenario("figure2").faults("partition")
         .options(max_states=200).run())
    assert any("faults" in str(w.message) for w in caught
               if issubclass(w.category, UserWarning))


def test_fault_scenarios_registered_for_every_system():
    expected = {
        "randtree": {"partition-recovery", "flaky-network"},
        "chord": {"partition-churn", "link-flap"},
        "paxos": {"leader-crash", "partition-quorum"},
        "bulletprime": {"mesh-partition", "slow-links"},
    }
    from repro.api import get_system
    for system, names in expected.items():
        assert names <= set(get_system(system).scenarios)


def test_fault_scenario_produces_fault_breakdown():
    report = (Experiment("chord").scenario("partition-churn")
              .duration(120).seed(4).run())
    assert report.system == "chord"
    assert report.scenario == "partition-churn"
    assert report.faults_injected() > 0
    assert "partition" in report.fault_breakdown()


def test_run_end_tears_down_open_fault_windows():
    from repro.faults import CrashRestart, MessageDelay
    from repro.runtime import NetworkModel

    # Both windows are still open when the run ends (heals land past the
    # horizon); a caller-supplied network model must come back clean.
    model = NetworkModel()
    report = (Experiment("randtree").nodes(4).duration(100).churn(False)
              .network(model)
              .faults(Partition(at=70.0, duration=100.0),
                      MessageDelay(at=70.0, duration=100.0),
                      CrashRestart(at=70.0, duration=100.0))
              .seed(2).run())
    assert report.faults_injected() == 3
    assert not model.partitions
    assert not model.interceptors
    # The crashed node stays down (state is sim-local, not shared residue).
    sim = report.simulator
    assert sum(1 for node in sim.nodes.values() if not node.alive) == 1
    # A rerun through the same builder and model reproduces the schedule.
    rerun = (Experiment("randtree").nodes(4).duration(100).churn(False)
             .network(model)
             .faults(Partition(at=70.0, duration=100.0),
                     MessageDelay(at=70.0, duration=100.0),
                     CrashRestart(at=70.0, duration=100.0))
             .seed(2).run())
    assert rerun.faults["schedule"] == report.faults["schedule"]


# ------------------------------------------------------------------- CLI


def test_cli_faults_subcommand_lists_presets(capsys):
    assert main(["faults"]) == 0
    out = capsys.readouterr().out
    for name in list_presets():
        assert name in out


def test_cli_faults_subcommand_json(capsys):
    assert main(["faults", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["partition"] == ["partition"]
    assert "crash-restart" in payload["chaos"]


def test_cli_run_with_faults_json_round_trips(capsys):
    assert main(["run", "chord", "--faults", "partition", "--ticks", "20",
                 "--mode", "off", "--no-churn", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["faults"]["faults_injected"] > 0
    assert report["faults"]["by_type"]["partition"]["injected"] > 0


def test_cli_run_with_comma_separated_presets(capsys):
    assert main(["run", "randtree", "--faults", "clock-skew,crash",
                 "--ticks", "12", "--mode", "off", "--no-churn",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report["faults"]["by_type"]) == {"clock-skew", "crash-restart"}


def test_cli_unknown_preset_fails_cleanly(capsys):
    assert main(["run", "randtree", "--faults", "nope", "--ticks", "5"]) == 2
    assert "unknown fault preset" in capsys.readouterr().err


def test_cli_human_readable_output_shows_faults(capsys):
    assert main(["run", "randtree", "--faults", "partition", "--ticks", "12",
                 "--mode", "off", "--no-churn"]) == 0
    assert "faults: injected=" in capsys.readouterr().out


def test_cli_fail_on_violation_flags_violating_run(capsys):
    # The scripted Figure 13 bug reliably produces a violation when
    # CrystalBall is off...
    assert main(["run", "paxos", "--scenario", "figure13-bug1",
                 "--mode", "off", "--fail-on-violation"]) == 1
    assert "safety violation" in capsys.readouterr().err
    # ...and the same command without the flag still exits 0.
    assert main(["run", "paxos", "--scenario", "figure13-bug1",
                 "--mode", "off"]) == 0


def test_cli_fail_on_violation_passes_clean_run(capsys):
    # Bug-free Paxos holds agreement: nothing for the flag to trip on.
    assert main(["run", "paxos", "--mode", "off", "--no-churn",
                 "--fail-on-violation"]) == 0
