"""RunReport structure, the full stats surface, and the per-node config fix."""

import dataclasses
import json

from repro.api import Experiment, RunReport
from repro.core import ControllerStats, CrystalBallConfig, Mode, attach_crystalball
from repro.mc import SearchBudget, TransitionConfig
from repro.runtime import NetworkModel, Simulator, make_addresses
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _small_run(mode="debug"):
    return (Experiment("randtree")
            .nodes(3)
            .duration(60.0)
            .churn(False)
            .crystalball(mode, budget=SearchBudget(max_states=100, max_depth=4))
            .seed(2)
            .run())


def test_node_reports_carry_the_full_controller_stats_surface():
    report = _small_run()
    stat_fields = {f.name for f in dataclasses.fields(ControllerStats)}
    for node in report.nodes:
        assert stat_fields <= set(node.stats), (
            "RunReport must expose every ControllerStats counter, including "
            "the ones the old report() omitted")
        assert isinstance(node.stats["distinct_violations"], list)


def test_controller_report_no_longer_omits_counters():
    report = _small_run()
    controller = next(iter(report.controllers.values()))
    legacy_report = controller.report()
    for key in ("incomplete_snapshots", "replayed_paths", "replay_reproduced",
                "forced_checkpoints", "checkpoint_requests_sent"):
        assert key in legacy_report
    # Historical aliases stay available.
    assert legacy_report["snapshots"] == legacy_report["snapshots_collected"]
    assert legacy_report["distinct_properties_violated"] \
        == legacy_report["distinct_violations"]


def test_run_report_round_trips_through_json():
    report = _small_run()
    payload = json.loads(report.to_json())
    assert payload["system"] == "randtree"
    assert payload["totals"]["ticks"] == report.total("ticks")
    assert payload["accounting"]["violations_avoided"] \
        == report.total_steered() + report.total_isc_blocks()
    # Live handles are not serialized.
    assert "simulator" not in payload
    assert "controllers" not in payload


def test_aggregation_helpers_match_controller_sums():
    report = _small_run()
    assert report.total_predicted() == sum(
        c.stats.violations_predicted for c in report.controllers.values())
    assert report.checkpoint_bytes() == sum(
        c.stats.checkpoint_bytes_sent for c in report.controllers.values())
    assert report.distinct_violations_found() == set().union(
        *(c.stats.distinct_violations for c in report.controllers.values()))


def test_attach_crystalball_copies_config_per_node():
    addrs = make_addresses(3)
    protocol_config = RandTreeConfig(bootstrap=(addrs[0],))
    sim = Simulator(lambda: RandTree(protocol_config), NetworkModel(), seed=1)
    for addr in addrs:
        sim.add_node(addr)
    shared = CrystalBallConfig(
        mode=Mode.DEBUG,
        search_budget=SearchBudget(max_states=123, max_depth=4),
        transition=TransitionConfig(enable_resets=True),
    )
    controllers = attach_crystalball(sim, ALL_PROPERTIES, config=shared)
    configs = [c.config for c in controllers.values()]
    budgets = [c.config.search_budget for c in controllers.values()]
    assert len({id(c) for c in configs}) == len(configs), \
        "every controller must own its config"
    assert len({id(b) for b in budgets}) == len(budgets), \
        "SearchBudget instances must not be shared between controllers"
    # Values are preserved; mutating one node's budget stays local.
    assert all(b.max_states == 123 for b in budgets)
    budgets[0].max_states = 1
    assert shared.search_budget.max_states == 123
    assert budgets[1].max_states == 123


def test_empty_report_accounting_is_zeroed():
    report = RunReport(system="custom")
    assert report.totals()["violations_predicted"] == 0
    assert report.accounting()["violations_avoided"] == 0
    json.loads(report.to_json())
