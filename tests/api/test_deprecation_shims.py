"""The legacy entry paths keep working but warn, and delegate to the new
machinery (so this file also passes under ``-W error::DeprecationWarning``)."""

import pytest

from repro.core import Mode
from repro.sim import OverlayWorkload, WorkloadResult
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _make_workload():
    config = RandTreeConfig(bootstrap=(), max_children=2)
    workload = OverlayWorkload(
        protocol_factory=lambda: RandTree(config),
        properties=ALL_PROPERTIES,
        node_count=3,
        duration=40.0,
        churn_mean_interval=None,
        crystalball_mode=Mode.OFF,
        seed=1,
    )
    config.bootstrap = (workload.addresses()[0],)
    return workload


def test_overlay_workload_warns_on_construction():
    with pytest.deprecated_call(match="repro.api.Experiment"):
        _make_workload()


def test_overlay_workload_still_runs_and_returns_workload_result():
    with pytest.deprecated_call():
        workload = _make_workload()
    result = workload.run()
    assert isinstance(result, WorkloadResult)
    assert result.simulator.now > 0
    assert result.monitor.events_checked > 0
    assert result.total_predicted() == 0  # CrystalBall was off
    assert result.churn_events == 0


def test_legacy_import_paths_still_work():
    from repro.sim import workload

    assert workload.OverlayWorkload is OverlayWorkload
    assert workload.WorkloadResult is WorkloadResult


class _FakeTraceRecord:
    def __init__(self, time, node, kind, description):
        self.time = time
        self.node = node
        self.kind = kind
        self.description = description


def test_sim_trace_helpers_warn_and_delegate_to_obs():
    from repro.sim import trace as legacy

    records = [_FakeTraceRecord(1.0, "1:5000", "executed", "deliver Ping"),
               _FakeTraceRecord(2.0, "2:5000", "executed", "deliver Pong")]
    with pytest.deprecated_call(match="moved to repro.obs"):
        summary = legacy.summarize(records)
    assert summary.total_events == 2
    with pytest.deprecated_call(match="moved to repro.obs"):
        only = legacy.filter_trace(records, node="1:5000")
    assert len(only) == 1
    with pytest.deprecated_call(match="moved to repro.obs"):
        text = legacy.format_trace(records)
    assert "deliver Ping" in text
    with pytest.deprecated_call(match="moved to repro.obs"):
        legacy.TraceSummary(total_events=0, by_kind={}, by_node={},
                            first_time=0.0, last_time=0.0)


def test_sim_trace_summary_instances_are_the_obs_type():
    from repro.obs import TraceSummary as new_summary
    from repro.sim import trace as legacy

    with pytest.deprecated_call():
        instance = legacy.TraceSummary(total_events=0, by_kind={},
                                       by_node={}, first_time=0.0,
                                       last_time=0.0)
    assert isinstance(instance, new_summary)


def test_mc_properties_warns_on_use_and_delegates():
    from repro.mc import properties as legacy
    from repro.mc.global_state import GlobalState
    from repro.properties import SafetyProperty as new_safety

    with pytest.deprecated_call(match="moved to repro.properties"):
        prop = legacy.SafetyProperty(
            "legacy.prop", lambda state: (), "always holds")
    assert isinstance(prop, new_safety)

    with pytest.deprecated_call(match="moved to repro.properties"):
        scoped = legacy.node_property(
            "legacy.scoped", lambda addr, state, timers, gs: (), "per node")
    assert isinstance(scoped, new_safety)

    empty = GlobalState(nodes={})
    with pytest.deprecated_call(match="moved to repro.properties"):
        assert legacy.check_all([prop], empty) == []
    with pytest.deprecated_call(match="moved to repro.properties"):
        assert legacy.safety_properties([prop, object()]) == [prop]
    with pytest.deprecated_call(match="moved to repro.properties"):
        legacy.PropertyViolation(property_name="legacy.prop", node=None,
                                 detail="boom")


def test_mc_package_reexports_the_new_property_types():
    import repro.mc as mc
    from repro.properties import base as new_base

    # ``from repro.mc import SafetyProperty`` must hand out the real
    # classes (no wrappers, no warning on import).
    assert mc.SafetyProperty is new_base.SafetyProperty
    assert mc.PropertyViolation is new_base.PropertyViolation
    assert mc.check_all is new_base.check_all
    assert mc.node_property is new_base.node_property
