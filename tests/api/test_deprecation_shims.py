"""The legacy entry paths keep working but warn, and delegate to the new
machinery (so this file also passes under ``-W error::DeprecationWarning``)."""

import pytest

from repro.core import Mode
from repro.sim import OverlayWorkload, WorkloadResult
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _make_workload():
    config = RandTreeConfig(bootstrap=(), max_children=2)
    workload = OverlayWorkload(
        protocol_factory=lambda: RandTree(config),
        properties=ALL_PROPERTIES,
        node_count=3,
        duration=40.0,
        churn_mean_interval=None,
        crystalball_mode=Mode.OFF,
        seed=1,
    )
    config.bootstrap = (workload.addresses()[0],)
    return workload


def test_overlay_workload_warns_on_construction():
    with pytest.deprecated_call(match="repro.api.Experiment"):
        _make_workload()


def test_overlay_workload_still_runs_and_returns_workload_result():
    with pytest.deprecated_call():
        workload = _make_workload()
    result = workload.run()
    assert isinstance(result, WorkloadResult)
    assert result.simulator.now > 0
    assert result.monitor.events_checked > 0
    assert result.total_predicted() == 0  # CrystalBall was off
    assert result.churn_events == 0


def test_legacy_import_paths_still_work():
    from repro.sim import workload

    assert workload.OverlayWorkload is OverlayWorkload
    assert workload.WorkloadResult is WorkloadResult
