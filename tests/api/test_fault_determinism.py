"""Determinism: same seed + same fault schedule ⇒ identical reports.

The whole predicted-vs-avoided methodology (run the same seed with
CrystalBall off and on, attribute the difference to steering) only holds if
a seeded run is bit-reproducible *including* its fault schedule.  These
tests drive every bundled system twice through the chaos preset with
hypothesis-chosen seeds and require the serialized reports to match
exactly, wall-clock aside.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Experiment
from repro.mc import SearchBudget

#: (system, builder-tuning) — durations kept small so two full runs per
#: hypothesis example stay cheap.
SYSTEMS = {
    "randtree": dict(nodes=4, duration=60.0, options={}),
    "chord": dict(nodes=4, duration=60.0, options={}),
    "paxos": dict(nodes=3, duration=40.0, options={}),
    "bulletprime": dict(nodes=5, duration=60.0,
                        options={"block_count": 4}),
    "crdtset": dict(nodes=3, duration=60.0, options={}),
    "kvstore": dict(nodes=3, duration=60.0, options={"ops_per_node": 4}),
}

_SETTINGS = settings(max_examples=2, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _run(system, seed):
    tuning = SYSTEMS[system]
    report = (Experiment(system)
              .nodes(tuning["nodes"])
              .duration(tuning["duration"])
              .churn(False)
              .crystalball("debug",
                           budget=SearchBudget(max_states=60, max_depth=3))
              .faults("chaos")
              .options(**tuning["options"])
              .seed(seed)
              .run())
    data = report.to_dict()
    data.pop("wall_clock_seconds")
    return data


@pytest.mark.parametrize("system", sorted(SYSTEMS))
@given(seed=st.integers(min_value=0, max_value=2**16))
@_SETTINGS
def test_same_seed_same_fault_schedule_same_report(system, seed):
    first = _run(system, seed)
    second = _run(system, seed)
    assert first["totals"] == second["totals"]
    assert first == second  # full serialized report, wall-clock aside
    assert first["faults"]["faults_injected"] > 0
