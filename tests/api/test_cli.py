"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys

from repro.api.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def test_list_names_all_bundled_systems(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("randtree", "chord", "paxos", "bulletprime"):
        assert name in out


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = {entry["name"] for entry in payload}
    assert {"randtree", "chord", "paxos", "bulletprime"} <= names
    randtree = next(e for e in payload if e["name"] == "randtree")
    assert "figure2" in randtree["scenarios"]


def test_run_scenario_json_round_trips(capsys):
    assert main(["run", "randtree", "--scenario", "figure2", "--json",
                 "--option", "max_states=2000"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["system"] == "randtree"
    assert report["scenario"] == "figure2"
    assert report["outcome"]["violations"] >= 0


def test_run_live_json_round_trips(capsys):
    assert main(["run", "randtree", "--json", "--ticks", "4", "--nodes", "3",
                 "--max-states", "100", "--max-depth", "4", "--no-churn",
                 "--seed", "5"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["system"] == "randtree"
    assert report["node_count"] == 3
    assert report["mode"] == "debug"
    assert len(report["nodes"]) == 3
    # The full controller-stats surface is serialized per node.
    stats = report["nodes"][0]["stats"]
    for key in ("incomplete_snapshots", "replayed_paths", "replay_reproduced",
                "checkpoints_taken", "violations_predicted"):
        assert key in stats
    assert "violations_avoided" in report["accounting"]


def test_run_human_readable_output(capsys):
    assert main(["run", "randtree", "--ticks", "3", "--nodes", "3",
                 "--max-states", "50", "--max-depth", "3", "--no-churn"]) == 0
    out = capsys.readouterr().out
    assert "system: randtree" in out
    assert "per-node controllers" in out


def test_unknown_system_and_scenario_fail_cleanly(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown system" in capsys.readouterr().err
    assert main(["run", "randtree", "--scenario", "nope"]) == 2
    assert "no scenario" in capsys.readouterr().err


def test_bad_mode_and_bad_option_fail_cleanly(capsys):
    assert main(["run", "randtree", "--mode", "bogus"]) == 2
    assert "unknown mode" in capsys.readouterr().err
    assert main(["run", "randtree", "--scenario", "figure2",
                 "--option", "fixd=true"]) == 2
    assert "unknown option" in capsys.readouterr().err
    # mode/seed are reserved for the builder, not --option.
    assert main(["run", "paxos", "--scenario", "figure13-bug1",
                 "--option", "mode=steering"]) == 2
    assert "unknown option" in capsys.readouterr().err


def test_python_dash_m_repro_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-m", "repro", "list"],
                          capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0
    assert "randtree" in proc.stdout
