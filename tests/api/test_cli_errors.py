"""CLI error paths: bad names exit non-zero with a message, no traceback.

Covers the ``run``, ``faults`` and ``campaign`` subcommands — a typo'd
system, scenario, preset, mode or option must produce a one-line ``error:``
diagnostic on stderr and a usage exit code, never a Python traceback.
"""

import pytest

from repro.api.cli import main


def _assert_clean_error(capsys, code, *needles):
    assert code == 2
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err + captured.out
    assert captured.err.startswith("error:")
    for needle in needles:
        assert needle in captured.err


def test_run_unknown_system(capsys):
    code = main(["run", "nosuch"])
    _assert_clean_error(capsys, code, "unknown system 'nosuch'", "randtree")


def test_run_unknown_scenario(capsys):
    code = main(["run", "randtree", "--scenario", "nosuch"])
    _assert_clean_error(capsys, code, "no scenario 'nosuch'", "figure2")


def test_run_unknown_mode(capsys):
    code = main(["run", "randtree", "--mode", "warp"])
    _assert_clean_error(capsys, code, "unknown mode 'warp'", "steering")


def test_run_unknown_fault_preset(capsys):
    code = main(["run", "randtree", "--faults", "nosuch", "--ticks", "2"])
    _assert_clean_error(capsys, code, "unknown fault preset 'nosuch'",
                        "partition")


def test_run_unknown_option_key(capsys):
    code = main(["run", "randtree", "--ticks", "2", "--no-churn",
                 "--option", "bogus_option=1"])
    _assert_clean_error(capsys, code, "bogus_option")


def test_campaign_unknown_system(capsys):
    code = main(["campaign", "--axes", "systems=nosuch"])
    _assert_clean_error(capsys, code, "unknown system 'nosuch'")


def test_campaign_unknown_preset(capsys):
    code = main(["campaign", "--axes", "presets=nosuch"])
    _assert_clean_error(capsys, code, "unknown fault preset 'nosuch'")


def test_campaign_unknown_scenario(capsys):
    code = main(["campaign", "--axes", "systems=paxos",
                 "--axes", "scenarios=nosuch"])
    _assert_clean_error(capsys, code, "no scenario 'nosuch'")


def test_campaign_unknown_mode(capsys):
    code = main(["campaign", "--axes", "systems=randtree",
                 "--axes", "modes=warp"])
    _assert_clean_error(capsys, code, "unknown mode 'warp'")


def test_campaign_unknown_axis_key(capsys):
    code = main(["campaign", "--axes", "bogus=1"])
    _assert_clean_error(capsys, code, "unknown campaign axis 'bogus'")


def test_campaign_malformed_seed_range(capsys):
    code = main(["campaign", "--axes", "seeds=9-1"])
    _assert_clean_error(capsys, code, "seed range")


def test_campaign_axes_must_be_key_value(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--axes", "systems"])
    assert excinfo.value.code == 2
    assert "key=values" in capsys.readouterr().err


def test_faults_subcommand_lists_presets_cleanly(capsys):
    assert main(["faults"]) == 0
    out = capsys.readouterr().out
    assert "partition" in out and "chaos" in out
