"""Builder-vs-legacy equivalence: the fluent Experiment reproduces the old
entry paths bit-for-bit at equal seeds."""

import warnings

import pytest

from repro.api import Experiment, get_system
from repro.core import CrystalBallConfig, Mode
from repro.mc import SearchBudget, TransitionConfig
from repro.runtime import NetworkModel
from repro.sim import OverlayWorkload
from repro.systems.paxos import Figure13Scenario
from repro.systems.randtree import ALL_PROPERTIES, RandTree, RandTreeConfig


def _legacy_randtree(seed):
    config = RandTreeConfig(max_children=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        workload = OverlayWorkload(
            protocol_factory=lambda: RandTree(config),
            properties=ALL_PROPERTIES,
            node_count=4,
            duration=120.0,
            churn_mean_interval=50.0,
            crystalball_mode=Mode.DEBUG,
            crystalball_config=CrystalBallConfig(
                mode=Mode.DEBUG,
                search_budget=SearchBudget(max_states=200, max_depth=5),
                transition=TransitionConfig(enable_resets=True,
                                            max_resets_per_node=1),
            ),
            network=NetworkModel(rst_loss_probability=0.6),
            seed=seed,
            max_events=100_000,
        )
        config.bootstrap = (workload.addresses()[0],)
        return workload.run()


def _builder_randtree(seed):
    return (Experiment("randtree")
            .nodes(4)
            .duration(120.0)
            .churn(interval=50.0)
            .network(rst_loss=0.6)
            .crystalball("debug",
                         budget=SearchBudget(max_states=200, max_depth=5))
            .options(max_children=2)
            .max_events(100_000)
            .seed(seed)
            .run())


def test_builder_matches_overlay_workload_at_equal_seed():
    legacy = _legacy_randtree(seed=9)
    report = _builder_randtree(seed=9)
    assert report.churn_events == legacy.churn_events
    assert report.live_monitor.inconsistent_states \
        == legacy.monitor.inconsistent_states
    assert report.total_predicted() == legacy.total_predicted()
    assert report.distinct_violations_found() \
        == legacy.distinct_violations_found()
    assert report.checkpoint_bytes() == legacy.checkpoint_bytes()


def test_builder_is_deterministic_across_runs():
    first = _builder_randtree(seed=3)
    second = _builder_randtree(seed=3)
    assert first.totals() == second.totals()
    assert first.monitor == second.monitor


def test_paxos_scenario_matches_legacy_driver():
    legacy = Figure13Scenario(bug=1, inter_round_delay=15.0,
                              crystalball_mode=Mode.OFF, seed=21).run()
    report = (Experiment("paxos")
              .scenario("figure13-bug1")
              .mode(Mode.OFF)
              .seed(21)
              .options(inter_round_delay=15.0)
              .run())
    assert report.outcome["violation_occurred"] == legacy.violation_occurred
    assert report.outcome["chosen_values"] == sorted(legacy.chosen_values)
    assert report.system == "paxos"
    assert report.scenario == "figure13-bug1"


def test_ticks_convert_to_duration_via_tick_interval():
    experiment = Experiment("randtree").ticks(5)
    assert experiment._duration == 5 * get_system("randtree").tick_interval


def test_churn_rate_maps_to_interval():
    experiment = Experiment("randtree").churn(rate=0.1)
    assert experiment._churn_interval == pytest.approx(10.0)
    experiment.churn(False)
    assert experiment._churn_interval is None


def test_mode_parsing_accepts_strings_and_rejects_garbage():
    assert Experiment("randtree").mode("isc_only")._mode is Mode.ISC_ONLY
    assert Experiment("randtree").mode("steering")._mode is Mode.STEERING
    with pytest.raises(ValueError, match="unknown mode"):
        Experiment("randtree").mode("turbo")


def test_unknown_scenario_fails_fast():
    with pytest.raises(KeyError, match="known scenarios"):
        Experiment("chord").scenario("figure99")


def test_scenario_run_honors_builder_budget():
    report = (Experiment("randtree").scenario("figure2")
              .crystalball("debug",
                           budget=SearchBudget(max_states=100, max_depth=5))
              .run())
    assert report.outcome["states_visited"] <= 110, \
        "an explicit builder budget must reach the scenario search"


def test_scenario_run_warns_about_unsupported_builder_settings():
    experiment = (Experiment("randtree").scenario("figure2")
                  .network(rst_loss=0.5)
                  .options(max_states=500))
    with pytest.warns(UserWarning, match="ignores these builder settings"):
        experiment.run()


def test_crystalball_rejects_config_plus_individual_settings():
    with pytest.raises(ValueError, match="not both"):
        Experiment("randtree").crystalball(
            "debug", config=CrystalBallConfig(),
            budget=SearchBudget(max_states=10))


def test_run_does_not_mutate_caller_config():
    config = CrystalBallConfig(mode=Mode.DEBUG,
                               search_budget=SearchBudget(max_states=50,
                                                          max_depth=3))
    (Experiment("randtree").nodes(3).duration(30.0).churn(False)
     .crystalball("steering", config=config).run())
    assert config.mode is Mode.DEBUG, \
        "the caller's config object must not be mutated by the run"


def test_scenario_run_warns_when_nodes_cannot_be_honored():
    # The Figure 13 runner scripts its own three-node deployment.
    experiment = (Experiment("paxos").scenario("figure13-bug1")
                  .nodes(5).options(inter_round_delay=10.0))
    with pytest.warns(UserWarning, match="nodes"):
        report = experiment.run()
    assert report.node_count == 3


def test_offline_search_scenario_warns_about_steering_mode():
    experiment = (Experiment("randtree").scenario("figure2")
                  .mode("steering").options(max_states=200))
    with pytest.warns(UserWarning, match="no effect"):
        experiment.run()


def test_scenario_run_honors_budget_from_explicit_config():
    report = (Experiment("randtree").scenario("figure2")
              .crystalball("debug", config=CrystalBallConfig(
                  search_budget=SearchBudget(max_states=100, max_depth=5)))
              .run())
    assert report.outcome["states_visited"] <= 110


def test_crystalball_config_mode_is_respected_by_default():
    experiment = Experiment("randtree").crystalball(
        config=CrystalBallConfig(mode=Mode.STEERING))
    assert experiment._mode is Mode.STEERING
    # An explicit mode argument still wins.
    explicit = Experiment("randtree").crystalball(
        "debug", config=CrystalBallConfig(mode=Mode.STEERING))
    assert explicit._mode is Mode.DEBUG


def test_unknown_scenario_option_raises():
    with pytest.raises(ValueError, match="fixd"):
        (Experiment("randtree").scenario("figure2")
         .options(fixd=True).run())


def test_generic_bullet_run_reports_sortable_completion_times():
    report = (Experiment("bulletprime").nodes(4).duration(120.0)
              .options(block_count=8).seed(1).run())
    times = sorted(report.outcome["completion_times"].values())
    assert times and times[0] == 0.0, "the source completes at time zero"


def test_unknown_live_run_option_raises():
    with pytest.raises(ValueError, match="fix_recoverytimer"):
        (Experiment("randtree").nodes(3).duration(20.0).churn(False)
         .options(fix_recoverytimer=True).run())


def test_scenario_run_produces_search_outcome():
    report = (Experiment("randtree").scenario("figure2")
              .options(max_states=3000, max_depth=8).run())
    assert report.outcome["states_visited"] > 0
    assert "randtree.children_siblings_disjoint" \
        in report.outcome["properties_violated"]
    fixed = (Experiment("randtree").scenario("figure2")
             .options(fixed=True, max_states=3000, max_depth=8).run())
    assert "randtree.children_siblings_disjoint" \
        not in fixed.outcome["properties_violated"]
