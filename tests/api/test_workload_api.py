"""End-to-end tests for the first-class workload API: Experiment.workload,
the report surface and the CLI flags."""

import json

import pytest

from repro.api import Experiment
from repro.api.cli import main
from repro.workload import TrafficSpec, WorkloadSpec


def _chord(seed=2):
    return (Experiment("chord")
            .nodes(10)
            .duration(140)
            .churn(False)
            .seed(seed))


def test_workload_by_name_drives_requests():
    report = (_chord()
              .workload("lookups", rate=40, burst=4, start=40.0)
              .run())
    assert report.workload["name"] == "lookups"
    assert report.requests_injected() > 0
    assert report.requests_completed() > 0
    assert report.to_dict()["workload"]["traffic"]["rate"] == 40


def test_unknown_workload_name_fails_fast():
    with pytest.raises(KeyError, match="known workloads"):
        Experiment("chord").workload("nope")
    # Every bundled system registers a default workload now; a bare spec
    # exercises the empty-registry message.
    from repro.api.registry import SystemSpec

    bare = SystemSpec(name="bare", summary="",
                      protocol_factory=lambda addrs, options: None,
                      properties=())
    with pytest.raises(KeyError, match="<none>"):
        bare.workload("lookups")


def test_workload_none_turns_the_stream_off():
    experiment = _chord().workload("lookups").workload(None)
    report = experiment.run()
    assert report.workload == {}
    assert "workload" not in report.to_dict()


def test_traffic_overrides_apply():
    experiment = _chord().workload("lookups", rate=500.0,
                                   distribution="uniform", keys=16)
    traffic = experiment._workload.traffic
    assert (traffic.rate, traffic.key_distribution, traffic.keys) \
        == (500.0, "uniform", 16)
    # Registered spec is untouched.
    assert Experiment("chord").spec.workload("lookups").traffic.rate == 200.0


def test_inline_workload_spec_accepted():
    def factory(rng, key, addresses):
        return addresses[0], "lookup", {"key": key}

    spec = WorkloadSpec(name="custom", description="inline",
                        make_request=factory,
                        traffic=TrafficSpec(rate=20.0, burst=2, start=50.0))
    report = _chord().workload(spec).run()
    assert report.workload["name"] == "custom"
    assert report.requests_injected() > 0


def test_workload_runs_are_seed_deterministic():
    def digest(seed):
        data = (_chord(seed)
                .workload("lookups", rate=30, burst=3, start=40.0)
                .run().to_dict())
        data.pop("wall_clock_seconds")
        return json.dumps(data, sort_keys=True)

    assert digest(5) == digest(5)
    assert digest(5) != digest(6)


def test_scenario_warns_about_ignored_workload():
    experiment = (Experiment("chord").scenario("figure10")
                  .workload("lookups"))
    with pytest.warns(UserWarning, match="workload"):
        experiment.run()


def test_sweep_refuses_inline_workload_spec():
    def factory(rng, key, addresses):
        return addresses[0], "lookup", {"key": key}

    experiment = _chord().workload(
        WorkloadSpec(name="inline", description="d", make_request=factory))
    with pytest.raises(ValueError, match="inline WorkloadSpec"):
        experiment.sweep(seeds=[0])


# ------------------------------------------------------------------- CLI


def test_cli_run_with_workload(capsys):
    assert main(["run", "chord", "--nodes", "8", "--duration", "120",
                 "--no-churn", "--mode", "off",
                 "--workload", "lookups", "--workload-rate", "50",
                 "--workload-burst", "5", "--workload-start", "40",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"]["name"] == "lookups"
    assert payload["workload"]["requests_injected"] > 0
    assert payload["workload"]["traffic"]["rate"] == 50


def test_cli_unknown_workload_fails_cleanly(capsys):
    assert main(["run", "chord", "--workload", "nope"]) == 2
    assert "known workloads" in capsys.readouterr().err


def test_cli_workload_overrides_need_workload(capsys):
    assert main(["run", "chord", "--workload-rate", "50"]) == 2
    assert "--workload" in capsys.readouterr().err


def test_cli_list_shows_workloads(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in payload}
    assert "lookups" in by_name["chord"]["workloads"]
    assert "get-put" in by_name["kvstore"]["workloads"]
    assert "probes" in by_name["randtree"]["workloads"]
    assert "fetch" in by_name["bulletprime"]["workloads"]
