"""Property selection through Experiment, the CLI, and report rollups."""

import json

import pytest

from repro.api import Experiment
from repro.api.cli import main
from repro.api.registry import get_system
from repro.properties import get_property
from repro.systems.randtree import ALL_PROPERTIES


def test_resolved_properties_defaults_to_the_system_set():
    experiment = Experiment("randtree")
    assert experiment.resolved_properties() == list(ALL_PROPERTIES)


def test_pattern_selection_resolves_in_registration_order():
    experiment = Experiment("randtree").properties("randtree.*")
    resolved = experiment.resolved_properties()
    safety = [prop for prop in resolved if prop.kind == "safety"]
    assert safety == list(ALL_PROPERTIES)
    assert any(prop.kind == "liveness" for prop in resolved), (
        "namespace selection includes the opt-in liveness properties")


def test_selection_with_exclude_and_instances():
    instance = get_property("chord.ordering_constraint")
    experiment = (Experiment("randtree")
                  .properties(instance, "randtree.*",
                              exclude=["randtree.recovery_timer_running",
                                       "randtree.*_joined",
                                       "randtree.rejoins_within_window"]))
    names = [prop.name for prop in experiment.resolved_properties()]
    assert names[0] == "chord.ordering_constraint"
    assert "randtree.recovery_timer_running" not in names
    assert "randtree.rejoins_within_window" not in names


def test_unknown_pattern_fails_the_run_loudly():
    experiment = Experiment("randtree").properties("randtree.typo_*")
    with pytest.raises(ValueError, match="matches no registered property"):
        experiment.run()


def test_run_report_carries_per_property_rollups():
    report = (Experiment("randtree")
              .nodes(5)
              .duration(150.0)
              .churn(interval=50.0)
              .network(rst_loss=0.6)
              .options(bootstrap_index=1, max_children=2,
                       fix_recovery_timer=True)
              .seed(9)
              .run())
    assert report.live_inconsistent_states() > 0
    rollup = report.violations_by_property()
    assert rollup, "a violating run must produce per-property counts"
    assert all(name.startswith("randtree.") for name in rollup)
    assert sum(rollup.values()) == \
        report.monitor["distinct_violation_episodes"]
    severity = report.violations_by_severity()
    assert sum(severity.values()) == sum(rollup.values())
    payload = json.loads(report.to_json())
    assert payload["properties"]["violations_by_property"] == rollup


def test_registered_properties_superset_of_defaults():
    spec = get_system("randtree")
    registered = {prop.name for prop in spec.registered_properties()}
    defaults = {prop.name for prop in spec.properties}
    assert defaults < registered
    # bulletprime maps to the historical "bullet." namespace.
    bullet = get_system("bulletprime")
    assert all(prop.name.startswith("bullet.")
               for prop in bullet.registered_properties())


# ------------------------------------------------------------------------ CLI


def test_cli_properties_subcommand_lists_the_registry(capsys):
    assert main(["properties"]) == 0
    out = capsys.readouterr().out
    assert "randtree.children_siblings_disjoint" in out
    assert "liveness" in out


def test_cli_properties_subcommand_json_and_filter(capsys):
    assert main(["properties", "paxos.*", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [entry["id"] for entry in payload]
    assert "paxos.at_most_one_value_chosen" in names
    assert all(name.startswith("paxos.") for name in names)
    safety = [e for e in payload if e["kind"] == "safety"]
    assert all("scope" in entry and "severity" in entry for entry in safety)


def test_cli_properties_unknown_pattern_exits_2(capsys):
    assert main(["properties", "nope.*"]) == 2
    assert "matches no registered property" in capsys.readouterr().err


def test_cli_run_with_properties_emits_rollups(capsys):
    code = main(["run", "randtree", "--properties", "randtree.*",
                 "--ticks", "20", "--mode", "off", "--no-churn", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "violations_by_property" in payload["properties"]
    assert "violations_by_property" in payload["monitor"]


def test_cli_run_unknown_property_pattern_exits_2(capsys):
    code = main(["run", "randtree", "--properties", "bogus.*",
                 "--ticks", "5", "--no-churn"])
    assert code == 2
    assert "matches no registered property" in capsys.readouterr().err


def test_cli_empty_properties_value_exits_2(capsys):
    code = main(["run", "randtree", "--properties", "", "--ticks", "5",
                 "--no-churn"])
    assert code == 2
    assert "names no patterns" in capsys.readouterr().err


def test_cli_exclude_without_properties_exits_2(capsys):
    code = main(["run", "randtree", "--exclude-properties", "randtree.*",
                 "--ticks", "5"])
    assert code == 2
    assert "--exclude-properties needs --properties" in capsys.readouterr().err
