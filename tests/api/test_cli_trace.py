"""The ``trace`` subcommand and the ``run --trace/--metrics`` flags."""

import json

import pytest

from repro.api.cli import main
from repro.obs import SCHEMA_VERSION


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """One small traced run shared by every inspection test."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    assert main(["run", "randtree", "--ticks", "4", "--nodes", "4",
                 "--max-states", "100", "--max-depth", "4", "--no-churn",
                 "--trace", str(path), "--metrics", "--json"]) == 0
    return path


def test_run_with_metrics_embeds_snapshot_in_report(trace_file, capsys):
    assert main(["run", "randtree", "--ticks", "3", "--nodes", "3",
                 "--max-states", "50", "--no-churn", "--metrics",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["metrics"]["counters"]["runtime.events_executed"] > 0
    assert "controller.tick_seconds" in report["metrics"]["histograms"]


def test_trace_validate_passes_on_fresh_trace(trace_file, capsys):
    assert main(["trace", str(trace_file), "--validate"]) == 0
    assert "schema v1 OK" in capsys.readouterr().out


def test_trace_validate_fails_on_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "wat", "t": 1.0}\n')
    assert main(["trace", str(bad), "--validate"]) == 1
    assert "unknown kind" in capsys.readouterr().err


def test_trace_missing_file_is_an_input_error(capsys):
    assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
    assert "error:" in capsys.readouterr().err


def test_trace_summary_lists_kind_counts(trace_file, capsys):
    assert main(["trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "records:" in out
    assert "event" in out and "send" in out


def test_trace_summary_json(trace_file, capsys):
    assert main(["trace", str(trace_file), "--summary", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_records"] > 0
    assert payload["by_kind"]["event"] > 0


def test_trace_filter_by_kind(trace_file, capsys):
    assert main(["trace", str(trace_file), "--kind", "checkpoint",
                 "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert records
    assert all(record["kind"] == "checkpoint" for record in records)


def test_trace_chrome_export(trace_file, tmp_path, capsys):
    out_path = tmp_path / "chrome.json"
    assert main(["trace", str(trace_file), "--chrome", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]
    assert payload["otherData"]["v"] == SCHEMA_VERSION


def test_trace_why_steering_without_steering_exits_nonzero(
    trace_file, capsys
):
    assert main(["trace", str(trace_file), "--why-steering", "9:9"]) == 1
    assert "no steering activity" in capsys.readouterr().err


def test_trace_why_steering_finds_the_chain(tmp_path, capsys):
    path = tmp_path / "steer.jsonl"
    assert main(["run", "randtree", "--mode", "steering", "--duration",
                 "120", "--nodes", "5", "--seed", "9", "--faults",
                 "partition", "--max-states", "300", "--max-depth", "6",
                 "--option", "bootstrap_index=1", "--option",
                 "max_children=2", "--option", "fix_recovery_timer=true",
                 "--no-churn", "--trace", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    installed = report["totals"]["filters_installed"]
    if installed == 0:
        pytest.skip("seed produced no steering decision")
    assert main(["trace", str(path), "--why-steering", "2:5000",
                 "--json"]) == 0
    chain = json.loads(capsys.readouterr().out)
    kinds = [record["kind"] for record in chain]
    assert "filter_install" in kinds
    assert "mc_run" in kinds
    times = [record["t"] for record in chain]
    assert times == sorted(times)  # chronological


def test_verbose_flag_is_accepted_by_subcommands(capsys):
    assert main(["list", "-v"]) == 0
    capsys.readouterr()
