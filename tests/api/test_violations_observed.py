"""Pinned semantics of RunReport.violations_observed().

``--fail-on-violation`` (run and campaign) gates on this number, so its
composition is load-bearing: live monitor inconsistent states, plus offline
search violations, plus expired liveness obligations, with the scripted
scenarios' ``violation_occurred`` flag as a fallback that only contributes
when everything else is zero.  Predicted-but-avoided violations never count.
"""

from repro.api import Experiment, RunReport
from repro.api.report import NodeReport


def _report(monitor=None, outcome=None, nodes=()):
    return RunReport(system="test", monitor=monitor or {},
                     outcome=outcome or {}, nodes=list(nodes))


def test_counts_live_monitor_inconsistent_states():
    assert _report(monitor={"inconsistent_states": 4}).violations_observed() == 4


def test_adds_offline_search_violations():
    report = _report(monitor={"inconsistent_states": 2},
                     outcome={"violations": 3})
    assert report.violations_observed() == 5


def test_adds_liveness_violations():
    report = _report(monitor={"inconsistent_states": 1,
                              "liveness_violations": 2})
    assert report.violations_observed() == 3


def test_violation_occurred_is_a_fallback_only():
    # Contributes exactly 1 when nothing else counted...
    assert _report(outcome={"violation_occurred": True}).violations_observed() == 1
    # ...and nothing when the monitor already counted the same run.
    report = _report(monitor={"inconsistent_states": 7},
                     outcome={"violation_occurred": True})
    assert report.violations_observed() == 7


def test_none_and_missing_outcome_values_count_as_zero():
    assert _report(outcome={"violations": None}).violations_observed() == 0
    assert _report().violations_observed() == 0


def test_predicted_but_avoided_violations_do_not_count():
    node = NodeReport(node="1.0.0.1", mode="steering",
                      stats={"violations_predicted": 9,
                             "steering_modified_behavior": 9})
    report = _report(nodes=[node])
    assert report.total_predicted() == 9
    assert report.violations_observed() == 0, (
        "prediction is the product working, not the system failing")


def test_live_run_with_violations_matches_monitor_counts():
    report = (Experiment("randtree")
              .nodes(5)
              .duration(120.0)
              .churn(interval=50.0)
              .network(rst_loss=0.6)
              .options(bootstrap_index=1, max_children=2,
                       fix_recovery_timer=True)
              .seed(9)
              .run())
    expected = (report.monitor["inconsistent_states"]
                + report.monitor["liveness_violations"])
    assert report.violations_observed() == expected


def test_offline_scenario_counts_search_violations():
    report = (Experiment("randtree").scenario("figure2").seed(0).run())
    assert report.outcome["violations"] > 0
    assert report.violations_observed() == report.outcome["violations"]
    assert sum(report.violations_by_property().values()) == \
        report.outcome["violations"]
