"""Tests for churn injection."""

import pytest

from repro.runtime import ChurnProcess, NetworkModel, Simulator, make_addresses
from tests.runtime.test_simulator import EchoProtocol


def test_churn_requires_nodes_and_positive_interval():
    with pytest.raises(ValueError):
        ChurnProcess(nodes=[])
    with pytest.raises(ValueError):
        ChurnProcess(nodes=make_addresses(1), mean_interval=0)


def test_churn_injects_resets_over_time():
    sim = Simulator(EchoProtocol, NetworkModel(), seed=2)
    addrs = make_addresses(5)
    for a in addrs:
        sim.add_node(a)
    churn = ChurnProcess(nodes=addrs, mean_interval=10.0, seed=3)
    churn.install(sim)
    sim.run(until=200.0)
    assert churn.events_injected > 5
    assert sum(n.stats.resets for n in sim.nodes.values()) == churn.events_injected


def test_churn_stop_after_bound():
    sim = Simulator(EchoProtocol, NetworkModel(), seed=2)
    addrs = make_addresses(3)
    for a in addrs:
        sim.add_node(a)
    churn = ChurnProcess(nodes=addrs, mean_interval=5.0, seed=1, stop_after=50.0)
    churn.install(sim)
    sim.run(until=500.0)
    assert churn.events_injected <= 15


def test_churn_with_crashes_and_revivals():
    sim = Simulator(EchoProtocol, NetworkModel(), seed=4)
    addrs = make_addresses(4)
    for a in addrs:
        sim.add_node(a)
    churn = ChurnProcess(nodes=addrs, mean_interval=10.0, reset_probability=0.0,
                         downtime=5.0, seed=5)
    churn.install(sim)
    sim.run(until=100.0)
    assert churn.events_injected > 0
    # Crashed nodes come back after their downtime; at most the very last
    # victim may still be waiting for its revival when the run ends.
    dead = [node for node in sim.nodes.values() if not node.alive]
    assert len(dead) <= 1
