"""TCP failure-contract tests: the semantics both backends must share.

The tcp backend (:mod:`repro.backends.tcp`) routes frames over real
sockets but enforces connection state through the same
:class:`ConnectionTable`/:class:`SendQueue` machinery used in sim — these
tests pin down the edges of that shared contract: stale-incarnation error
upcalls, bounded-queue refusal, and connection-table bookkeeping around
resets.
"""

from dataclasses import dataclass, field

from repro.runtime import (
    Address,
    ConnectionTable,
    Message,
    NetworkModel,
    NodeState,
    Protocol,
    SendQueue,
    Simulator,
    Transport,
    make_addresses,
)


@dataclass
class PingState(NodeState):
    addr: Address = None
    received: list = field(default_factory=list)


class PingProtocol(Protocol):
    """Minimal protocol: 'ping' app call sends Ping over TCP (or UDP)."""

    name = "Ping"

    def initial_state(self, addr):
        return PingState(addr=addr)

    def handle_message(self, ctx, state, message):
        if message.mtype == "Ping":
            state.received.append(("ping", message.src))

    def handle_app(self, ctx, state, call, payload):
        if call == "ping":
            ctx.send(payload["target"], "Ping", {},
                     transport=payload.get("transport", Transport.TCP))

    def handle_connection_error(self, ctx, state, peer):
        state.received.append(("error", peer))


def _make_sim(n=2, **kwargs):
    sim = Simulator(PingProtocol, NetworkModel(jitter=0.0), seed=1, **kwargs)
    addrs = make_addresses(n)
    for a in addrs:
        sim.add_node(a)
    return sim, addrs


# -- ConnectionTable edges ----------------------------------------------------


def test_close_all_on_empty_table_is_a_noop():
    table = ConnectionTable()
    assert table.close_all() == []
    assert table.connected_peers() == []


def test_close_all_then_reestablish_records_new_incarnation():
    table = ConnectionTable()
    peer = Address(7)
    table.establish(peer, peer_incarnation=0)
    assert table.close_all() == [peer]
    # A fresh establishment after the teardown must not resurrect the old
    # incarnation number.
    table.establish(peer, peer_incarnation=3)
    assert table.recorded_incarnation(peer) == 3


def test_close_all_is_idempotent():
    table = ConnectionTable()
    table.establish(Address(1), 0)
    assert table.close_all() == [Address(1)]
    assert table.close_all() == []


# -- SendQueue edges ----------------------------------------------------------


def _msg(payload_bytes=0):
    return Message(mtype="m", src=Address(1), dst=Address(2),
                   payload={"data": "x" * payload_bytes} if payload_bytes else {})


def test_send_queue_accepts_message_exactly_filling_capacity():
    probe = _msg()
    queue = SendQueue(capacity_bytes=probe.size_bytes())
    assert queue.offer(probe) is True
    assert queue.is_full
    assert queue.refused_messages == 0


def test_send_queue_full_refusals_accumulate_without_mutating_queue():
    queue = SendQueue(capacity_bytes=10)
    big = _msg(payload_bytes=500)
    for _ in range(3):
        assert queue.offer(big) is False
    assert queue.refused_messages == 3
    assert queue.queued_bytes == 0
    assert queue.queued_messages == 0


def test_send_queue_drain_clamps_negative_budget():
    queue = SendQueue(capacity_bytes=100)
    queue.queued_bytes = 40
    assert queue.drain(-5) == 0
    assert queue.queued_bytes == 40


def test_send_queue_full_drain_resets_message_count():
    queue = SendQueue(capacity_bytes=1000)
    message = _msg()
    assert queue.offer(message)
    assert queue.offer(message)
    assert queue.queued_messages == 2
    queue.drain(queue.queued_bytes)
    assert queue.queued_bytes == 0
    assert queue.queued_messages == 0


def test_send_queue_partial_drain_reopens_capacity():
    queue = SendQueue(capacity_bytes=100)
    queue.queued_bytes = 100
    assert queue.is_full
    small = _msg()
    assert queue.offer(small) is False
    queue.drain(small.size_bytes())
    assert not queue.is_full
    assert queue.offer(small) is True


# -- stale-incarnation error upcalls ------------------------------------------


def test_first_tcp_send_establishes_both_directions():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    assert sim.nodes[a].connections.recorded_incarnation(b) == 0
    assert sim.nodes[b].connections.recorded_incarnation(a) == 0


def test_udp_sends_bypass_the_connection_table():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b,
                                      "transport": Transport.UDP})
    sim.run(until=2.0)
    assert not sim.nodes[a].connections.is_connected(b)
    assert not sim.nodes[b].connections.is_connected(a)


def test_silent_reset_leaves_stale_entry_then_send_upcalls_error():
    sim, (a, b) = _make_sim()
    sim.network.rst_loss_probability = 1.0  # every RST is lost
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    sim.schedule_reset(2.5, b)
    sim.run(until=3.0)
    # The reset was silent: a still holds the stale incarnation-0 entry
    # while b now has incarnation 1 and an empty table.
    assert sim.nodes[a].connections.recorded_incarnation(b) == 0
    assert sim.nodes[b].incarnation == 1
    assert sim.nodes[b].connections.connected_peers() == []
    sim.schedule_app(3.5, a, "ping", {"target": b})
    sim.run(until=5.0)
    # The stale send is dropped, the entry closed, and the error upcalled.
    assert ("error", b) in sim.nodes[a].state.received
    assert ("ping", a) not in sim.nodes[b].state.received


def test_send_after_stale_error_reestablishes_and_delivers():
    sim, (a, b) = _make_sim()
    sim.network.rst_loss_probability = 1.0
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    sim.schedule_reset(2.5, b)
    sim.schedule_app(3.5, a, "ping", {"target": b})  # hits the stale entry
    sim.schedule_app(4.5, a, "ping", {"target": b})  # reconnects
    sim.run(until=6.0)
    assert sim.nodes[a].connections.recorded_incarnation(b) == 1
    assert ("ping", a) in sim.nodes[b].state.received


def test_loud_reset_closes_peer_entry_and_upcalls_immediately():
    sim, (a, b) = _make_sim()
    sim.network.rst_loss_probability = 0.0  # every RST arrives
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    sim.schedule_reset(2.5, b)
    sim.run(until=4.0)
    # The RST tore down a's entry and raised the error without a needing
    # to touch the connection again.
    assert not sim.nodes[a].connections.is_connected(b)
    assert ("error", b) in sim.nodes[a].state.received


def test_send_to_dead_peer_drops_entry_and_upcalls():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    sim.crash_node(b)
    sim.schedule_app(2.5, a, "ping", {"target": b})
    sim.run(until=4.0)
    assert not sim.nodes[a].connections.is_connected(b)
    assert ("error", b) in sim.nodes[a].state.received
