"""Tests for messages and events."""

from repro.runtime import (
    Address,
    AppEvent,
    ConnectionErrorEvent,
    Message,
    MessageEvent,
    ResetEvent,
    TimerEvent,
    is_internal,
)


def _msg(**kwargs):
    defaults = dict(mtype="Ping", src=Address(1), dst=Address(2), payload={"x": 1})
    defaults.update(kwargs)
    return Message(**defaults)


def test_message_signature_ignores_msg_id():
    assert _msg().signature() == _msg().signature()


def test_message_signature_distinguishes_payload_and_type():
    assert _msg().signature() != _msg(payload={"x": 2}).signature()
    assert _msg().signature() != _msg(mtype="Pong").signature()


def test_message_equality_ignores_msg_id():
    assert _msg() == _msg()


def test_with_checkpoint_number_copies():
    message = _msg()
    stamped = message.with_checkpoint_number(7)
    assert stamped.checkpoint_number == 7
    assert message.checkpoint_number == 0


def test_message_size_includes_payload():
    assert _msg(payload={"blob": "x" * 500}).size_bytes() > _msg().size_bytes()


def test_message_get_defaults():
    assert _msg().get("x") == 1
    assert _msg().get("missing", 9) == 9


def test_event_signatures_distinct_across_types():
    node = Address(1)
    events = [
        MessageEvent(node=node, message=_msg()),
        TimerEvent(node=node, timer="t"),
        AppEvent(node=node, call="join"),
        ResetEvent(node=node),
        ConnectionErrorEvent(node=node, peer=Address(2)),
    ]
    signatures = {e.signature() for e in events}
    assert len(signatures) == len(events)


def test_is_internal_classification():
    node = Address(1)
    assert not is_internal(MessageEvent(node=node, message=_msg()))
    assert is_internal(TimerEvent(node=node, timer="t"))
    assert is_internal(ResetEvent(node=node))
    assert is_internal(AppEvent(node=node, call="join"))
    assert is_internal(ConnectionErrorEvent(node=node, peer=Address(2)))


def test_event_describe_mentions_node():
    assert "1:5000" in TimerEvent(node=Address(1), timer="t").describe()
