"""Tests for the checkpoint-number logical clock (Section 2.3)."""

from repro.runtime import LogicalClock


def test_observe_larger_number_forces_checkpoint():
    clock = LogicalClock()
    assert clock.observe(3) is True
    assert clock.value == 3
    assert clock.forced_checkpoints == 1


def test_observe_smaller_or_equal_number_is_noop():
    clock = LogicalClock(value=5)
    assert clock.observe(5) is False
    assert clock.observe(2) is False
    assert clock.value == 5
    assert clock.forced_checkpoints == 0


def test_advance_increments_monotonically():
    clock = LogicalClock()
    assert clock.advance() == 1
    assert clock.advance() == 2
    assert clock.local_increments == 2


def test_observe_request_future_number():
    clock = LogicalClock(value=1)
    assert clock.observe_request(4) is True
    assert clock.value == 4
    assert clock.observe_request(4) is False


def test_stamp_reflects_current_value():
    clock = LogicalClock()
    clock.advance()
    assert clock.stamp() == 1
