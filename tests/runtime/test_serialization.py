"""Tests for canonical freezing, hashing and size accounting."""

from dataclasses import dataclass, field

from repro.runtime.serialization import (
    compressed_size,
    diff_size,
    estimate_size,
    freeze,
    stable_hash,
)


def test_freeze_scalars_pass_through():
    for value in (None, True, 3, 2.5, "x", b"y"):
        assert freeze(value) == value


def test_freeze_dict_is_order_independent():
    assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})


def test_freeze_set_is_order_independent():
    assert freeze({3, 1, 2}) == freeze({2, 3, 1})


def test_freeze_nested_containers_hashable():
    frozen = freeze({"a": [1, {2, 3}], "b": {"c": (4, 5)}})
    assert hash(frozen) == hash(frozen)


@dataclass
class _Sample:
    x: int = 1
    items: list = field(default_factory=list)


def test_freeze_dataclass_includes_fields():
    assert freeze(_Sample(x=2, items=[1])) != freeze(_Sample(x=3, items=[1]))
    assert freeze(_Sample()) == freeze(_Sample())


def test_stable_hash_consistent_for_equal_values():
    assert stable_hash({"k": [1, 2]}) == stable_hash({"k": [1, 2]})


def test_estimate_size_positive_and_monotone_in_content():
    small = estimate_size({"a": 1})
    big = estimate_size({"a": list(range(1000))})
    assert 0 < small < big


def test_compressed_size_smaller_for_repetitive_data():
    data = {"blocks": [7] * 5000}
    assert compressed_size(data) < estimate_size(data)


def test_diff_size_is_tiny_for_identical_states():
    state = {"a": list(range(100))}
    assert diff_size(state, dict(state)) == 16
    assert diff_size(state, {"a": [1]}) > 16
