"""Tests for the network model and connection tables."""

import random

from repro.runtime import Address, ConnectionTable, Message, NetworkModel, SendQueue


def test_latency_positive_and_near_default_rtt():
    net = NetworkModel(default_rtt=0.1, jitter=0.0)
    rng = random.Random(0)
    latency = net.latency(Address(1), Address(2), rng)
    assert abs(latency - 0.05) < 1e-9


def test_latency_to_self_is_negligible():
    net = NetworkModel()
    assert net.latency(Address(1), Address(1), random.Random(0)) < 0.001


def test_loss_probability_in_modelnet_range():
    net = NetworkModel()
    rng = random.Random(1)
    for _ in range(50):
        loss = net.loss_probability(Address(1), Address(2), rng)
        assert 0.001 <= loss <= 0.005


def test_partitions_block_and_heal():
    net = NetworkModel()
    a, b = Address(1), Address(2)
    assert net.reachable(a, b)
    net.partition(a, b)
    assert not net.reachable(a, b)
    assert not net.reachable(b, a)
    net.heal(a, b)
    assert net.reachable(a, b)


def test_isolate_and_heal_all():
    net = NetworkModel()
    a, others = Address(1), [Address(2), Address(3)]
    net.isolate(a, others + [a])
    assert not net.reachable(a, Address(2))
    assert not net.reachable(a, Address(3))
    net.heal_all()
    assert net.reachable(a, Address(2))


def test_custom_latency_and_loss_functions():
    net = NetworkModel(latency_fn=lambda s, d, r: 0.5, loss_fn=lambda s, d, r: 2.0)
    rng = random.Random(0)
    assert net.latency(Address(1), Address(2), rng) == 0.5
    assert net.loss_probability(Address(1), Address(2), rng) == 1.0


def test_connection_table_lifecycle():
    table = ConnectionTable()
    peer = Address(9)
    assert not table.is_connected(peer)
    table.establish(peer, peer_incarnation=2)
    assert table.is_connected(peer)
    assert table.recorded_incarnation(peer) == 2
    assert table.close(peer) is True
    assert table.close(peer) is False


def test_connection_table_close_all_returns_peers():
    table = ConnectionTable()
    table.establish(Address(1), 0)
    table.establish(Address(2), 1)
    assert set(table.close_all()) == {Address(1), Address(2)}
    assert table.connected_peers() == []


def test_send_queue_refuses_when_full():
    queue = SendQueue(capacity_bytes=100)
    small = Message(mtype="m", src=Address(1), dst=Address(2), payload={})
    assert queue.offer(small) is True
    big = Message(mtype="m", src=Address(1), dst=Address(2),
                  payload={"data": "x" * 500})
    assert queue.offer(big) is False
    assert queue.refused_messages == 1


def test_send_queue_drain_frees_capacity():
    queue = SendQueue(capacity_bytes=100)
    queue.queued_bytes = 90
    drained = queue.drain(50)
    assert drained == 50
    assert queue.queued_bytes == 40
    assert not queue.is_full
