"""Tests for the O(active) scheduler surface: schedule_at, hook wakeups,
batched delivery plans and the inflight-message index."""

from dataclasses import dataclass, field

from repro.runtime import (
    Address,
    Message,
    NetworkModel,
    NodeState,
    Protocol,
    Simulator,
    Transport,
    make_addresses,
)
from repro.runtime.network import DeliveryPlan


@dataclass
class EchoState(NodeState):
    addr: Address = None
    received: list = field(default_factory=list)
    pings_sent: int = 0


class EchoProtocol(Protocol):
    name = "Echo"

    def initial_state(self, addr):
        return EchoState(addr=addr)

    def handle_message(self, ctx, state, message):
        if message.mtype == "Ping":
            state.received.append(("ping", message.src))
            ctx.send(message.src, "Pong", {})
        elif message.mtype == "Pong":
            state.received.append(("pong", message.src))

    def handle_app(self, ctx, state, call, payload):
        if call == "ping":
            state.pings_sent += 1
            ctx.send(payload["target"], "Ping", {},
                     transport=payload.get("transport", Transport.TCP))


def _make_sim(n=2, **kwargs):
    sim = Simulator(EchoProtocol, NetworkModel(jitter=0.0), seed=1, **kwargs)
    addrs = make_addresses(n)
    for a in addrs:
        sim.add_node(a)
    return sim, addrs


# ------------------------------------------------------------- schedule_at


def test_schedule_at_fires_at_time():
    sim, _ = _make_sim()
    fired = []
    sim.schedule_at(3.0, lambda s: fired.append(s.now))
    sim.run(until=10.0)
    assert fired == [3.0]


def test_schedule_at_self_rearming_callback():
    sim, _ = _make_sim()
    times = []

    def wakeup(s):
        times.append(s.now)
        if len(times) < 3:
            s.schedule_at(s.now + 2.0, wakeup)

    sim.schedule_at(1.0, wakeup)
    sim.run(until=10.0)
    assert times == [1.0, 3.0, 5.0]


def test_schedule_callback_is_an_alias():
    sim, _ = _make_sim()
    fired = []
    sim.schedule_callback(2.0, lambda s: fired.append("cb"))
    sim.run(until=5.0)
    assert fired == ["cb"]


def test_inject_app_executes_inline():
    sim, (a, b) = _make_sim()
    sim.inject_app(a, "ping", {"target": b})
    assert sim.nodes[a].state.pings_sent == 1  # no heap entry, ran inline
    sim.run(until=5.0)
    assert ("pong", b) in sim.nodes[a].state.received


# ----------------------------------------------------------- hook wakeups


class TickCountingHook:
    """Legacy-shaped hook: no on_attach, relies on the tick fallback."""

    def __init__(self):
        self.ticks = 0

    def on_tick(self, sim, node):
        self.ticks += 1

    def filter_event(self, sim, node, event):
        from repro.runtime import FilterAction

        return FilterAction.ALLOW

    def immediate_safety_check(self, sim, node, event):
        return True

    def handle_control_message(self, sim, node, message):
        pass

    def on_event_executed(self, sim, node, event):
        pass

    def on_forced_checkpoint(self, sim, node):
        pass


class OwnedWakeupHook(TickCountingHook):
    """Hook that owns its wakeups via on_attach + schedule_at."""

    def __init__(self, period):
        super().__init__()
        self.period = period

    def on_attach(self, sim, node):
        self.addr = node.addr
        sim.schedule_at(sim.now + self.period, self._wakeup)

    def _wakeup(self, sim):
        node = sim.nodes.get(self.addr)
        if node is None or node.hook is not self:
            return
        if node.alive:
            self.on_tick(sim, node)
        sim.schedule_at(sim.now + self.period, self._wakeup)


def test_legacy_hook_without_on_attach_still_ticks():
    sim, (a, _b) = _make_sim()
    hook = TickCountingHook()
    sim.attach_hook(a, hook)
    sim.run(until=35.0)  # default tick_interval = 10
    assert hook.ticks == 3


def test_on_attach_hook_owns_its_wakeups():
    sim, (a, _b) = _make_sim()
    hook = OwnedWakeupHook(period=7.0)
    sim.attach_hook(a, hook)
    sim.run(until=30.0)
    assert hook.ticks == 4  # 7, 14, 21, 28


def test_detached_hook_stops_waking():
    sim, (a, _b) = _make_sim()
    hook = OwnedWakeupHook(period=5.0)
    sim.attach_hook(a, hook)
    sim.schedule_at(12.0, lambda s: setattr(s.nodes[a], "hook", None))
    sim.run(until=40.0)
    assert hook.ticks == 2  # 5, 10 — wakeup chain dies after detach


# ---------------------------------------------------------- delivery plans


def _message(a, b, mtype="Ping", transport=Transport.UDP):
    return Message(mtype=mtype, src=a, dst=b, payload={}, transport=transport)


def test_delivery_plan_orders_by_time_then_id():
    a, b = make_addresses(2)
    m1, m2, m3 = (_message(a, b) for _ in range(3))
    plan = DeliveryPlan.from_deliveries([(5.0, 2, m2), (3.0, 1, m1),
                                         (5.0, 0, m3)])
    assert len(plan) == 3
    assert plan.next_time() == 3.0
    assert plan.pop_due() == (1, m1)
    assert plan.pop_due() == (0, m3)  # same time: delivery-id order
    assert plan.pop_due() == (2, m2)
    assert plan.exhausted


def test_transmit_batch_delivers_all_udp_messages():
    sim, (a, b) = _make_sim()
    messages = [_message(a, b) for _ in range(20)]
    sim.transmit_batch(a, messages)
    sim.run(until=10.0)
    assert len([r for r in sim.nodes[b].state.received
                if r == ("ping", a)]) == 20


def test_transmit_batch_falls_back_to_fifo_for_tcp():
    sim, (a, b) = _make_sim()
    messages = [_message(a, b, transport=Transport.TCP) for _ in range(5)]
    sim.transmit_batch(a, messages)
    sim.run(until=10.0)
    assert len([r for r in sim.nodes[b].state.received
                if r == ("ping", a)]) == 5


def test_transmit_batch_matches_sequential_transmit():
    """Per-message RNG accounting is identical, so a lossy batch drops
    exactly the messages sequential transmits would drop."""

    def run(batched):
        sim, (a, b) = _make_sim()
        sim.network.loss_fn = lambda src, dst, rng: 0.5
        messages = [_message(a, b) for _ in range(40)]
        sim.schedule_at(1.0, lambda s: (
            s.transmit_batch(a, messages) if batched
            else [s.transmit(a, m) for m in messages]))
        sim.run(until=20.0)
        return [r for r in sim.nodes[b].state.received if r[0] == "ping"]

    assert run(batched=True) == run(batched=False)


# ----------------------------------------------------------- inflight index


def test_inflight_index_tracks_service_messages():
    sim, (a, b) = _make_sim()
    assert sim.inflight_service_count() == 0
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(max_events=1)  # the app event sent Ping; it is now inflight
    assert sim.inflight_service_count() == 1
    assert [m.mtype for m in sim.inflight_messages()] == ["Ping"]
    sim.run(until=10.0)
    assert sim.inflight_service_count() == 0


def test_inflight_index_excludes_control_messages():
    sim, (a, b) = _make_sim()
    control = Message(mtype="_cb_probe", src=a, dst=b, payload={},
                      control=True, transport=Transport.UDP)
    sim.transmit(a, control)
    assert sim.inflight_service_count() == 0


def test_inflight_index_covers_batched_deliveries():
    sim, (a, b) = _make_sim()
    sim.transmit_batch(a, [_message(a, b) for _ in range(3)])
    assert sim.inflight_service_count() == 3
    sim.run(until=10.0)
    assert sim.inflight_service_count() == 0
