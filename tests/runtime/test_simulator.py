"""Tests for the discrete-event simulator."""

from repro.runtime import (
    Address,
    FilterAction,
    Message,
    NetworkModel,
    NodeState,
    Protocol,
    Simulator,
    Transport,
    make_addresses,
)
from dataclasses import dataclass, field


@dataclass
class EchoState(NodeState):
    addr: Address = None
    received: list = field(default_factory=list)
    pings_sent: int = 0


class EchoProtocol(Protocol):
    """Minimal protocol: 'ping' app call sends Ping, peers reply Pong."""

    name = "Echo"

    def initial_state(self, addr):
        return EchoState(addr=addr)

    def on_start(self, ctx, state):
        ctx.set_timer("heartbeat", 5.0)

    def handle_message(self, ctx, state, message):
        if message.mtype == "Ping":
            state.received.append(("ping", message.src))
            ctx.send(message.src, "Pong", {})
        elif message.mtype == "Pong":
            state.received.append(("pong", message.src))

    def handle_timer(self, ctx, state, timer):
        state.received.append(("timer", timer))

    def handle_app(self, ctx, state, call, payload):
        if call == "ping":
            state.pings_sent += 1
            ctx.send(payload["target"], "Ping", {}, transport=payload.get(
                "transport", Transport.TCP))

    def handle_connection_error(self, ctx, state, peer):
        state.received.append(("error", peer))


def _make_sim(n=2, **kwargs):
    sim = Simulator(EchoProtocol, NetworkModel(jitter=0.0), seed=1, **kwargs)
    addrs = make_addresses(n)
    for a in addrs:
        sim.add_node(a)
    return sim, addrs


def test_add_node_runs_on_start_timers():
    sim, addrs = _make_sim()
    assert "heartbeat" in sim.nodes[addrs[0]].armed_timers


def test_ping_pong_round_trip():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=5.0)
    assert ("ping", a) in sim.nodes[b].state.received
    assert ("pong", b) in sim.nodes[a].state.received


def test_timer_fires_once_and_time_advances():
    sim, (a, b) = _make_sim()
    sim.run(until=6.0)
    assert ("timer", "heartbeat") in sim.nodes[a].state.received
    assert sim.now <= 6.0
    assert "heartbeat" not in sim.nodes[a].armed_timers


def test_reset_wipes_state_and_increments_incarnation():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.schedule_reset(2.0, b)
    sim.run(until=3.0)
    assert sim.nodes[b].incarnation == 1
    assert sim.nodes[b].state.received == []


def test_send_to_dead_node_yields_connection_error():
    sim, (a, b) = _make_sim()
    sim.crash_node(b)
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert ("error", b) in sim.nodes[a].state.received


def test_partition_blocks_tcp_and_signals_error():
    sim, (a, b) = _make_sim()
    sim.network.partition(a, b)
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert sim.nodes[b].state.received == []
    assert ("error", b) in sim.nodes[a].state.received


def test_stale_connection_after_reset_errors_on_next_send():
    sim, (a, b) = _make_sim()
    sim.network.rst_loss_probability = 1.0  # silent reset
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=2.0)
    sim.schedule_reset(2.5, b)
    sim.run(until=3.0)
    sim.schedule_app(3.5, a, "ping", {"target": b})
    sim.run(until=5.0)
    assert ("error", b) in sim.nodes[a].state.received


def test_node_states_and_inflight_views():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(max_events=1)
    states = sim.node_states()
    assert set(states) == {a, b}
    assert all(isinstance(t, frozenset) for _, t in states.values())


def test_observer_called_for_each_event():
    sim, (a, b) = _make_sim()
    seen = []
    sim.add_observer(lambda s, node, event: seen.append(type(event).__name__))
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert "AppEvent" in seen and "MessageEvent" in seen


def test_event_filter_hook_drops_messages():
    class DropHook:
        def __init__(self):
            self.dropped = 0
        def on_tick(self, sim, node): pass
        def filter_event(self, sim, node, event):
            from repro.runtime import MessageEvent
            if isinstance(event, MessageEvent) and event.message.mtype == "Ping":
                self.dropped += 1
                return FilterAction.DROP
            return FilterAction.ALLOW
        def immediate_safety_check(self, sim, node, event): return True
        def handle_control_message(self, sim, node, message): pass
        def on_event_executed(self, sim, node, event): pass
        def on_forced_checkpoint(self, sim, node): pass

    sim, (a, b) = _make_sim()
    hook = DropHook()
    sim.nodes[b].hook = hook
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert hook.dropped == 1
    assert sim.nodes[b].state.received == []
    assert sim.nodes[b].stats.events_dropped_by_filter == 1


def test_trace_records_when_enabled():
    sim = Simulator(EchoProtocol, NetworkModel(), seed=1, trace=True)
    a, b = make_addresses(2)
    sim.add_node(a)
    sim.add_node(b)
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert sim.trace
    assert any("Ping" in rec.description for rec in sim.trace)


def test_bandwidth_accounting_separates_control_plane():
    sim, (a, b) = _make_sim()
    sim.schedule_app(1.0, a, "ping", {"target": b})
    sim.run(until=3.0)
    assert sim.total_service_bytes() > 0
    assert sim.total_control_bytes() == 0
    control = Message(mtype="_cb_x", src=a, dst=b, payload={}, control=True)
    sim.transmit(a, control)
    assert sim.total_control_bytes() > 0
