"""Tests for node addresses."""

import pytest

from repro.runtime import Address, DUMMY_ADDRESS, make_addresses


def test_addresses_order_by_host_then_port():
    assert Address(1) < Address(2)
    assert Address(1, 5000) < Address(1, 5001)
    assert not Address(2) < Address(2)


def test_address_equality_and_hash():
    assert Address(3) == Address(3)
    assert hash(Address(3)) == hash(Address(3))
    assert Address(3) != Address(4)


def test_address_str():
    assert str(Address(7, 1234)) == "7:1234"


def test_invalid_addresses_rejected():
    with pytest.raises(ValueError):
        Address(-1)
    with pytest.raises(ValueError):
        Address(1, 0)
    with pytest.raises(ValueError):
        Address(1, 70000)


def test_make_addresses_are_distinct_and_ordered():
    addrs = make_addresses(10, start=5)
    assert len(set(addrs)) == 10
    assert addrs == sorted(addrs)
    assert addrs[0].host == 5


def test_make_addresses_rejects_negative_count():
    with pytest.raises(ValueError):
        make_addresses(-1)


def test_chord_id_deterministic_and_bounded():
    a = Address(42)
    assert a.chord_id() == a.chord_id()
    assert 0 <= a.chord_id(bits=8) < 256
    assert a.chord_id(bits=8) != Address(43).chord_id(bits=8) or True  # no collision guarantee


def test_dummy_address_is_reserved():
    assert DUMMY_ADDRESS.host == 0
