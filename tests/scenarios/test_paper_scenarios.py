"""End-to-end checks that the paper's figure scenarios are reproduced.

Each test starts from the scripted state of one figure and verifies that
consequence prediction (the deployed CrystalBall search) predicts the exact
inconsistency the paper describes — and that the paper's suggested fix makes
the prediction disappear.
"""

from repro.core import consequence_prediction
from repro.mc import SearchBudget, TransitionConfig, TransitionSystem
from repro.systems import chord, randtree


def _predict(scenario, properties, *, resets=True, max_states=10000, depth=10):
    system = TransitionSystem(
        scenario.protocol,
        TransitionConfig(enable_resets=resets, max_resets_per_node=1))
    return consequence_prediction(system, scenario.global_state(), properties,
                                  SearchBudget(max_states=max_states,
                                               max_depth=depth))


def test_figure2_children_siblings_inconsistency_predicted():
    scenario = randtree.Figure2Scenario.build()
    result = _predict(scenario, randtree.ALL_PROPERTIES, depth=9)
    names = result.unique_property_names()
    assert "randtree.children_siblings_disjoint" in names
    violation = min((v for v in result.violations
                     if v.violation.property_name == "randtree.children_siblings_disjoint"),
                    key=lambda v: v.depth)
    described = [event.describe() for event in violation.path]
    # The predicted path is the Figure 2 scenario: node 13 resets, re-joins,
    # and node 9 handles the UpdateSibling while still listing 13 as a child.
    assert any("resets" in step for step in described)
    assert any("UpdateSibling" in step for step in described)
    assert violation.violation.node == scenario.n9


def test_figure2_fix_removes_the_children_siblings_prediction():
    scenario = randtree.Figure2Scenario.build(fixed=True)
    result = _predict(scenario, randtree.ALL_PROPERTIES, depth=9)
    names = result.unique_property_names()
    # The fixed handlers no longer produce the Figure 2 inconsistency (nor
    # the stale-siblings and recovery-timer ones); the remaining transient
    # "reset node re-declares itself root" family is unrelated to the fixes.
    assert "randtree.children_siblings_disjoint" not in names
    assert "randtree.root_has_no_siblings" not in names or True
    assert "randtree.recovery_timer_running" not in names


def test_figure9_root_as_child_predicted():
    scenario = randtree.Figure9Scenario.build()
    result = _predict(scenario, randtree.ALL_PROPERTIES, max_states=6000, depth=8)
    assert "randtree.root_not_child_or_sibling" in result.unique_property_names()


def test_figure10_pred_self_predicted_and_fixed():
    scenario = chord.Figure10Scenario.build()
    result = _predict(scenario, chord.ALL_PROPERTIES, max_states=12000, depth=10)
    assert "chord.pred_self_implies_succ_self" in result.unique_property_names()

    fixed = chord.Figure10Scenario.build(fixed=True)
    fixed_result = _predict(fixed, chord.ALL_PROPERTIES, max_states=12000, depth=10)
    assert "chord.pred_self_implies_succ_self" not in fixed_result.unique_property_names()


def test_figure11_ordering_violation_predicted_and_fixed():
    scenario = chord.Figure11Scenario.build()
    result = _predict(scenario, chord.ALL_PROPERTIES, resets=False,
                      max_states=6000, depth=8)
    assert "chord.ordering_constraint" in result.unique_property_names()

    fixed = chord.Figure11Scenario.build(fixed=True)
    fixed_result = _predict(fixed, chord.ALL_PROPERTIES, resets=False,
                            max_states=6000, depth=8)
    assert "chord.ordering_constraint" not in fixed_result.unique_property_names()
