"""End-to-end and unit tests for the repro.attack pipeline."""

import json

import pytest

import repro.attack as attack_module
from repro.api.cli import main
from repro.api.report import RunReport
from repro.attack import (
    AttackConfig,
    AttackReport,
    AttackResult,
    AttackSchedule,
    AttackStep,
    build_faults,
    concretize,
    find_attack,
)
from repro.campaign.runner import run_one, summarize_report
from repro.campaign.spec import CampaignSpec, RunSpec
from repro.faults.byzantine import EquivocatingNode, MessageTamper


# -- schedules ---------------------------------------------------------------

def test_concretize_unrolls_the_equivocation_preset():
    schedule = concretize(("equivocation",), duration=60.0, seed=7,
                          start_after=6.0)
    # every=duration/3=20s, stop_after=0.9*60=54: firings at 26 and 46.
    assert [step.at for step in schedule.steps] == [26.0, 46.0]
    assert all(step.kind == "equivocating-node" for step in schedule.steps)
    assert [step.rng_key for step in schedule.steps] == \
        ["attack/7/0", "attack/7/1"]
    assert schedule.seed == 7
    assert schedule.duration == 60.0


def test_concretize_caps_runaway_periodic_schedules():
    fault = MessageTamper(every=0.1, duration=0.5)
    schedule = concretize([fault], duration=60.0)
    assert len(schedule) == 64  # _MAX_STEPS bound, not ~540 steps


def test_schedule_round_trips_through_json():
    schedule = concretize(
        [EquivocatingNode(at=5.0, duration=4.0, target=1,
                          mtypes=("Promise", "Accept"))],
        duration=30.0, seed=3)
    data = json.loads(json.dumps(schedule.to_dict()))
    restored = AttackSchedule.from_dict(data)
    assert restored == schedule
    # Tuple-valued params survive the JSON list round-trip.
    assert restored.steps[0].params["mtypes"] == ("Promise", "Accept")


def test_build_faults_reconstructs_one_shot_instances():
    schedule = concretize(("equivocation",), duration=60.0, seed=0,
                          start_after=6.0)
    faults = build_faults(schedule)
    assert len(faults) == 2
    for fault, step in zip(faults, schedule.steps):
        assert isinstance(fault, EquivocatingNode)
        assert fault.at == step.at
        assert fault.every is None  # one-shot, not periodic
        assert fault.duration == step.duration
        assert fault.rng_key == step.rng_key
        assert fault.mutator is None  # refilled by the live run


def test_build_faults_rejects_unknown_step_kinds():
    schedule = AttackSchedule(
        steps=(AttackStep(kind="no-such-fault", at=1.0),))
    with pytest.raises(ValueError, match="no-such-fault"):
        build_faults(schedule)


# -- the full pipeline (ISSUE acceptance) ------------------------------------

@pytest.fixture(scope="module")
def agreement_attack():
    """The pinned acceptance hunt: equivocation vs paxos.agreement."""
    return find_attack(AttackConfig(
        system="paxos",
        property_id="paxos.agreement",
        faults=("equivocation",),
        seed=0,
    ))


def test_attack_finds_and_minimizes_agreement_violation(agreement_attack):
    result = agreement_attack
    assert result.found
    report = result.report
    assert report.property_id == "paxos.agreement"
    # The minimized trace is strictly smaller than the concretized
    # original (pinned: the 2-step equivocation preset shrinks to 1).
    assert report.original_steps == 2
    assert report.minimized_steps == 1
    assert report.minimized_steps < report.original_steps
    assert report.reductions  # at least one accepted reduction
    assert report.violation["property_id"] == "paxos.agreement"


def test_minimized_trace_replays_deterministically(agreement_attack):
    report = agreement_attack.report
    assert report.replay["verified"]
    assert report.replay["sim_time"] == report.violation["sim_time"]
    assert report.replay["state_digest"] == report.violation["state_digest"]
    assert report.replay["final_state_digest"] == report.final_state_digest


def test_attack_report_artifacts(tmp_path, agreement_attack):
    report = agreement_attack.report
    json_path, md_path = report.write(str(tmp_path))
    data = json.loads(open(json_path).read())
    assert data["found"] is True
    assert data["property"] == "paxos.agreement"
    assert len(data["trace"]["steps"]) == report.minimized_steps
    assert data["replay"]["verified"] is True
    assert "python -m repro attack paxos" in data["invocation"]
    markdown = open(md_path).read()
    assert "FALSIFIED" in markdown
    assert "## Minimized attack trace" in markdown
    assert "## Reproduction" in markdown


def test_benign_runs_do_not_observe_the_attack_machinery():
    # Without byzantine faults the rewrite hook must be invisible: the
    # same seed with and without the attack modules imported/none
    # installed stays bit-identical (goldens enforce the cross-PR half).
    from repro.api import Experiment
    from repro.backends import protocol_state_digest

    digests = {
        protocol_state_digest(
            Experiment("paxos").seed(0).duration(60).run().simulator)
        for _ in range(2)
    }
    assert len(digests) == 1


# -- CLI ---------------------------------------------------------------------

def test_cli_attack_unknown_property_exits_2(tmp_path, capsys):
    code = main(["attack", "paxos", "--property", "no.such.prop",
                 "--out", str(tmp_path)])
    assert code == 2
    assert "no.such.prop" in capsys.readouterr().err


def test_cli_attack_unknown_system_exits_2(tmp_path, capsys):
    code = main(["attack", "nosystem", "--property", "paxos.agreement",
                 "--out", str(tmp_path)])
    assert code == 2


def test_cli_attack_not_found_exits_1_and_writes_report(tmp_path, capsys):
    # Attack seed 0 alone does not break agreement (the hunt needs seed 2),
    # so a 1-attempt budget is a cheap, deterministic not-found run.
    code = main(["attack", "paxos", "--property", "paxos.agreement",
                 "--faults", "equivocation", "--attempts", "1",
                 "--out", str(tmp_path), "--json"])
    assert code == 1
    data = json.loads(capsys.readouterr().out)
    assert data["found"] is False
    assert data["attempts"] == 1
    assert (tmp_path / "attack_paxos_paxos_agreement.md").exists()


# -- campaign attack mode ----------------------------------------------------

def test_campaign_expand_accepts_attack_cells():
    spec = CampaignSpec(systems=["paxos"], modes=("off", "attack"),
                        fault_presets=("equivocation",),
                        properties=("paxos.agreement",))
    runs = spec.expand()
    assert sorted(run.mode for run in runs) == ["attack", "off"]


@pytest.mark.parametrize("kwargs", [
    dict(modes=("attack",)),  # no fault axis
    dict(modes=("attack",), fault_presets=("equivocation",)),  # default props
    dict(modes=("attack",), fault_presets=("equivocation",),
         properties=("paxos.*",)),  # glob, not one id
    dict(modes=("attack",), fault_presets=("equivocation",),
         properties=("paxos.agreement",), backends=("tcp",)),  # non-sim
    dict(modes=("attack",), fault_presets=("equivocation",),
         properties=("paxos.agreement",), workloads=("submissions",)),
])
def test_campaign_expand_refuses_malformed_attack_axes(kwargs):
    with pytest.raises(ValueError, match="attack mode"):
        CampaignSpec(systems=["paxos"], **kwargs).expand()


def test_campaign_attack_cell_attaches_verdict(monkeypatch):
    captured = {}

    def fake_find_attack(config):
        captured["config"] = config
        report = AttackReport(
            system=config.system, property_id=config.property_id,
            found=True, attempts=2, executions=5,
            original_schedule=AttackSchedule(
                steps=(AttackStep(kind="equivocating-node", at=1.0),
                       AttackStep(kind="equivocating-node", at=2.0))),
            minimized_schedule=AttackSchedule(
                steps=(AttackStep(kind="equivocating-node", at=1.0),)),
            reductions=["drop-step"],
            replay={"verified": True},
        )
        return AttackResult(found=True, report=report,
                            run_report=RunReport(system=config.system))

    monkeypatch.setattr(attack_module, "find_attack", fake_find_attack)
    run = RunSpec(system="paxos", mode="attack",
                  faults=("equivocation",),
                  properties=("paxos.agreement",), seed=4)
    report = run_one(run)
    config = captured["config"]
    assert config.property_id == "paxos.agreement"
    assert config.seed == 4
    attack = report.outcome["attack"]
    assert attack["found"] is True
    assert "metrics" not in attack  # compact campaign form
    summary = summarize_report(report)
    assert summary["attack"] == {
        "found": True, "attempts": 2, "executions": 5,
        "original_steps": 2, "minimized_steps": 1,
        "reductions": ["drop-step"], "replay_verified": True,
    }
