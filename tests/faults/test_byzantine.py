"""Unit tests for the byzantine fault types (repro.faults.byzantine)."""

import random

from repro.faults import (
    EquivocatingNode,
    MessageTamper,
    Nemesis,
    SpoofSender,
    generic_mutator,
)
from repro.faults.presets import resolve_preset
from repro.runtime import Message, make_addresses

A = make_addresses(4)


def _msg(src, dst, mtype="Ping", payload=None, **kwargs):
    return Message(mtype=mtype, src=src, dst=dst,
                   payload=payload if payload is not None else {"seq": 1},
                   **kwargs)


# -- generic mutator ---------------------------------------------------------

def test_generic_mutator_perturbs_one_int_field():
    message = _msg(A[0], A[1],
                   payload={"seq": 5, "name": "x", "flag": True})
    mutated = generic_mutator(message, random.Random(0), variant=2)
    assert mutated is not None
    assert mutated.payload["seq"] == 5 + 1 + 2
    # Non-int fields (and bools) stay untouched.
    assert mutated.payload["name"] == "x"
    assert mutated.payload["flag"] is True


def test_generic_mutator_declines_without_mutable_fields():
    message = _msg(A[0], A[1], payload={"name": "x", "flag": False})
    assert generic_mutator(message, random.Random(0), 0) is None


# -- interceptor behaviour ---------------------------------------------------

def test_tamper_interceptor_rewrites_matching_service_traffic(ping_sim):
    sim, addrs = ping_sim
    fault = MessageTamper(at=1.0, probability=1.0, variants=1)
    fault.inject(sim, random.Random(1))
    interceptor = sim.network.interceptors[-1]
    rewritten = interceptor.rewrite(_msg(addrs[0], addrs[1]),
                                    random.Random(99))
    assert rewritten.payload["seq"] != 1
    assert interceptor.affected == 1


def test_tamper_skips_control_and_foreign_mtypes(ping_sim):
    sim, addrs = ping_sim
    fault = MessageTamper(at=1.0, probability=1.0, mtypes=("Other",))
    fault.inject(sim, random.Random(1))
    interceptor = sim.network.interceptors[-1]
    control = _msg(addrs[0], addrs[1], control=True)
    assert interceptor.rewrite(control, random.Random(0)) is control
    ping = _msg(addrs[0], addrs[1])  # mtype not in the filter
    assert interceptor.rewrite(ping, random.Random(0)) is ping
    assert interceptor.affected == 0


def test_byzantine_rewrite_never_consumes_the_simulator_rng(ping_sim):
    sim, addrs = ping_sim
    fault = MessageTamper(at=1.0, probability=1.0)
    fault.inject(sim, random.Random(1))
    interceptor = sim.network.interceptors[-1]
    sim_rng = random.Random(42)
    before = sim_rng.getstate()
    interceptor.rewrite(_msg(addrs[0], addrs[1]), sim_rng)
    assert sim_rng.getstate() == before


def test_spoof_forges_a_live_source_address(ping_sim):
    sim, addrs = ping_sim
    fault = SpoofSender(at=1.0, probability=1.0)
    fault.inject(sim, random.Random(2))
    interceptor = sim.network.interceptors[-1]
    message = _msg(addrs[0], addrs[1])
    forged = interceptor.rewrite(message, random.Random(0))
    assert forged.src != addrs[0]
    assert forged.src in addrs
    # Payload and destination are untouched: spoofing forges provenance.
    assert forged.dst == addrs[1]
    assert forged.payload == message.payload


def test_spoof_declines_without_a_candidate_pool(ping_sim_factory):
    sim, addrs = ping_sim_factory(node_count=1)
    fault = SpoofSender(at=1.0, probability=1.0)
    assert fault.inject(sim, random.Random(0)) is None
    assert not sim.network.interceptors


def test_equivocation_feeds_each_destination_a_stable_distinct_lie(ping_sim):
    sim, addrs = ping_sim
    fault = EquivocatingNode(at=1.0, target=0)
    fault.inject(sim, random.Random(3))
    interceptor = sim.network.interceptors[-1]
    liar = sorted(sim.nodes)[0]
    by_dst = {}
    for dst in addrs[1:]:
        values = {
            interceptor.rewrite(_msg(liar, dst),
                                random.Random(0)).payload["seq"]
            for _ in range(3)
        }
        assert len(values) == 1  # same destination, same lie, every time
        by_dst[dst] = values.pop()
    # Different destinations observe conflicting payloads.
    assert len(set(by_dst.values())) > 1
    # Traffic not from the liar passes through untouched.
    honest = _msg(addrs[1], addrs[2])
    assert interceptor.rewrite(honest, random.Random(0)) is honest


def test_equivocation_target_pins_the_liar(ping_sim_factory):
    for seed in (0, 17, 99):
        sim, addrs = ping_sim_factory()
        fault = EquivocatingNode(at=1.0, target=2)
        detail = fault.inject(sim, random.Random(seed))
        assert detail == {"liar": str(sorted(sim.nodes)[2])}


# -- window lifecycle and reproducibility ------------------------------------

def test_heal_removes_interceptor_and_reports_affected_count(ping_sim):
    sim, addrs = ping_sim
    fault = MessageTamper(at=1.0, probability=1.0)
    fault.inject(sim, random.Random(1))
    interceptor = sim.network.interceptors[-1]
    interceptor.rewrite(_msg(addrs[0], addrs[1]), random.Random(0))
    detail = fault.heal(sim)
    assert detail == {"messages_affected": 1}
    assert interceptor not in sim.network.interceptors
    assert fault.heal(sim) is None  # idempotent


def test_nemesis_byzantine_schedule_is_reproducible(ping_sim_factory):
    def run():
        sim, addrs = ping_sim_factory()
        nemesis = Nemesis(
            [MessageTamper(at=2.0, duration=3.0, probability=1.0)], seed=5)
        nemesis.install(sim)
        sim.run(until=10.0)
        return [(t, str(src), seq)
                for addr in addrs
                for t, src, seq in sim.nodes[addr].state.received]

    assert run() == run()


def test_rng_key_pins_draws_independently_of_fault_index(ping_sim_factory):
    def liar_for(faults, seed):
        sim, _ = ping_sim_factory()
        nemesis = Nemesis(faults, seed=seed)
        nemesis.install(sim)
        sim.run(until=5.0)
        return faults[-1]._liar

    def pinned():
        return EquivocatingNode(at=1.0, duration=2.0, rng_key="k")

    # Same rng_key, different nemesis seed and schedule position: same liar.
    alone = liar_for([pinned()], seed=1)
    shifted = liar_for(
        [MessageTamper(at=0.5, duration=1.0), pinned()], seed=99)
    assert alone == shifted


# -- presets -----------------------------------------------------------------

def test_byzantine_presets_resolve():
    byzantine = resolve_preset("byzantine", 60.0)
    assert {type(f) for f in byzantine} == {MessageTamper, SpoofSender}
    equivocation = resolve_preset("equivocation", 60.0)
    assert [type(f) for f in equivocation] == [EquivocatingNode]


def test_mutator_defaults_to_generic():
    fault = MessageTamper(at=1.0)
    assert fault.resolved_mutator() is generic_mutator

    def sentinel(message, rng, variant):
        return None

    assert MessageTamper(at=1.0, mutator=sentinel).resolved_mutator() \
        is sentinel
