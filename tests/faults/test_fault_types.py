"""Unit tests for the individual fault types."""

import random

from repro.faults import (
    ClockSkew,
    CrashRestart,
    LinkFlap,
    MessageDelay,
    MessageDup,
    MessageReorder,
    Nemesis,
    Partition,
)

import pytest


def _received(sim, addr):
    return sim.nodes[addr].state.received


def test_partition_blocks_and_heals(ping_sim):
    sim, addrs = ping_sim
    Nemesis([Partition(at=2.0, duration=4.0, fraction=0.5)], seed=1).install(sim)
    sim.run(until=2.5)
    assert sim.network.partitions  # cut while active
    sim.run(until=10.0)
    assert not sim.network.partitions  # fully healed afterwards
    # Traffic flows again after the heal: every node heard from peers
    # in the post-heal window.
    for addr in addrs:
        assert any(t > 6.5 for t, _, _ in _received(sim, addr))


def test_partition_spares_at_least_one_node_per_side(ping_sim):
    sim, addrs = ping_sim
    fault = Partition(at=1.0, fraction=1.0)  # would isolate everyone
    detail = fault.inject(sim, random.Random(0))
    assert 1 <= len(detail["minority"]) < len(addrs)


def test_crash_restart_resets_state(ping_sim):
    sim, addrs = ping_sim
    victim = addrs[-1]
    Nemesis([CrashRestart(at=3.0, duration=3.0, target=victim)],
            seed=1).install(sim)
    sim.run(until=3.5)
    assert not sim.nodes[victim].alive
    before = sim.nodes[victim].incarnation
    sim.run(until=12.0)
    node = sim.nodes[victim]
    assert node.alive
    assert node.incarnation > before
    # Fresh state: everything it received pre-crash is gone, new pings arrive.
    assert node.state.received
    assert all(t > 6.0 for t, _, _ in node.state.received)


def test_crash_without_duration_is_permanent(ping_sim):
    sim, addrs = ping_sim
    Nemesis([CrashRestart(at=2.0, target=addrs[1])], seed=1).install(sim)
    sim.run(until=20.0)
    assert not sim.nodes[addrs[1]].alive


def test_crash_spare_protects_bootstrap(ping_sim):
    sim, addrs = ping_sim
    fault = CrashRestart(every=1.0, spare=1)
    rng = random.Random(3)
    victims = {fault.inject(sim, rng)["node"] for _ in range(20)
               if (fault.heal(sim) or True)}
    assert str(addrs[0]) not in victims


def test_clock_skew_forces_checkpoints(ping_sim):
    sim, addrs = ping_sim
    Nemesis([ClockSkew(at=2.0, amount=5)], seed=1).install(sim)
    sim.run(until=6.0)
    # The skewed node's clock jumped, and at least one peer adopted the
    # larger checkpoint number through message stamping.
    values = sorted(node.clock.value for node in sim.nodes.values())
    assert values[-1] >= 5
    assert sum(1 for v in values if v >= 5) >= 2


def test_link_flap_targets_one_stable_pair(ping_sim):
    sim, addrs = ping_sim
    fault = LinkFlap(every=2.0, duration=1.0)
    nemesis = Nemesis([fault], seed=2).install(sim)
    sim.run(until=15.0)
    links = {record.detail["link"] for record in nemesis.records
             if record.kind == "inject"}
    assert len(links) == 1
    assert not sim.network.partitions or len(sim.network.partitions) == 1


def test_message_delay_stretches_latency(ping_sim):
    sim, addrs = ping_sim
    base_latency = sim.network.default_rtt  # generous upper bound per hop
    Nemesis([MessageDelay(at=1.5, duration=100.0, min_extra=2.0,
                          max_extra=3.0)], seed=1).install(sim)
    sim.run(until=6.0)
    delivered = [t for t, _, _ in _received(sim, addrs[0])]
    # Pings sent after the window opened arrive >= 2 s late.
    late = [t for t in delivered if t > 2.0 + base_latency]
    assert late and min(late) >= 4.0


def test_message_delay_window_closes(ping_sim):
    sim, addrs = ping_sim
    Nemesis([MessageDelay(at=1.5, duration=2.0, min_extra=5.0,
                          max_extra=5.0)], seed=1).install(sim)
    sim.run(until=4.0)
    assert not sim.network.interceptors  # healed: interceptor removed
    sim.run(until=20.0)
    # Traffic sent after the heal is fast again.
    fast = [t for t, _, _ in _received(sim, addrs[0]) if 10.0 < t < 11.5]
    assert fast


def test_message_dup_delivers_twice(ping_sim):
    sim, addrs = ping_sim
    Nemesis([MessageDup(at=0.5, duration=100.0, probability=1.0)],
            seed=1).install(sim)
    sim.run(until=3.5)
    # With dup probability 1, every ping arrives (at least) twice.
    received = _received(sim, addrs[0])
    assert len(received) >= 2 * 2 * len(addrs[1:])


def test_message_reorder_changes_arrival_order(ping_sim):
    sim, addrs = ping_sim
    Nemesis([MessageReorder(at=0.5, duration=100.0, probability=0.5,
                            window=3.0)], seed=1).install(sim)
    sim.run(until=15.0)
    # A later-sent ping overtakes an earlier one: for some sender, the
    # observed sequence numbers are not monotonically increasing.
    out_of_order = 0
    for addr in addrs:
        last_seq = {}
        for _, src, seq in _received(sim, addr):
            if src in last_seq and seq < last_seq[src]:
                out_of_order += 1
            last_seq[src] = max(last_seq.get(src, 0), seq)
    assert out_of_order > 0


def test_partition_refcounting_on_shared_links(ping_sim):
    sim, (a, b, *_rest) = ping_sim
    sim.network.partition(a, b)
    sim.network.partition(a, b)  # second overlapping cut of the same link
    sim.network.heal(a, b)
    assert not sim.network.reachable(a, b)  # one cut still outstanding
    sim.network.heal(a, b)
    assert sim.network.reachable(a, b)


def test_self_overlapping_partition_windows_fully_heal(ping_sim):
    sim, _ = ping_sim
    # every < duration: windows overlap, and shared links must stay cut
    # until the *last* overlapping window closes.
    nemesis = Nemesis([Partition(every=4.0, duration=6.0)], seed=5,
                      stop_after=20.0).install(sim)
    sim.run(until=40.0)
    heals = [r for r in nemesis.records if r.kind == "heal"]
    assert heals and len(heals) == nemesis.faults_injected
    assert not sim.network.partitions  # nothing leaks past the last heal


def test_link_flap_heals_the_pair_it_cut_after_repick(ping_sim):
    sim, addrs = ping_sim
    fault = LinkFlap(every=10.0, duration=5.0)
    rng = random.Random(1)
    first = fault.inject(sim, rng)["link"]
    a = next(addr for addr in addrs if str(addr) == first.split("<->")[0])
    b = next(addr for addr in addrs if str(addr) == first.split("<->")[1])
    sim.crash_node(b)  # endpoint dies: the next injection re-picks a pair
    second = fault.inject(sim, rng)["link"]
    assert second != first
    # Heals restore the pairs in injection order, so the first pair's cut
    # does not leak even though the flapping link moved on.
    fault.heal(sim)
    assert sim.network.reachable(a, b)
    fault.heal(sim)
    assert not sim.network.partitions


def test_fault_requires_exactly_one_of_at_or_every():
    with pytest.raises(ValueError):
        Partition()
    with pytest.raises(ValueError):
        Partition(at=1.0, every=2.0)
    with pytest.raises(ValueError):
        Partition(every=-1.0)
