"""Tests for the Nemesis scheduler and its accounting."""

import pytest

from repro.faults import (
    ClockSkew,
    CrashRestart,
    Nemesis,
    Partition,
    list_presets,
    make_nemesis,
    resolve_preset,
)


def test_periodic_fault_fires_repeatedly(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([ClockSkew(every=5.0)], seed=3).install(sim)
    sim.run(until=22.0)
    assert nemesis.faults_injected == 4  # t = 5, 10, 15, 20


def test_one_shot_fault_fires_once(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([ClockSkew(at=5.0)], seed=3).install(sim)
    sim.run(until=60.0)
    assert nemesis.faults_injected == 1


def test_start_after_delays_first_injection(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([ClockSkew(every=5.0)], seed=3,
                      start_after=30.0).install(sim)
    sim.run(until=20.0)
    assert nemesis.faults_injected == 0
    sim.run(until=40.0)
    assert nemesis.faults_injected >= 1
    assert all(record.time >= 35.0 for record in nemesis.records)


def test_stop_after_ends_injections_but_not_heals(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([Partition(every=4.0, duration=3.0)], seed=3,
                      stop_after=10.0).install(sim)
    sim.run(until=30.0)
    inject_times = [r.time for r in nemesis.records if r.kind == "inject"]
    heal_times = [r.time for r in nemesis.records if r.kind == "heal"]
    assert inject_times and max(inject_times) < 10.0
    assert len(heal_times) == len(inject_times)  # every cut was healed
    assert not sim.network.partitions


def test_skip_recorded_when_no_target(ping_sim):
    sim, addrs = ping_sim
    for addr in addrs:
        sim.crash_node(addr)
    nemesis = Nemesis([CrashRestart(every=2.0, duration=1.0)],
                      seed=3).install(sim)
    sim.run(until=5.0)
    assert nemesis.faults_injected == 0
    assert any(record.kind == "skip" for record in nemesis.records)


def test_double_install_rejected(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([ClockSkew(every=5.0)], seed=3).install(sim)
    with pytest.raises(RuntimeError):
        nemesis.install(sim)


def test_report_shape_and_breakdown(ping_sim):
    sim, _ = ping_sim
    nemesis = Nemesis([Partition(every=6.0, duration=2.0),
                       ClockSkew(every=9.0)], seed=3).install(sim)
    sim.run(until=20.0)
    report = nemesis.report()
    assert report["faults_injected"] == nemesis.faults_injected > 0
    assert set(report["by_type"]) == {"partition", "clock-skew"}
    for counts in report["by_type"].values():
        assert set(counts) == {"injected", "healed", "skipped"}
    assert report["schedule"][0]["kind"] == "inject"
    assert report["schedule_truncated"] == 0


def _chaos_schedule(ping_sim_factory, seed):
    sim, _ = ping_sim_factory(node_count=5, seed=11)
    nemesis = make_nemesis(["chaos"], duration=60.0, seed=seed).install(sim)
    sim.run(until=60.0)
    return [(round(record.time, 6), record.fault, record.kind,
             tuple(sorted(record.detail.items())))
            for record in nemesis.records]


def test_same_seed_reproduces_identical_schedule(ping_sim_factory):
    assert (_chaos_schedule(ping_sim_factory, 5)
            == _chaos_schedule(ping_sim_factory, 5))


def test_different_seed_changes_schedule(ping_sim_factory):
    assert (_chaos_schedule(ping_sim_factory, 5)
            != _chaos_schedule(ping_sim_factory, 6))


def test_preset_names_all_resolve():
    for name in list_presets():
        faults = resolve_preset(name, duration=120.0)
        assert faults, name
        for fault in faults:
            assert fault.every is not None or fault.at is not None


def test_unknown_preset_raises():
    with pytest.raises(ValueError, match="unknown fault preset"):
        resolve_preset("nope", duration=100.0)
    with pytest.raises(ValueError, match="known presets"):
        make_nemesis(["nope"], duration=100.0)


def test_make_nemesis_mixes_presets_and_instances():
    nemesis = make_nemesis(["partition", ClockSkew(at=5.0)], duration=100.0,
                           seed=4)
    names = [fault.name for fault in nemesis.faults]
    assert names == ["partition", "clock-skew"]
    assert nemesis.stop_after == pytest.approx(90.0)
