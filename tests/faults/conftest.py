"""Fixtures for the fault-injection tests: a tiny ping protocol."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.runtime import (
    Address,
    NetworkModel,
    NodeState,
    Protocol,
    Simulator,
    Transport,
    make_addresses,
)

PING_TIMER = "ping"


@dataclass
class PingState(NodeState):
    addr: Address = None
    seq: int = 0
    #: (arrival_time, sender, sender_sequence_number) triples.
    received: list = field(default_factory=list)


class PingProtocol(Protocol):
    """Every node pings every peer once a second over UDP, with a
    per-sender sequence number so tests can observe reordering."""

    name = "PingAll"

    def __init__(self, peers):
        self.peers = tuple(peers)

    def initial_state(self, addr):
        return PingState(addr=addr)

    def on_start(self, ctx, state):
        ctx.set_timer(PING_TIMER, 1.0)

    def handle_timer(self, ctx, state, timer):
        state.seq += 1
        for peer in self.peers:
            if peer != state.addr:
                ctx.send(peer, "Ping", {"seq": state.seq},
                         transport=Transport.UDP)
        ctx.set_timer(PING_TIMER, 1.0)

    def handle_message(self, ctx, state, message):
        state.received.append((ctx.now, message.src, message.get("seq")))


def make_ping_sim(node_count=4, seed=7):
    addrs = make_addresses(node_count)
    sim = Simulator(lambda: PingProtocol(addrs),
                    NetworkModel(jitter=0.0, loss_fn=lambda s, d, r: 0.0),
                    seed=seed)
    for addr in addrs:
        sim.add_node(addr)
    return sim, addrs


@pytest.fixture
def ping_sim():
    return make_ping_sim()


@pytest.fixture
def ping_sim_factory():
    return make_ping_sim
