"""Unit tests for the Chord protocol handlers and properties."""

from repro.mc import GlobalState, check_all
from repro.runtime import Address, HandlerContext, Message
from repro.systems.chord import (
    ALL_PROPERTIES,
    Chord,
    ChordConfig,
    FIND_PRED,
    FIND_PRED_REPLY,
    GET_PRED,
    GET_PRED_REPLY,
    ORDERING_CONSTRAINT,
    PRED_SELF_IMPLIES_SUCC_SELF,
    UPDATE_PRED,
    in_interval,
    ring_distance,
)


A, B, C, D = Address(10), Address(20), Address(30), Address(40)
IDS = {A: 100, B: 200, C: 300, D: 500}


def _protocol(**kwargs):
    defaults = dict(bootstrap=(A,), id_map=dict(IDS))
    defaults.update(kwargs)
    return Chord(ChordConfig(**defaults))


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def test_ring_distance_and_interval_arithmetic():
    assert ring_distance(10, 20) == 10
    assert ring_distance(20, 10) == (1 << 16) - 10
    assert in_interval(150, 100, 200)
    assert not in_interval(100, 100, 200)
    assert not in_interval(200, 100, 200)
    assert in_interval(50, 60000, 100)  # wraps around the ring


def test_first_node_forms_singleton_ring():
    protocol = _protocol(bootstrap=())
    state = protocol.initial_state(A)
    protocol.handle_app(_ctx(A), state, "join", {})
    assert state.joined
    assert state.predecessor == A


def test_join_sends_find_pred_to_bootstrap():
    protocol = _protocol()
    state = protocol.initial_state(C)
    ctx = _ctx(C)
    protocol.handle_app(ctx, state, "join", {})
    assert any(m.mtype == FIND_PRED and m.dst == A for m in ctx.sent)


def test_find_pred_replies_when_origin_is_between_node_and_successor():
    protocol = _protocol()
    state = protocol.initial_state(A)
    state.joined = True
    state.successors = [D]
    state.remember(D, IDS[D])
    ctx = _ctx(A)
    protocol.handle_message(ctx, state, Message(
        mtype=FIND_PRED, src=C, dst=A, payload={"origin": C, "origin_id": IDS[C]}))
    replies = [m for m in ctx.sent if m.mtype == FIND_PRED_REPLY]
    assert replies and replies[0].dst == C


def test_find_pred_forwards_otherwise():
    protocol = _protocol()
    state = protocol.initial_state(A)
    state.joined = True
    state.successors = [B]
    state.remember(B, IDS[B])
    ctx = _ctx(A)
    protocol.handle_message(ctx, state, Message(
        mtype=FIND_PRED, src=D, dst=A, payload={"origin": D, "origin_id": IDS[D]}))
    assert any(m.mtype == FIND_PRED and m.dst == B for m in ctx.sent)


def test_find_pred_reply_stores_list_verbatim_and_notifies_successor():
    protocol = _protocol()
    state = protocol.initial_state(C)
    ctx = _ctx(C)
    protocol.handle_message(ctx, state, Message(
        mtype=FIND_PRED_REPLY, src=A, dst=C,
        payload={"successor_list": (C, D), "pred_id": IDS[A],
                 "ids": {C: IDS[C], D: IDS[D]}}))
    assert state.joined and state.predecessor == A
    assert state.successors == [C, D]  # kept verbatim, including self
    assert any(m.mtype == UPDATE_PRED and m.dst == C for m in ctx.sent)


def test_update_pred_self_adoption_bug_and_fix():
    protocol = _protocol()
    state = protocol.initial_state(C)
    state.joined = True
    state.successors = [C, D]
    state.remember(D, IDS[D])
    protocol.handle_message(_ctx(C), state, Message(
        mtype=UPDATE_PRED, src=C, dst=C, payload={"pred_id": IDS[C]}))
    assert state.predecessor == C  # the bug
    gs = GlobalState.from_snapshot({C: state})
    assert not PRED_SELF_IMPLIES_SUCC_SELF.holds(gs)

    fixed = _protocol(fix_pred_self=True)
    state2 = fixed.initial_state(C)
    state2.joined = True
    state2.successors = [C, D]
    state2.remember(D, IDS[D])
    fixed.handle_message(_ctx(C), state2, Message(
        mtype=UPDATE_PRED, src=C, dst=C, payload={"pred_id": IDS[C]}))
    assert state2.predecessor is None


def test_update_pred_accepts_closer_predecessor():
    protocol = _protocol()
    state = protocol.initial_state(C)
    state.joined = True
    state.predecessor = A
    state.remember(A, IDS[A])
    protocol.handle_message(_ctx(C), state, Message(
        mtype=UPDATE_PRED, src=B, dst=C, payload={"pred_id": IDS[B]}))
    assert state.predecessor == B


def test_get_pred_reply_ordering_bug_and_fix():
    # a_im1 (id 900) has predecessor and successor a_i (id 100).
    a_i, a_im1, a_im2 = Address(1), Address(3), Address(5)
    ids = {a_i: 100, a_im1: 900, a_im2: 800}
    buggy = Chord(ChordConfig(bootstrap=(a_i,), id_map=ids))
    state = buggy.initial_state(a_im1)
    state.joined = True
    state.predecessor = a_i
    state.successors = [a_i]
    for addr, node_id in ids.items():
        state.remember(addr, node_id)
    buggy.handle_message(_ctx(a_im1), state, Message(
        mtype=GET_PRED_REPLY, src=a_i, dst=a_im1,
        payload={"pred": a_im1, "pred_id": ids[a_im1],
                 "successor_list": (a_im2,), "ids": {a_im2: ids[a_im2]}}))
    assert a_im2 in state.successors
    assert state.predecessor == a_i  # untouched: the bug
    gs = GlobalState.from_snapshot({a_im1: state})
    assert not ORDERING_CONSTRAINT.holds(gs)

    fixed = Chord(ChordConfig(bootstrap=(a_i,), id_map=ids, fix_ordering=True))
    state2 = fixed.initial_state(a_im1)
    state2.joined = True
    state2.predecessor = a_i
    state2.successors = [a_i]
    for addr, node_id in ids.items():
        state2.remember(addr, node_id)
    fixed.handle_message(_ctx(a_im1), state2, Message(
        mtype=GET_PRED_REPLY, src=a_i, dst=a_im1,
        payload={"pred": a_im2, "pred_id": ids[a_im2],
                 "successor_list": (a_im2,), "ids": {a_im2: ids[a_im2]}}))
    assert check_all([ORDERING_CONSTRAINT],
                     GlobalState.from_snapshot({a_im1: state2})) == []


def test_stabilize_queries_successor():
    protocol = _protocol()
    state = protocol.initial_state(A)
    state.joined = True
    state.successors = [C]
    state.remember(C, IDS[C])
    ctx = _ctx(A)
    protocol.handle_timer(ctx, state, "stabilize")
    assert any(m.mtype == GET_PRED and m.dst == C for m in ctx.sent)


def test_connection_error_forgets_peer():
    protocol = _protocol()
    state = protocol.initial_state(C)
    state.predecessor = A
    state.successors = [A, D]
    protocol.handle_connection_error(_ctx(C), state, A)
    assert state.predecessor is None
    assert A not in state.successors


def test_clean_ring_satisfies_properties():
    protocol = _protocol()
    states = {}
    ring = [(A, C), (C, D), (D, A)]
    for node, succ in ring:
        state = protocol.initial_state(node)
        state.joined = True
        state.successors = [succ]
        state.predecessor = next(p for p, s in ring if s == node)
        for addr, node_id in IDS.items():
            state.remember(addr, node_id)
        states[node] = state
    gs = GlobalState.from_snapshot(states)
    assert not check_all(ALL_PROPERTIES, gs)
