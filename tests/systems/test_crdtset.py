"""Unit tests for the CRDT replica: delivery, semantics, properties."""

from repro.mc import check_all
from repro.runtime import Address, HandlerContext, Message
from repro.systems.crdtset import (
    ALL_PROPERTIES,
    CONVERGED,
    DIGEST,
    NO_TOMBSTONE_RESURRECTION,
    OP,
    OPS,
    ConcurrentOpsScenario,
    CrdtConfig,
    CrdtReplica,
)

A, B, C = Address(1), Address(2), Address(3)
PEERS = (A, B, C)


def _protocol(**kwargs):
    return CrdtReplica(CrdtConfig(peers=PEERS, **kwargs))


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def _op_payloads(ctx):
    return [m.get("op") for m in ctx.sent if m.mtype == OP]


def test_add_mints_tag_and_broadcasts_to_peers():
    protocol = _protocol()
    state = protocol.initial_state(A)
    ctx = _ctx(A)
    protocol.handle_app(ctx, state, "add", {"elem": "x"})
    assert state.observable() == frozenset({"x"})
    assert state.live_tags("x") == {(1, 1)}
    ops = _op_payloads(ctx)
    assert {m.dst for m in ctx.sent if m.mtype == OP} == {B, C}
    assert all(op["tag"] == (1, 1) for op in ops)


def test_remove_cancels_only_observed_tags_add_wins():
    protocol = _protocol()
    a, b = protocol.initial_state(A), protocol.initial_state(B)
    ctx = _ctx(A)
    protocol.handle_app(ctx, a, "add", {"elem": "x"})
    add_op = _op_payloads(ctx)[0]

    # B removes x having seen A's add; concurrently A re-adds x.
    protocol._ingest(b, add_op)
    ctx_b = _ctx(B)
    protocol.handle_app(ctx_b, b, "remove", {"elem": "x"})
    remove_op = _op_payloads(ctx_b)[0]
    assert tuple(remove_op["observed"]) == ((1, 1),)

    ctx2 = _ctx(A)
    protocol.handle_app(ctx2, a, "add", {"elem": "x"})
    protocol._ingest(a, remove_op)
    # The remove cancels (1, 1) but not the concurrent (1, 2): add wins.
    assert a.observable() == frozenset({"x"})
    assert a.live_tags("x") == {(1, 2)}


def test_out_of_order_ops_are_buffered_until_causally_ready():
    protocol = _protocol()
    state = protocol.initial_state(B)
    op1 = {"origin": 1, "seq": 1, "kind": "add", "elem": "x", "tag": (1, 1)}
    op2 = {"origin": 1, "seq": 2, "kind": "remove", "elem": "x",
           "observed": ((1, 1),)}
    protocol._ingest(state, op2)  # arrives first: must not apply yet
    assert state.observable() == frozenset()
    assert (1, 2) in state.pending
    protocol._ingest(state, op1)  # fills the gap, drains the buffer
    assert not state.pending
    assert state.observable() == frozenset()
    assert state.delivery_vector() == {1: 2}


def test_duplicate_delivery_is_idempotent_in_orset_mode():
    protocol = _protocol()
    state = protocol.initial_state(B)
    add = {"origin": 1, "seq": 1, "kind": "add", "elem": "x", "tag": (1, 1)}
    remove = {"origin": 2, "seq": 1, "kind": "remove", "elem": "x",
              "observed": ((1, 1),)}
    for op in (add, remove, add):  # duplicate add after the remove
        protocol._ingest(state, op)
    assert state.observable() == frozenset()
    assert not list(state.resurrected())


def test_lww_mode_resurrects_on_duplicate_add():
    protocol = _protocol(lww=True)
    state = protocol.initial_state(B)
    add = {"origin": 1, "seq": 1, "kind": "add", "elem": "x", "tag": (1, 1)}
    remove = {"origin": 2, "seq": 1, "kind": "remove", "elem": "x",
              "observed": ((1, 1),)}
    for op in (add, remove, add):
        protocol._ingest(state, op)
    assert state.observable() == frozenset({"x"})
    assert list(state.resurrected()) == [("x", (1, 1))]


def test_pn_counter_merges_concurrent_incs_and_decs():
    protocol = _protocol()
    state = protocol.initial_state(A)
    protocol.handle_app(_ctx(A), state, "inc", {"amount": 3})
    protocol._ingest(state, {"origin": 2, "seq": 1, "kind": "inc",
                             "amount": 2})
    protocol._ingest(state, {"origin": 3, "seq": 1, "kind": "dec",
                             "amount": 4})
    assert state.counter_value() == 1


def test_anti_entropy_pushes_missing_log_suffix():
    protocol = _protocol()
    a, b = protocol.initial_state(A), protocol.initial_state(B)
    ctx = _ctx(A)
    protocol.handle_app(ctx, a, "add", {"elem": "x"})
    protocol.handle_app(ctx, a, "inc", {"amount": 1})

    # B's digest reaches A; A pushes the two ops B is missing.
    ctx2 = _ctx(A)
    protocol.handle_message(ctx2, a, Message(
        mtype=DIGEST, src=B, dst=A,
        payload={"vector": dict(b.delivered)}))
    pushes = [m for m in ctx2.sent if m.mtype == OPS]
    assert len(pushes) == 1
    for op in pushes[0].get("ops"):
        protocol._ingest(b, op)
    assert b.observable() == a.observable()
    assert b.counter_value() == a.counter_value()
    assert b.delivery_vector() == a.delivery_vector()


def test_digest_from_a_peer_that_is_ahead_requests_a_push_back():
    protocol = _protocol()
    state = protocol.initial_state(B)
    ctx = _ctx(B)
    protocol.handle_message(ctx, state, Message(
        mtype=DIGEST, src=A, dst=B, payload={"vector": {1: 2}}))
    # B has nothing to push but advertises its own vector to be healed.
    assert [m.mtype for m in ctx.sent] == [DIGEST]


def test_converged_property_ignores_replicas_with_different_vectors():
    scenario = ConcurrentOpsScenario.build(fixed=True)
    gs = scenario.global_state()
    # B delivered the remove, A and C did not: vectors differ, so the
    # pairwise check must not fire on the transient disagreement.
    assert check_all([CONVERGED], gs) == []


def test_search_falsifies_lww_and_passes_orset():
    from repro.api import Experiment

    buggy = Experiment("crdtset").scenario("concurrent-ops").run()
    assert buggy.outcome["violations"] > 0
    names = set(buggy.outcome["violations_by_property"])
    assert "crdtset.converged" in names
    assert "crdtset.no_tombstone_resurrection" in names

    fixed = (Experiment("crdtset").scenario("concurrent-ops")
             .options(fixed=True).run())
    assert fixed.outcome["violations"] == 0


def test_property_objects_are_registered_for_the_namespace():
    from repro.properties import select_properties

    names = {p.name for p in select_properties("crdtset.*")}
    assert {CONVERGED.name, NO_TOMBSTONE_RESURRECTION.name} <= names
    assert {p.name for p in ALL_PROPERTIES} <= names
