"""Unit tests for the quorum KV store: writes, reads, staleness, durability."""

from repro.mc import check_all
from repro.runtime import Address, HandlerContext, Message
from repro.systems.kvstore import (
    ALL_PROPERTIES,
    NO_VERSION,
    QUORUM_INTERSECTION,
    READ_REPLY,
    READ_REQ,
    READ_YOUR_WRITES,
    REPL_ACK,
    REPLICATE,
    KvConfig,
    KvStore,
)

A, B, C = Address(1), Address(2), Address(3)
PEERS = (A, B, C)


def _protocol(**kwargs):
    return KvStore(KvConfig(peers=PEERS, **kwargs))


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def test_put_replicates_to_all_peers_and_waits_for_quorum():
    protocol = _protocol(write_quorum=2)
    state = protocol.initial_state(A)
    ctx = _ctx(A)
    protocol._do_put(ctx, state, "k0", "v1")
    assert {m.dst for m in ctx.sent if m.mtype == REPLICATE} == {B, C}
    entry = state.pending_writes["k0"]
    assert not entry["committed"]  # quorum mode: no ack yet
    assert state.writes_done == 0

    protocol._on_repl_ack(_ctx(A), state, Message(
        mtype=REPL_ACK, src=B, dst=A,
        payload={"key": "k0", "version": entry["version"]}))
    assert state.pending_writes["k0"]["committed"]
    assert state.writes_done == 1
    assert state.last_written["k0"] == entry["version"]


def test_optimistic_put_commits_before_any_ack():
    protocol = _protocol(optimistic=True)
    state = protocol.initial_state(A)
    protocol._do_put(_ctx(A), state, "k0", "v1")
    assert state.pending_writes["k0"]["committed"]
    assert state.writes_done == 1


def test_fully_acked_write_leaves_the_pending_table():
    protocol = _protocol()
    state = protocol.initial_state(A)
    protocol._do_put(_ctx(A), state, "k0", "v1")
    version = state.pending_writes["k0"]["version"]
    for src in (B, C):
        protocol._on_repl_ack(_ctx(A), state, Message(
            mtype=REPL_ACK, src=src, dst=A,
            payload={"key": "k0", "version": version}))
    assert "k0" not in state.pending_writes


def test_reconciler_resends_only_to_unacked_peers():
    protocol = _protocol()
    state = protocol.initial_state(A)
    protocol._do_put(_ctx(A), state, "k0", "v1")
    version = state.pending_writes["k0"]["version"]
    protocol._on_repl_ack(_ctx(A), state, Message(
        mtype=REPL_ACK, src=B, dst=A,
        payload={"key": "k0", "version": version}))
    ctx = _ctx(A)
    protocol._reconcile(ctx, state)
    assert [m.dst for m in ctx.sent] == [C]


def test_replica_keeps_newer_version_on_stale_replicate():
    protocol = _protocol()
    state = protocol.initial_state(B)
    protocol._on_replicate(_ctx(B), state, Message(
        mtype=REPLICATE, src=A, dst=B,
        payload={"key": "k0", "version": (5, 1), "value": "new"}))
    ctx = _ctx(B)
    protocol._on_replicate(ctx, state, Message(
        mtype=REPLICATE, src=C, dst=B,
        payload={"key": "k0", "version": (2, 3), "value": "old"}))
    assert state.store["k0"] == ((5, 1), "new")
    # Still acks the stale retry so the sender's reconciler settles.
    assert [m.mtype for m in ctx.sent] == [REPL_ACK]


def test_quorum_read_takes_the_maximum_version_of_r_replies():
    protocol = _protocol(read_quorum=2)
    state = protocol.initial_state(A)
    state.store["k0"] = ((1, 1), "old")
    ctx = _ctx(A)
    protocol._do_get(ctx, state, "k0")
    assert {m.dst for m in ctx.sent if m.mtype == READ_REQ} == {B, C}
    protocol._on_read_reply(_ctx(A), state, Message(
        mtype=READ_REPLY, src=B, dst=A,
        payload={"key": "k0", "rid": 1, "version": (3, 2), "value": "new"}))
    assert state.reads_done == 1
    assert state.last_read["k0"] == (3, 2)
    assert not state.stale_reads


def test_optimistic_read_rotates_over_single_replicas():
    protocol = _protocol(optimistic=True)
    state = protocol.initial_state(A)
    first, second = _ctx(A), _ctx(A)
    protocol._do_get(first, state, "k0")
    protocol._do_get(second, state, "k0")
    targets = [m.dst for m in first.sent + second.sent
               if m.mtype == READ_REQ]
    assert targets == [B, C]  # deterministic rotation, no rng


def test_stale_read_below_own_write_is_logged_as_read_your_writes():
    from repro.mc import GlobalState

    protocol = _protocol(optimistic=True)
    state = protocol.initial_state(A)
    state.last_written["k0"] = (4, 1)
    protocol._record_read(state, "k0", (2, 2))
    assert state.stale_reads == [("read_your_writes", "k0", (4, 1), (2, 2))]
    found = check_all([READ_YOUR_WRITES],
                      GlobalState.from_snapshot({A: state}))
    assert [v.property_name for v in found] == ["kvstore.read_your_writes"]


def test_monotonic_reads_floor_tracks_the_highest_version_seen():
    protocol = _protocol()
    state = protocol.initial_state(A)
    protocol._record_read(state, "k0", (3, 2))
    protocol._record_read(state, "k0", (1, 1))
    assert state.stale_reads == [("monotonic_reads", "k0", (3, 2), (1, 1))]
    assert state.last_read["k0"] == (3, 2)


def test_quorum_intersection_flags_unrepaired_committed_writes():
    protocol = _protocol(write_quorum=2)
    states = {addr: protocol.initial_state(addr) for addr in PEERS}
    coordinator = states[A]
    coordinator.store["k0"] = ((2, 1), "fresh")
    coordinator.committed["k0"] = ((2, 1), "fresh")
    # No pending-writes entry: the reconciler has forgotten the write
    # while only one replica holds it -> durability violation.
    from repro.mc import GlobalState

    gs = GlobalState.from_snapshot(states)
    found = check_all([QUORUM_INTERSECTION], gs)
    assert len(found) == 1
    assert found[0].property_name == "kvstore.quorum_intersection"

    # A pending repair entry for the same version silences the check.
    coordinator.pending_writes["k0"] = {
        "version": (2, 1), "value": "fresh", "acks": {A},
        "committed": True}
    assert check_all([QUORUM_INTERSECTION],
                     GlobalState.from_snapshot(states)) == []


def test_workload_pairs_every_put_with_a_read_of_the_same_key():
    config = KvConfig(peers=PEERS, keys=2, ops_per_node=6)
    workload = config.workload_for(A)
    assert len(workload) == 6
    for put, get in zip(workload[::2], workload[1::2]):
        assert put[0] == "put" and get[0] == "get"
        assert put[1] == get[1]


def test_search_falsifies_optimistic_mode_and_passes_quorum_mode():
    from repro.api import Experiment

    buggy = Experiment("kvstore").scenario("stale-read").run()
    assert buggy.outcome["violations"] > 0
    assert "kvstore.read_your_writes" in \
        buggy.outcome["violations_by_property"]

    fixed = (Experiment("kvstore").scenario("stale-read")
             .options(fixed=True).run())
    assert fixed.outcome["violations"] == 0


def test_property_objects_are_registered_for_the_namespace():
    from repro.properties import select_properties

    names = {p.name for p in select_properties("kvstore.*")}
    assert {p.name for p in ALL_PROPERTIES} <= names
    assert NO_VERSION == (0, 0)
