"""Unit tests for Paxos handlers, the injected bugs, and agreement."""

from repro.mc import GlobalState, check_all
from repro.runtime import Address, HandlerContext, Message, ResetEvent
from repro.systems.paxos import (
    ACCEPT,
    ALL_PROPERTIES,
    AT_MOST_ONE_VALUE_CHOSEN,
    LEARN,
    NO_ROUND,
    Paxos,
    PaxosConfig,
    PREPARE,
    PROMISE,
)

A, B, C = Address(1), Address(2), Address(3)
PEERS = (A, B, C)


def _protocol(**kwargs):
    return Paxos(PaxosConfig(peers=PEERS, **kwargs))


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def test_propose_broadcasts_prepare_to_all_peers():
    protocol = _protocol()
    state = protocol.initial_state(A)
    ctx = _ctx(A)
    protocol.handle_app(ctx, state, "propose", {"value": 0})
    prepares = [m for m in ctx.sent if m.mtype == PREPARE]
    assert {m.dst for m in prepares} == set(PEERS)
    assert state.proposing and state.current_round > NO_ROUND


def test_acceptor_promises_only_higher_rounds():
    protocol = _protocol()
    state = protocol.initial_state(B)
    ctx = _ctx(B)
    protocol.handle_message(ctx, state, Message(
        mtype=PREPARE, src=A, dst=B, payload={"round": (1, 1)}))
    assert state.promised_round == (1, 1)
    assert any(m.mtype == PROMISE for m in ctx.sent)
    ctx2 = _ctx(B)
    protocol.handle_message(ctx2, state, Message(
        mtype=PREPARE, src=C, dst=B, payload={"round": (1, 1)}))
    assert not ctx2.sent  # not strictly higher


def test_correct_leader_adopts_highest_round_value():
    protocol = _protocol()
    state = protocol.initial_state(A)
    protocol.handle_app(_ctx(A), state, "propose", {"value": 7})
    ctx = _ctx(A)
    protocol.handle_message(ctx, state, Message(
        mtype=PROMISE, src=B, dst=A,
        payload={"round": state.current_round, "accepted_round": (1, 2),
                 "accepted_value": 42}))
    protocol.handle_message(ctx, state, Message(
        mtype=PROMISE, src=C, dst=A,
        payload={"round": state.current_round, "accepted_round": NO_ROUND,
                 "accepted_value": None}))
    accepts = [m for m in ctx.sent if m.mtype == ACCEPT]
    assert accepts and all(m.get("value") == 42 for m in accepts)


def test_bug1_leader_uses_last_promise():
    protocol = _protocol(inject_bug1=True)
    state = protocol.initial_state(A)
    protocol.handle_app(_ctx(A), state, "propose", {"value": 7})
    ctx = _ctx(A)
    protocol.handle_message(ctx, state, Message(
        mtype=PROMISE, src=B, dst=A,
        payload={"round": state.current_round, "accepted_round": (1, 2),
                 "accepted_value": 42}))
    protocol.handle_message(ctx, state, Message(
        mtype=PROMISE, src=C, dst=A,
        payload={"round": state.current_round, "accepted_round": NO_ROUND,
                 "accepted_value": None}))
    accepts = [m for m in ctx.sent if m.mtype == ACCEPT]
    # The buggy leader ignores the accepted value 42 and proposes its own 7.
    assert accepts and all(m.get("value") == 7 for m in accepts)


def test_acceptor_accepts_and_broadcasts_learn():
    protocol = _protocol()
    state = protocol.initial_state(B)
    ctx = _ctx(B)
    protocol.handle_message(ctx, state, Message(
        mtype=ACCEPT, src=A, dst=B, payload={"round": (1, 1), "value": 5}))
    assert state.accepted_value == 5
    learns = [m for m in ctx.sent if m.mtype == LEARN]
    assert {m.dst for m in learns} == set(PEERS)


def test_learner_chooses_on_majority():
    protocol = _protocol()
    state = protocol.initial_state(C)
    protocol.handle_message(_ctx(C), state, Message(
        mtype=LEARN, src=A, dst=C, payload={"round": (1, 1), "value": 5}))
    assert not state.chosen_values
    protocol.handle_message(_ctx(C), state, Message(
        mtype=LEARN, src=B, dst=C, payload={"round": (1, 1), "value": 5}))
    assert state.chosen_values == {5}


def test_reset_persists_promise_without_bug2_and_loses_it_with_bug2():
    for inject, expected_round in [(False, (3, 1)), (True, NO_ROUND)]:
        protocol = _protocol(inject_bug2=inject)
        state = protocol.initial_state(B)
        protocol.handle_message(_ctx(B), state, Message(
            mtype=PREPARE, src=A, dst=B, payload={"round": (3, 1)}))
        fresh = protocol.execute(_ctx(B), state, ResetEvent(node=B))
        assert fresh.promised_round == expected_round


def test_agreement_property_detects_two_chosen_values():
    protocol = _protocol()
    sa = protocol.initial_state(A)
    sa.chosen_values = {0}
    sb = protocol.initial_state(B)
    sb.chosen_values = {1}
    gs = GlobalState.from_snapshot({A: sa, B: sb})
    assert not AT_MOST_ONE_VALUE_CHOSEN.holds(gs)
    sb.chosen_values = {0}
    assert AT_MOST_ONE_VALUE_CHOSEN.holds(GlobalState.from_snapshot({A: sa, B: sb}))


def test_all_properties_hold_on_agreeing_system():
    protocol = _protocol()
    states = {}
    for addr in PEERS:
        state = protocol.initial_state(addr)
        state.chosen_values = {0}
        state.accepted_value = 0
        state.accepted_round = (1, 1)
        state.promised_round = (1, 1)
        states[addr] = state
    assert not check_all(ALL_PROPERTIES, GlobalState.from_snapshot(states))
