"""Unit tests for Bullet': diff/request logic and the shadow-file-map bug."""

from repro.mc import GlobalState
from repro.runtime import Address, HandlerContext, Message
from repro.systems.bulletprime import (
    BLOCK,
    BulletConfig,
    BulletPrime,
    DIFF,
    FILE_MAP_CONSISTENCY,
    REQUEST_BLOCK,
    build_mesh,
)
from repro.systems.bulletprime.protocol import DIFF_TIMER, DRAIN_TIMER, REQUEST_TIMER

SRC, RCV = Address(1), Address(2)


def _protocol(**kwargs):
    defaults = dict(source=SRC, mesh={SRC: (RCV,), RCV: (SRC,)}, block_count=4,
                    send_queue_capacity=200)
    defaults.update(kwargs)
    return BulletPrime(BulletConfig(**defaults))


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def test_source_starts_with_all_blocks_pending_announcement():
    protocol = _protocol()
    state = protocol.initial_state(SRC)
    assert state.is_source and len(state.have) == 4
    assert state.shadow[RCV] == {0, 1, 2, 3}
    assert state.told(RCV) == set()


def test_diff_timer_announces_blocks_and_clears_shadow():
    protocol = _protocol()
    state = protocol.initial_state(SRC)
    ctx = _ctx(SRC)
    protocol.handle_timer(ctx, state, DIFF_TIMER)
    diffs = [m for m in ctx.sent if m.mtype == DIFF]
    assert diffs and set(diffs[0].get("blocks")) == {0, 1, 2, 3}
    assert state.shadow[RCV] == set()
    assert state.told(RCV) == {0, 1, 2, 3}


def test_refused_diff_clears_shadow_with_bug_and_keeps_it_with_fix():
    for fix, expected_shadow in [(False, set()), (True, {0, 1, 2, 3})]:
        protocol = _protocol(fix_shadow_map=fix, send_queue_capacity=40)
        state = protocol.initial_state(SRC)
        state.queue_bytes[RCV] = 39  # transport nearly full: diff refused
        ctx = _ctx(SRC)
        protocol.handle_timer(ctx, state, DIFF_TIMER)
        assert not [m for m in ctx.sent if m.mtype == DIFF]
        assert state.shadow[RCV] == expected_shadow


def test_file_map_property_flags_lost_announcements():
    protocol = _protocol(fix_shadow_map=False, send_queue_capacity=40)
    sender = protocol.initial_state(SRC)
    sender.queue_bytes[RCV] = 39
    protocol.handle_timer(_ctx(SRC), sender, DIFF_TIMER)
    receiver = protocol.initial_state(RCV)
    gs = GlobalState.from_snapshot({SRC: sender, RCV: receiver})
    assert not FILE_MAP_CONSISTENCY.holds(gs)


def test_file_map_property_tolerates_in_flight_diffs():
    protocol = _protocol()
    sender = protocol.initial_state(SRC)
    protocol.handle_timer(_ctx(SRC), sender, DIFF_TIMER)
    receiver = protocol.initial_state(RCV)
    diff = Message(mtype=DIFF, src=SRC, dst=RCV, payload={"blocks": (0, 1, 2, 3)})
    gs = GlobalState.from_snapshot({SRC: sender, RCV: receiver}, inflight=[diff])
    assert FILE_MAP_CONSISTENCY.holds(gs)


def test_receiver_requests_and_receives_blocks():
    protocol = _protocol()
    receiver = protocol.initial_state(RCV)
    protocol.handle_message(_ctx(RCV), receiver, Message(
        mtype=DIFF, src=SRC, dst=RCV, payload={"blocks": (0, 1)}))
    assert receiver.view[SRC] == {0, 1}
    ctx = _ctx(RCV)
    protocol.handle_timer(ctx, receiver, REQUEST_TIMER)
    requests = [m for m in ctx.sent if m.mtype == REQUEST_BLOCK]
    assert requests and requests[0].dst == SRC
    block = requests[0].get("block")
    protocol.handle_message(_ctx(RCV), receiver, Message(
        mtype=BLOCK, src=SRC, dst=RCV, payload={"block": block}))
    assert block in receiver.have


def test_sender_serves_requested_blocks_and_charges_queue():
    protocol = _protocol()
    sender = protocol.initial_state(SRC)
    ctx = _ctx(SRC)
    protocol.handle_message(ctx, sender, Message(
        mtype=REQUEST_BLOCK, src=RCV, dst=SRC, payload={"block": 2}))
    assert any(m.mtype == BLOCK and m.get("block") == 2 for m in ctx.sent)
    assert sender.queue_bytes[RCV] > 0


def test_drain_timer_reduces_queue():
    protocol = _protocol()
    sender = protocol.initial_state(SRC)
    sender.queue_bytes[RCV] = 100000
    protocol.handle_timer(_ctx(SRC), sender, DRAIN_TIMER)
    assert sender.queue_bytes[RCV] < 100000


def test_completion_recorded_with_upcall():
    protocol = _protocol(block_count=1)
    receiver = protocol.initial_state(RCV)
    ctx = HandlerContext(self_addr=RCV, now=42.0)
    protocol.handle_message(ctx, receiver, Message(
        mtype=BLOCK, src=SRC, dst=RCV, payload={"block": 0}))
    assert receiver.complete and receiver.completed_at == 42.0
    assert ctx.upcalls and ctx.upcalls[0][0] == "download_complete"


def test_build_mesh_is_symmetric_and_connected_degree():
    from repro.runtime import make_addresses
    addrs = make_addresses(10)
    mesh = build_mesh(addrs, degree=3, seed=1)
    assert set(mesh) == set(addrs)
    for node, peers in mesh.items():
        assert node not in peers
        for peer in peers:
            assert node in mesh[peer]
    assert all(len(peers) >= 1 for peers in mesh.values())
