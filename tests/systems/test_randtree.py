"""Unit tests for the RandTree protocol handlers and properties."""

from repro.mc import GlobalState, check_all
from repro.runtime import Address, HandlerContext, Message
from repro.systems.randtree import (
    ALL_PROPERTIES,
    CHILDREN_SIBLINGS_DISJOINT,
    JOIN,
    JOIN_REPLY,
    NEW_ROOT,
    RECOVERY_TIMER,
    ROOT_HAS_NO_SIBLINGS,
    RandTree,
    RandTreeConfig,
    UPDATE_SIBLING,
)


def _ctx(addr):
    return HandlerContext(self_addr=addr)


def _protocol(**kwargs):
    defaults = dict(bootstrap=(Address(1),), max_children=2)
    defaults.update(kwargs)
    return RandTree(RandTreeConfig(**defaults))


def test_bootstrap_node_joins_itself_as_root_without_timer():
    protocol = _protocol()
    addr = Address(1)
    state = protocol.initial_state(addr)
    ctx = _ctx(addr)
    protocol.handle_app(ctx, state, "join", {})
    assert state.is_root()
    # The bug: no recovery timer was armed.
    assert not any(op.name == RECOVERY_TIMER for op in ctx.timer_ops)


def test_fixed_bootstrap_join_arms_recovery_timer():
    protocol = _protocol(fix_recovery_timer=True)
    addr = Address(1)
    state = protocol.initial_state(addr)
    ctx = _ctx(addr)
    protocol.handle_app(ctx, state, "join", {})
    assert any(op.name == RECOVERY_TIMER and op.action == "set"
               for op in ctx.timer_ops)


def test_non_bootstrap_node_sends_join():
    protocol = _protocol()
    addr = Address(5)
    state = protocol.initial_state(addr)
    ctx = _ctx(addr)
    protocol.handle_app(ctx, state, "join", {})
    assert any(m.mtype == JOIN and m.dst == Address(1) for m in ctx.sent)


def test_root_accepts_join_and_notifies_siblings():
    protocol = _protocol()
    root = Address(1)
    state = protocol.initial_state(root)
    state.joined = True
    state.root = root
    state.children = {Address(9)}
    ctx = _ctx(root)
    join = Message(mtype=JOIN, src=Address(13), dst=root,
                   payload={"origin": Address(13)})
    protocol.handle_message(ctx, state, join)
    assert Address(13) in state.children
    assert any(m.mtype == JOIN_REPLY and m.dst == Address(13) for m in ctx.sent)
    assert any(m.mtype == UPDATE_SIBLING and m.dst == Address(9) for m in ctx.sent)


def test_root_at_capacity_delegates_join():
    protocol = _protocol(max_children=1)
    root = Address(1)
    state = protocol.initial_state(root)
    state.joined = True
    state.root = root
    state.children = {Address(9)}
    ctx = _ctx(root)
    protocol.handle_message(ctx, state, Message(
        mtype=JOIN, src=Address(13), dst=root, payload={"origin": Address(13)}))
    assert Address(13) not in state.children
    assert any(m.mtype == JOIN and m.dst == Address(9) for m in ctx.sent)


def test_join_forwarding_bounded_by_hop_count():
    protocol = _protocol()
    node = Address(7)
    state = protocol.initial_state(node)
    state.joined = True
    state.root = Address(3)
    ctx = _ctx(node)
    protocol.handle_message(ctx, state, Message(
        mtype=JOIN, src=Address(13), dst=node,
        payload={"origin": Address(13), "hops": 20}))
    assert not ctx.sent


def test_update_sibling_bug_keeps_child_entry():
    protocol = _protocol()
    node = Address(9)
    state = protocol.initial_state(node)
    state.joined = True
    state.root = Address(1)
    state.parent = Address(1)
    state.children = {Address(13)}
    ctx = _ctx(node)
    protocol.handle_message(ctx, state, Message(
        mtype=UPDATE_SIBLING, src=Address(1), dst=node,
        payload={"sibling": Address(13)}))
    assert Address(13) in state.children and Address(13) in state.siblings
    gs = GlobalState.from_snapshot({node: state})
    assert not CHILDREN_SIBLINGS_DISJOINT.holds(gs)


def test_update_sibling_fix_removes_child_entry():
    protocol = _protocol(fix_update_sibling=True)
    node = Address(9)
    state = protocol.initial_state(node)
    state.children = {Address(13)}
    protocol.handle_message(_ctx(node), state, Message(
        mtype=UPDATE_SIBLING, src=Address(1), dst=node,
        payload={"sibling": Address(13)}))
    assert Address(13) not in state.children
    assert Address(13) in state.siblings


def test_new_root_bug_keeps_stale_child_entry():
    protocol = _protocol()
    node = Address(69)
    state = protocol.initial_state(node)
    state.joined = True
    state.root = Address(61)
    state.parent = Address(61)
    state.children = {Address(9)}
    protocol.handle_message(_ctx(node), state, Message(
        mtype=NEW_ROOT, src=Address(61), dst=node, payload={"root": Address(9)}))
    assert state.root == Address(9)
    assert Address(9) in state.children  # the bug

    fixed = RandTree(RandTreeConfig(fix_new_root_check=True))
    state2 = fixed.initial_state(node)
    state2.children = {Address(9)}
    fixed.handle_message(_ctx(node), state2, Message(
        mtype=NEW_ROOT, src=Address(61), dst=node, payload={"root": Address(9)}))
    assert Address(9) not in state2.children


def test_connection_error_promotion_keeps_stale_siblings():
    protocol = _protocol()
    node = Address(5)
    state = protocol.initial_state(node)
    state.joined = True
    state.root = Address(1)
    state.parent = Address(1)
    state.siblings = {Address(7)}
    protocol.handle_connection_error(_ctx(node), state, Address(1))
    assert state.is_root()
    assert state.siblings == {Address(7)}  # the bug
    gs = GlobalState.from_snapshot({node: state})
    assert not ROOT_HAS_NO_SIBLINGS.holds(gs)

    fixed = RandTree(RandTreeConfig(fix_clear_siblings=True))
    state2 = fixed.initial_state(node)
    state2.joined = True
    state2.root = Address(1)
    state2.parent = Address(1)
    state2.siblings = {Address(7)}
    fixed.handle_connection_error(_ctx(node), state2, Address(1))
    assert state2.siblings == set()


def test_join_reply_sets_topology_and_arms_recovery_timer():
    protocol = _protocol()
    node = Address(13)
    state = protocol.initial_state(node)
    ctx = _ctx(node)
    protocol.handle_message(ctx, state, Message(
        mtype=JOIN_REPLY, src=Address(1), dst=node,
        payload={"root": Address(1), "siblings": [Address(9)]}))
    assert state.joined and state.parent == Address(1) and state.root == Address(1)
    assert state.siblings == {Address(9)}
    assert any(op.name == RECOVERY_TIMER for op in ctx.timer_ops)


def test_neighbors_cover_tree_pointers():
    protocol = _protocol()
    state = protocol.initial_state(Address(9))
    state.root = Address(1)
    state.parent = Address(1)
    state.children = {Address(13)}
    state.siblings = {Address(5)}
    assert set(protocol.neighbors(state)) == {Address(1), Address(5), Address(13)}


def test_properties_hold_on_clean_tree():
    protocol = _protocol()
    root = protocol.initial_state(Address(1))
    root.joined = True
    root.root = Address(1)
    root.children = {Address(9)}
    root.refresh_peers()
    child = protocol.initial_state(Address(9))
    child.joined = True
    child.root = Address(1)
    child.parent = Address(1)
    child.refresh_peers()
    gs = GlobalState.from_snapshot({Address(1): root, Address(9): child},
                                   timers={Address(1): [RECOVERY_TIMER],
                                           Address(9): [RECOVERY_TIMER]})
    assert not check_all(ALL_PROPERTIES, gs)
