"""Shared pytest fixtures for the CrystalBall reproduction test suite."""

from __future__ import annotations

import pytest

from repro.mc import SearchBudget, TransitionConfig, TransitionSystem
from repro.runtime import make_addresses
from repro.systems.randtree import Figure2Scenario


@pytest.fixture
def addresses():
    return make_addresses(4, start=1)


@pytest.fixture
def figure2():
    return Figure2Scenario.build()


@pytest.fixture
def figure2_system(figure2):
    return TransitionSystem(
        figure2.protocol,
        TransitionConfig(enable_resets=True, max_resets_per_node=1),
    )


@pytest.fixture
def small_budget():
    return SearchBudget(max_states=2000, max_depth=8)
