"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis import empirical_cdf, median, percentile
from repro.core import Checkpoint, CheckpointStore
from repro.mc import GlobalState
from repro.runtime import Address
from repro.runtime.serialization import freeze, stable_hash
from repro.systems.chord import in_interval, ring_distance
from repro.systems.paxos import Paxos, PaxosConfig
from repro.systems.randtree import RandTree, RandTreeConfig


json_like = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=12,
)


@given(json_like)
def test_freeze_is_deterministic_and_hashable(value):
    assert freeze(value) == freeze(value)
    hash(freeze(value))
    assert stable_hash(value) == stable_hash(value)


@given(st.dictionaries(st.text(max_size=4), st.integers(), max_size=6))
def test_freeze_dict_ignores_insertion_order(d):
    items = list(d.items())
    reordered = dict(reversed(items))
    assert freeze(d) == freeze(reordered)


@given(st.integers(0, 65535), st.integers(0, 65535))
def test_ring_distance_antisymmetry(a, b):
    space = 1 << 16
    assert 0 <= ring_distance(a, b) < space
    if a != b:
        assert ring_distance(a, b) + ring_distance(b, a) == space


@given(st.integers(0, 65535), st.integers(0, 65535), st.integers(0, 65535))
def test_in_interval_excludes_endpoints(value, low, high):
    if value in (low, high):
        assert not in_interval(value, low, high)


@given(st.lists(st.integers(1, 100), min_size=1, max_size=30, unique=True))
def test_checkpoint_store_keeps_newest_under_quota(checkpoint_numbers):
    protocol = RandTree(RandTreeConfig())
    store = CheckpointStore(quota=5)
    addr = Address(1)
    for cn in checkpoint_numbers:
        store.record(Checkpoint(node=addr, checkpoint_number=cn,
                                state=protocol.initial_state(addr)))
    assert len(store) <= 5
    kept = [c.checkpoint_number for c in store.checkpoints]
    assert kept == sorted(kept)
    assert store.latest().checkpoint_number == max(checkpoint_numbers)
    # respond() never returns a checkpoint older than requested.
    for requested in checkpoint_numbers:
        answer = store.respond(requested)
        if answer is not None:
            assert answer.checkpoint_number >= requested


@given(st.sets(st.integers(1, 40), min_size=1, max_size=8),
       st.sets(st.integers(1, 40), min_size=0, max_size=8))
def test_randtree_state_hash_reflects_children_and_siblings(children, siblings):
    protocol = RandTree(RandTreeConfig())
    addr = Address(100)
    s1 = protocol.initial_state(addr)
    s1.children = {Address(i) for i in children}
    s1.siblings = {Address(i) for i in siblings}
    s2 = protocol.initial_state(addr)
    s2.children = {Address(i) for i in children}
    s2.siblings = {Address(i) for i in siblings}
    assert s1.state_hash() == s2.state_hash()
    gs1 = GlobalState.from_snapshot({addr: s1})
    gs2 = GlobalState.from_snapshot({addr: s2})
    assert gs1.state_hash() == gs2.state_hash()


@given(st.lists(st.integers(0, 5), min_size=1, max_size=6),
       st.lists(st.integers(0, 5), min_size=1, max_size=6))
@settings(max_examples=30)
def test_paxos_learner_chooses_at_most_one_value_per_majority(learns_a, learns_b):
    protocol = Paxos(PaxosConfig(peers=(Address(1), Address(2), Address(3))))
    state = protocol.initial_state(Address(1))
    for value in learns_a:
        state.record_learn(value, Address(2))
    for value in learns_b:
        state.record_learn(value, Address(3))
    # A value is chosen only with a majority (2 of 3) of distinct acceptors.
    for value in state.chosen_values:
        assert len(state.learns[value]) >= 2


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_cdf_and_percentile_invariants(values):
    cdf = empirical_cdf(values)
    fractions = [p.fraction for p in cdf]
    assert fractions == sorted(fractions)
    assert abs(fractions[-1] - 1.0) < 1e-9
    assert min(values) <= median(values) <= max(values)
    assert percentile(values, 0.0) == min(values)
    assert percentile(values, 1.0) == max(values)
