"""Tests for the open-loop workload driver against a live simulator."""

from dataclasses import dataclass, field

from repro.runtime import (
    Address,
    NetworkModel,
    NodeState,
    Protocol,
    Simulator,
    Transport,
    make_addresses,
)
from repro.workload import OpenLoopDriver, TrafficSpec, WorkloadSpec


@dataclass
class SinkState(NodeState):
    addr: Address = None
    requests: list = field(default_factory=list)


class SinkProtocol(Protocol):
    """Accepts 'work' app calls; each one echoes a Done message to a peer."""

    name = "Sink"

    def initial_state(self, addr):
        return SinkState(addr=addr)

    def handle_message(self, ctx, state, message):
        pass

    def handle_app(self, ctx, state, call, payload):
        if call == "work":
            state.requests.append(payload["key"])
            peer = payload.get("peer")
            if peer is not None:
                ctx.send(peer, "Done", {}, transport=Transport.UDP)


def _spec(with_completion=True, **traffic):
    def make_request(rng, key, addresses):
        target = addresses[int(rng.random() * len(addresses))
                           % len(addresses)]
        peer = addresses[(addresses.index(target) + 1) % len(addresses)]
        return target, "work", {"key": key, "peer": peer}

    return WorkloadSpec(
        name="work", description="test stream", make_request=make_request,
        traffic=TrafficSpec(**traffic),
        completion_mtypes=(frozenset({"Done"}) if with_completion
                           else frozenset()))


def _sim(n=4, seed=1):
    sim = Simulator(SinkProtocol, NetworkModel(jitter=0.0), seed=seed)
    addrs = make_addresses(n)
    for a in addrs:
        sim.add_node(a)
    return sim, addrs


def test_open_loop_rate_is_honored():
    sim, addrs = _sim()
    driver = OpenLoopDriver(_spec(rate=100.0, burst=10), addrs,
                            seed=3).install(sim)
    sim.run(until=10.0)
    # 100 req/s for ~10s, bursts of 10 starting at t=0.1.
    assert driver.requests_injected == 1000
    total = sum(len(n.state.requests) for n in sim.nodes.values())
    assert total == 1000


def test_start_offset_and_duration_window():
    sim, addrs = _sim()
    driver = OpenLoopDriver(
        _spec(rate=100.0, burst=10, start=5.0, duration=2.0),
        addrs, seed=3).install(sim)
    sim.run(until=20.0)
    assert driver.requests_injected == 200  # only the 2s window


def test_completions_counted_via_observer():
    sim, addrs = _sim()
    driver = OpenLoopDriver(_spec(rate=50.0, burst=5), addrs,
                            seed=3).install(sim)
    sim.run(until=12.0)
    assert driver.requests_completed > 0
    assert driver.requests_completed <= driver.requests_injected


def test_dead_targets_are_skipped_not_crashed():
    sim, addrs = _sim()
    for addr in addrs[1:]:
        sim.crash_node(addr)
    driver = OpenLoopDriver(_spec(rate=100.0, burst=10), addrs,
                            seed=3).install(sim)
    sim.run(until=5.0)
    assert driver.requests_skipped > 0
    assert driver.requests_injected + driver.requests_skipped == 500


def test_stream_is_seed_deterministic():
    def run(seed):
        sim, addrs = _sim(seed=1)
        OpenLoopDriver(_spec(rate=50.0, burst=5), addrs,
                       seed=seed).install(sim)
        sim.run(until=8.0)
        return [tuple(n.state.requests) for n in sim.nodes.values()]

    assert run(3) == run(3)
    assert run(3) != run(4)  # the workload seed shifts the stream


def test_report_shape():
    sim, addrs = _sim()
    driver = OpenLoopDriver(_spec(rate=50.0, burst=5), addrs,
                            seed=0).install(sim)
    sim.run(until=4.0)
    report = driver.report()
    assert report["name"] == "work"
    assert report["requests_injected"] > 0
    assert report["traffic"]["rate"] == 50.0
