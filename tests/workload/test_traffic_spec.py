"""Tests for TrafficSpec validation, KeySampler distributions and
WorkloadSpec overrides."""

import random
from collections import Counter

import pytest

from repro.runtime import make_addresses
from repro.workload import KEY_DISTRIBUTIONS, KeySampler, TrafficSpec, WorkloadSpec


def test_traffic_defaults_and_interval():
    traffic = TrafficSpec(rate=200.0, burst=20)
    assert traffic.interval == 0.1
    assert traffic.key_distribution in KEY_DISTRIBUTIONS


@pytest.mark.parametrize("bad", [
    {"rate": 0}, {"rate": -5.0}, {"burst": 0}, {"keys": 0},
    {"key_distribution": "pareto"},
])
def test_traffic_validation(bad):
    with pytest.raises(ValueError):
        TrafficSpec(**bad)


def test_with_overrides_applies_only_non_none():
    traffic = TrafficSpec(rate=100.0, burst=10, keys=64)
    tweaked = traffic.with_overrides(rate=500.0, burst=None, start=30.0)
    assert (tweaked.rate, tweaked.burst, tweaked.keys, tweaked.start) \
        == (500.0, 10, 64, 30.0)
    assert traffic.with_overrides() is traffic


def test_to_dict_is_json_shaped():
    data = TrafficSpec(rate=50.0, duration=120.0).to_dict()
    assert data["rate"] == 50.0 and data["duration"] == 120.0


def _samples(distribution, n=4000, keys=100, seed=7, **kwargs):
    sampler = KeySampler(TrafficSpec(key_distribution=distribution,
                                     keys=keys, **kwargs))
    rng = random.Random(seed)
    return [sampler.sample(rng) for _ in range(n)]


def test_uniform_covers_key_space():
    counts = Counter(_samples("uniform"))
    assert set(counts) == set(range(100))
    assert max(counts.values()) < 4 * min(counts.values())


def test_zipf_is_head_heavy():
    counts = Counter(_samples("zipf", zipf_s=1.2))
    head = sum(counts[k] for k in range(10))
    assert head > 0.4 * 4000
    assert counts[0] > counts.get(50, 0)


def test_hotspot_concentrates_on_hot_prefix():
    counts = Counter(_samples("hotspot", hotspot_fraction=0.1))
    hot = sum(counts[k] for k in range(10))
    assert 0.8 * 4000 < hot < 4000  # ~90% to the hot 10%


def test_sequential_round_robins_without_rng():
    sampler = KeySampler(TrafficSpec(key_distribution="sequential", keys=3))
    rng = random.Random(0)
    before = rng.getstate()
    assert [sampler.sample(rng) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]
    assert rng.getstate() == before  # zero draws consumed


def test_distributions_consume_exactly_one_draw_per_key():
    # Changing the distribution must not shift the request factories' RNG
    # stream, so every non-sequential distribution draws exactly once.
    for distribution in ("uniform", "zipf", "hotspot"):
        sampler = KeySampler(TrafficSpec(key_distribution=distribution,
                                         keys=32))
        rng = random.Random(3)
        shadow = random.Random(3)
        sampler.sample(rng)
        shadow.random()
        assert rng.getstate() == shadow.getstate(), distribution


def test_workload_spec_with_traffic():
    def factory(rng, key, addresses):
        return addresses[0], "noop", {"key": key}

    spec = WorkloadSpec(name="w", description="d", make_request=factory,
                        traffic=TrafficSpec(rate=10.0),
                        completion_mtypes=frozenset({"Done"}))
    faster = spec.with_traffic(rate=100.0)
    assert faster.traffic.rate == 100.0
    assert faster.name == "w" and faster.make_request is factory
    assert spec.traffic.rate == 10.0  # frozen original untouched
    target, call, payload = faster.make_request(
        random.Random(0), 5, make_addresses(2))
    assert call == "noop" and payload == {"key": 5}
