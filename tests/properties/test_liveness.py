"""Bounded-liveness operators: eventually / leads_to tracker semantics."""

import pytest

from repro.mc import GlobalState
from repro.properties import eventually, leads_to


def _state():
    return GlobalState(nodes={})


def test_eventually_satisfied_within_window_is_silent():
    flag = {"ok": False}
    prop = eventually("t.ev", lambda gs: flag["ok"], within=10.0)
    tracker = prop.make_tracker()
    assert tracker.observe(_state(), 0.0) == []
    flag["ok"] = True
    assert tracker.observe(_state(), 5.0) == []
    # Later deadline passages stay silent: the obligation is discharged.
    flag["ok"] = False
    assert tracker.observe(_state(), 50.0) == []
    assert tracker.finalize(100.0) == []


def test_eventually_reports_once_after_deadline():
    prop = eventually("t.ev", lambda gs: False, within=10.0)
    tracker = prop.make_tracker()
    assert tracker.observe(_state(), 2.0) == []  # window opens at 2.0
    assert tracker.observe(_state(), 12.0) == []  # deadline is 12.0, not past
    failures = tracker.observe(_state(), 12.5)
    assert len(failures) == 1
    node, detail = failures[0]
    assert node is None and "did not hold within 10" in detail
    # Only one report per run.
    assert tracker.observe(_state(), 20.0) == []
    assert tracker.finalize(30.0) == []


def test_eventually_pred_true_only_after_deadline_still_violates():
    """The first post-deadline observation must report expiry even when
    the predicate happens to hold at that observation — it did not hold
    *within* the window."""
    flag = {"ok": False}
    prop = eventually("t.ev", lambda gs: flag["ok"], within=10.0)
    tracker = prop.make_tracker()
    assert tracker.observe(_state(), 5.0) == []  # window opens, deadline 15
    flag["ok"] = True
    failures = tracker.observe(_state(), 20.0)
    assert len(failures) == 1
    assert tracker.finalize(30.0) == []


def test_eventually_finalize_flushes_pending_deadline():
    prop = eventually("t.ev", lambda gs: False, within=10.0)
    tracker = prop.make_tracker()
    tracker.observe(_state(), 0.0)
    assert len(tracker.finalize(11.0)) == 1


def test_leads_to_goal_within_window_is_silent():
    flags = {"trigger": False, "goal": False}
    prop = leads_to("t.lt", lambda gs: flags["trigger"],
                    lambda gs: flags["goal"], within=10.0)
    tracker = prop.make_tracker()
    assert tracker.observe(_state(), 0.0) == []
    flags["trigger"] = True
    assert tracker.observe(_state(), 1.0) == []  # obligation opens
    flags["goal"] = True
    assert tracker.observe(_state(), 5.0) == []  # discharged
    assert tracker.finalize(100.0) == []


def test_leads_to_expires_and_rearms_on_next_edge():
    flags = {"trigger": False, "goal": False}
    prop = leads_to("t.lt", lambda gs: flags["trigger"],
                    lambda gs: flags["goal"], within=10.0)
    tracker = prop.make_tracker()
    flags["trigger"] = True
    tracker.observe(_state(), 0.0)  # opens, deadline 10.0
    flags["trigger"] = False
    assert tracker.observe(_state(), 5.0) == []
    failures = tracker.observe(_state(), 11.0)
    assert len(failures) == 1
    assert "within 10" in failures[0][1]
    # Re-arms on the next trigger edge only.
    assert tracker.observe(_state(), 12.0) == []
    flags["trigger"] = True
    assert tracker.observe(_state(), 13.0) == []  # new obligation
    failures = tracker.observe(_state(), 24.0)
    assert len(failures) == 1


def test_leads_to_level_triggered_trigger_does_not_stack_obligations():
    flags = {"trigger": True, "goal": False}
    prop = leads_to("t.lt", lambda gs: flags["trigger"],
                    lambda gs: flags["goal"], within=10.0)
    tracker = prop.make_tracker()
    tracker.observe(_state(), 0.0)
    tracker.observe(_state(), 1.0)  # trigger still true: same obligation
    failures = tracker.observe(_state(), 11.0)
    assert len(failures) == 1
    assert tracker.finalize(50.0) == []


def test_leads_to_finalize_flushes_open_obligation():
    prop = leads_to("t.lt", lambda gs: True, lambda gs: False, within=10.0)
    tracker = prop.make_tracker()
    tracker.observe(_state(), 0.0)
    assert tracker.finalize(10.5) and tracker.finalize(10.5) == []


def test_liveness_metadata():
    prop = eventually("t.meta", lambda gs: True, within=30.0,
                      description="meta test")
    assert prop.kind == "liveness"
    assert not prop.state_checkable
    assert "liveness" in prop.tags
    assert prop.describe()["within"] == 30.0
    with pytest.raises(ValueError, match="must be positive"):
        eventually("t.bad", lambda gs: True, within=0.0)
