"""Structured ViolationRecord and the process-stable state digest."""

import json

from repro.mc import GlobalState
from repro.properties import ViolationRecord, state_digest
from repro.runtime import Address
from repro.systems.randtree import RandTree, RandTreeConfig


def _gs(root=None):
    protocol = RandTree(RandTreeConfig())
    addr = Address(1)
    state = protocol.initial_state(addr)
    if root is not None:
        state.root = root
    return GlobalState.from_snapshot({addr: state})


def test_state_digest_is_stable_for_equal_states_and_differs_otherwise():
    assert state_digest(_gs()) == state_digest(_gs())
    assert state_digest(_gs()) != state_digest(_gs(root=Address(7)))
    assert len(state_digest(_gs())) == 16


def test_state_digest_does_not_depend_on_python_hash_seed():
    # sha1 over the canonical signature repr, not builtin hash(): the
    # digest must agree across worker processes with different hash seeds.
    import pathlib
    import subprocess
    import sys

    repo_root = str(pathlib.Path(__file__).resolve().parents[2])
    script = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.properties import state_digest\n"
        "from repro.mc import GlobalState\n"
        "from repro.runtime import Address\n"
        "from repro.systems.randtree import RandTree, RandTreeConfig\n"
        "p = RandTree(RandTreeConfig()); a = Address(1)\n"
        "print(state_digest(GlobalState.from_snapshot({a: p.initial_state(a)})))\n"
    )
    digests = set()
    for seed in ("0", "12345"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd=repo_root, check=True)
        digests.add(out.stdout.strip())
    assert len(digests) == 1, digests


def test_record_round_trips_through_json():
    record = ViolationRecord(
        property_id="randtree.no_self_reference", severity="error",
        node="1.0.0.1", detail="node lists itself as a child",
        sim_time=12.5, episode=3, state_digest="ab" * 8, kind="safety")
    payload = json.loads(json.dumps(record.to_dict()))
    assert ViolationRecord.from_dict(payload) == record


def test_record_defaults_tolerate_sparse_dicts():
    record = ViolationRecord.from_dict({"property_id": "x.y"})
    assert record.severity == "error"
    assert record.node is None
    assert record.kind == "safety"
    assert record.episode == 0
