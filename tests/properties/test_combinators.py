"""Property combinators: node/pairwise scoping, severities, filtering."""

import pytest

from repro.mc import GlobalState
from repro.properties import (
    NodeScopedProperty,
    SafetyProperty,
    check_all,
    eventually,
    node_property,
    pairwise_property,
    safety_properties,
)
from repro.runtime import Address
from repro.systems.randtree import RandTree, RandTreeConfig


def _tree_state(count=2, **overrides):
    protocol = RandTree(RandTreeConfig())
    addrs = [Address(i) for i in range(1, count + 1)]
    states = {}
    for addr in addrs:
        state = protocol.initial_state(addr)
        for key, value in overrides.items():
            setattr(state, key, value)
        states[addr] = state
    return addrs, GlobalState.from_snapshot(states)


def test_node_property_is_node_scoped_by_default():
    prop = node_property("t.local", lambda a, s, t, gs: [])
    assert isinstance(prop, NodeScopedProperty)
    assert prop.scope == "node"
    assert node_property("t.cross", lambda a, s, t, gs: [],
                         local_only=False).scope == "global"


def test_violations_at_checks_a_single_node():
    flagged = []

    def check(addr, state, timers, gs):
        flagged.append(addr)
        yield "always bad"

    prop = node_property("t.single", check)
    addrs, gs = _tree_state(count=3)
    flagged.clear()
    violations = prop.violations_at(gs, addrs[1])
    assert flagged == [addrs[1]]
    assert [v.node for v in violations] == [addrs[1]]
    # A node outside the state yields nothing.
    assert prop.violations_at(gs, Address(99)) == []


def test_pairwise_property_enumerates_ordered_pairs_deterministically():
    seen = []

    def check(addr_a, local_a, addr_b, local_b, gs):
        seen.append((addr_a, addr_b))
        if addr_a < addr_b:
            yield f"pair {addr_a}->{addr_b}"

    prop = pairwise_property("t.pairs", check)
    addrs, gs = _tree_state(count=3)
    violations = prop.violations(gs)
    assert len(seen) == 6  # 3 * 2 ordered pairs
    assert len(violations) == 3
    assert all(v.node is not None for v in violations)
    # Deterministic order: sorted by first address.
    assert [v.node for v in violations] == sorted(v.node for v in violations)


def test_unknown_severity_rejected():
    with pytest.raises(ValueError, match="unknown severity"):
        SafetyProperty("t.bad", lambda gs: [], severity="catastrophic")


def test_default_severity_and_tags():
    prop = SafetyProperty("t.defaults", lambda gs: [])
    assert prop.severity == "error"
    assert prop.tags == frozenset()
    tagged = node_property("t.tagged", lambda a, s, t, gs: [],
                           severity="warning", tags=("x", "y"))
    assert tagged.severity == "warning"
    assert tagged.tags == frozenset({"x", "y"})


def test_check_all_and_safety_properties_skip_liveness():
    live = eventually("t.liveness", lambda gs: True, within=10.0)
    bad = SafetyProperty("t.always", lambda gs: [(None, "boom")])
    _, gs = _tree_state()
    mixed = [live, bad]
    assert safety_properties(mixed) == [bad]
    found = check_all(mixed, gs)
    assert [v.property_name for v in found] == ["t.always"]


def test_check_all_with_empty_property_set():
    _, gs = _tree_state()
    assert check_all([], gs) == []


def test_describe_carries_the_selectable_surface():
    prop = node_property("t.desc", lambda a, s, t, gs: [], "described",
                         severity="critical", tags=("k",))
    info = prop.describe()
    assert info == {"id": "t.desc", "kind": "safety", "severity": "critical",
                    "tags": ["k"], "description": "described",
                    "scope": "node"}


def test_mixed_state_types_do_not_crash_any_bundled_property():
    from repro.systems.bulletprime.properties import (
        ALL_PROPERTIES as BULLET_PROPERTIES,
    )
    from repro.systems.chord import Chord, ChordConfig
    from repro.systems.chord.properties import ALL_PROPERTIES as CHORD_PROPERTIES
    from repro.systems.paxos.properties import ALL_PROPERTIES as PAXOS_PROPERTIES
    from repro.systems.randtree.properties import (
        ALL_PROPERTIES as RANDTREE_PROPERTIES,
    )

    tree = RandTree(RandTreeConfig())
    ring = Chord(ChordConfig(bootstrap=(Address(2),)))
    gs = GlobalState.from_snapshot({
        Address(1): tree.initial_state(Address(1)),
        Address(2): ring.initial_state(Address(2)),
    })
    every = (RANDTREE_PROPERTIES + CHORD_PROPERTIES + PAXOS_PROPERTIES
             + BULLET_PROPERTIES)
    # Every bundled property must guard against foreign state types: a
    # cross-system selection never crashes, it just finds nothing foreign.
    violations = check_all(every, gs)
    assert all("." in v.property_name for v in violations)
