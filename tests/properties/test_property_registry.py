"""Global property registry: registration, lookup, pattern selection."""

import pytest

from repro.properties import (
    SafetyProperty,
    all_properties,
    get_property,
    register_property,
    resolve_properties,
    select_properties,
    unregister_property,
)


def _prop(name):
    return SafetyProperty(name, lambda gs: [], f"test property {name}")


def test_builtin_systems_self_register_their_namespaces():
    names = {prop.name for prop in all_properties()}
    for namespace in ("randtree", "chord", "paxos", "bullet"):
        assert any(name.startswith(namespace + ".") for name in names), (
            f"no {namespace}.* properties registered")


def test_namespace_selection_preserves_check_order():
    from repro.systems.randtree.properties import ALL_PROPERTIES

    selected = select_properties("randtree.*")
    safety = [prop for prop in selected if prop.kind == "safety"]
    assert safety == ALL_PROPERTIES, (
        "namespace selection must reproduce the historical check order")


def test_register_duplicate_raises_and_replace_overrides():
    prop = _prop("testns.dup")
    register_property(prop)
    try:
        assert register_property(prop) is prop  # same object: idempotent
        with pytest.raises(ValueError, match="already registered"):
            register_property(_prop("testns.dup"))
        replacement = _prop("testns.dup")
        assert register_property(replacement, replace=True) is replacement
        assert get_property("testns.dup") is replacement
    finally:
        unregister_property("testns.dup")


def test_get_property_unknown_id_raises_keyerror():
    with pytest.raises(KeyError, match="unknown property"):
        get_property("nope.not_a_property")


def test_select_unknown_pattern_raises_valueerror():
    with pytest.raises(ValueError, match="matches no registered property"):
        select_properties("nope.*")


def test_select_with_exclude():
    selected = select_properties(
        "randtree.*", exclude=["randtree.recovery_timer_running", "*.liveness"])
    names = [prop.name for prop in selected]
    assert "randtree.recovery_timer_running" not in names
    assert "randtree.children_siblings_disjoint" in names


def test_exact_id_and_cross_namespace_patterns():
    (prop,) = select_properties("paxos.at_most_one_value_chosen")
    assert prop.name == "paxos.at_most_one_value_chosen"
    agreement = select_properties("*.at_most_one_value_chosen")
    assert [p.name for p in agreement] == ["paxos.at_most_one_value_chosen"]


def test_resolve_mixes_instances_and_patterns_without_duplicates():
    instance = get_property("chord.ordering_constraint")
    resolved = resolve_properties([instance, "chord.*"])
    names = [prop.name for prop in resolved]
    assert names.count("chord.ordering_constraint") == 1
    assert set(names) >= {"chord.ordering_constraint",
                          "chord.pred_self_implies_succ_self"}


def test_resolve_rejects_non_property_objects():
    with pytest.raises(TypeError, match="glob pattern or a Property"):
        resolve_properties([42])


def test_resolve_empty_selection_is_empty():
    assert resolve_properties([]) == []
