"""Structured violation records.

:class:`ViolationRecord` is the JSON-serializable record of one violation
*episode* observed by the live monitor: which property, at which node, at
what simulated time, in which run episode, and a digest of the global state
that exhibited it.  It replaces the loose ``(property, node, detail)``
string tuples the reporting stack used to pass around, and is what flows
into :class:`~repro.api.report.RunReport` per-property rollups and campaign
per-property columns.

The state digest is computed with SHA-1 over the state's canonical
signature rather than Python's builtin ``hash`` — builtin string hashing is
salted per process, and campaign aggregates must be bit-identical across
worker counts and reruns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..mc.global_state import GlobalState


def state_digest(state: GlobalState) -> str:
    """Process-stable short digest of a global state's identity."""
    payload = repr(state.signature()).encode("utf-8", errors="replace")
    return hashlib.sha1(payload).hexdigest()[:16]


@dataclass(frozen=True)
class ViolationRecord:
    """One violation episode observed in a live run."""

    property_id: str
    severity: str
    #: Offending node (string form of its address), None for system-wide.
    node: Optional[str]
    #: Free-form human detail; payload only, never part of episode identity.
    detail: str
    #: Simulated time at which the episode started.
    sim_time: float
    #: Monotonic episode index within the run (0-based, order of discovery).
    episode: int
    #: Digest of the global state that opened the episode.
    state_digest: str
    #: Property kind: "safety" or "liveness".
    kind: str = "safety"

    def to_dict(self) -> dict[str, Any]:
        return {
            "property_id": self.property_id,
            "severity": self.severity,
            "node": self.node,
            "detail": self.detail,
            "sim_time": self.sim_time,
            "episode": self.episode,
            "state_digest": self.state_digest,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ViolationRecord":
        return cls(
            property_id=data["property_id"],
            severity=data.get("severity", "error"),
            node=data.get("node"),
            detail=data.get("detail", ""),
            sim_time=float(data.get("sim_time", 0.0)),
            episode=int(data.get("episode", 0)),
            state_digest=data.get("state_digest", ""),
            kind=data.get("kind", "safety"),
        )
