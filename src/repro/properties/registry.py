"""The global property registry: namespaced ids, lookup and selection.

Every property the bundled systems check self-registers here when its
``repro.systems.<name>.properties`` module is imported (the same pattern
the system registry uses for ``spec`` modules).  The registry is what makes
properties a first-class, selectable surface:

* ``python -m repro properties`` lists it;
* ``Experiment.properties("randtree.*", exclude=[...])`` selects from it;
* the campaign ``properties=`` axis resolves patterns against it inside
  worker processes (patterns are plain strings, so they pickle).

Selection uses ``fnmatch``-style glob patterns over property ids
(``"randtree.*"``, ``"*.agreement"``, exact ids).  Selection order is the
registration order of the matched properties — NOT alphabetical — so
selecting a system's namespace reproduces the historical ``ALL_PROPERTIES``
check order exactly (search results and steering decisions depend on it).
"""

from __future__ import annotations

import importlib
from fnmatch import fnmatchcase
from typing import Iterable, Sequence, Union

from .base import Property

_REGISTRY: dict[str, Property] = {}

#: Property modules of the bundled systems; importing one registers its
#: properties (mirrors the system registry's spec-module pattern).
_BUILTIN_PROPERTY_MODULES = (
    "repro.systems.randtree.properties",
    "repro.systems.chord.properties",
    "repro.systems.paxos.properties",
    "repro.systems.bulletprime.properties",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_PROPERTY_MODULES:
        importlib.import_module(module)


def register_property(prop: Property, *, replace: bool = False) -> Property:
    """Add ``prop`` to the registry (idempotent for identical re-imports)."""
    existing = _REGISTRY.get(prop.name)
    if existing is not None and existing is not prop and not replace:
        raise ValueError(
            f"property {prop.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[prop.name] = prop
    return prop


def register_properties(
    props: Iterable[Property], *, replace: bool = False
) -> list[Property]:
    """Register several properties at once, returning them as a list."""
    return [register_property(prop, replace=replace) for prop in props]


def unregister_property(name: str) -> None:
    """Remove a registered property (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_property(name: str) -> Property:
    """Look up a registered property by exact id."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown property {name!r} (registered: {known})") from None


def all_properties() -> list[Property]:
    """Every registered property, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY.values())


def select_properties(
    *patterns: str,
    exclude: Sequence[str] = (),
) -> list[Property]:
    """Registered properties matching any ``fnmatch`` pattern.

    ``exclude`` patterns are applied after inclusion.  Raises
    ``ValueError`` when an include pattern matches nothing — a typo'd
    selection must fail loudly, not silently check nothing.
    """
    _ensure_builtins()
    selected: dict[str, Property] = {}
    for pattern in patterns:
        matched = [
            prop for name, prop in _REGISTRY.items() if fnmatchcase(name, pattern)
        ]
        if not matched:
            known = ", ".join(sorted(_REGISTRY)) or "<none>"
            raise ValueError(
                f"property selector {pattern!r} matches no registered "
                f"property (registered: {known})"
            )
        for prop in matched:
            selected.setdefault(prop.name, prop)
    return [
        prop
        for prop in selected.values()
        if not any(fnmatchcase(prop.name, pattern) for pattern in exclude)
    ]


#: Selector inputs accepted by :func:`resolve_properties`.
PropertySelector = Union[str, Property]


def resolve_properties(
    selectors: Sequence[PropertySelector],
    *,
    exclude: Sequence[str] = (),
) -> list[Property]:
    """Resolve a mixed list of glob patterns and property instances.

    String selectors go through :func:`select_properties`; instances are
    kept as-is (and are also subject to ``exclude`` patterns).  Duplicate
    ids keep their first occurrence so check order stays deterministic.
    """
    resolved: dict[str, Property] = {}
    patterns = [sel for sel in selectors if isinstance(sel, str)]
    instances = [sel for sel in selectors if not isinstance(sel, str)]
    for prop in instances:
        if not isinstance(prop, Property):
            raise TypeError(
                f"property selector must be a glob pattern or a Property, "
                f"got {type(prop).__name__}"
            )
        resolved.setdefault(prop.name, prop)
    if patterns:
        for prop in select_properties(*patterns):
            resolved.setdefault(prop.name, prop)
    return [
        prop
        for prop in resolved.values()
        if not any(fnmatchcase(prop.name, pattern) for pattern in exclude)
    ]
