"""Bounded-liveness properties: temporal checks over simulated time.

Invariant-only frameworks cannot express "the system becomes consistent
again within a window" — the shape of eventual-consistency guarantees (and
the reason a transiently split tree is fine but a permanently split one is
a bug).  This module adds two bounded-liveness operators, evaluated by the
live property monitor as the simulation advances:

* :func:`eventually` — ``pred`` must hold at some observed point within
  ``within`` simulated seconds of the start of monitoring; once satisfied
  the obligation is discharged for good.
* :func:`leads_to` — every time ``trigger`` becomes true (edge-triggered),
  ``goal`` must hold at some observed point within ``within`` seconds; the
  obligation re-arms on the next trigger edge, so a recurring disturbance
  that stops healing is caught on every recurrence.

Liveness properties are **not** state predicates: the model checkers and
the immediate safety check skip them (``state_checkable`` is false).  The
monitor drives one stateful :class:`LivenessTracker` per property per run
and calls :meth:`LivenessTracker.finalize` when the run ends so deadlines
that expired after the last event still count.

Deadlines are evaluated at observation points (executed events and the end
of the run), so a violation is reported at the first observation after the
deadline passes — deterministic for a seeded run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..mc.global_state import GlobalState
from ..runtime.address import Address
from .base import Property

#: A liveness predicate over the live global state.
StatePredicate = Callable[[GlobalState], bool]

#: ``(node, detail)`` pairs emitted when an obligation expires.
LivenessFailure = tuple[Optional[Address], str]


class LivenessProperty(Property):
    """A bounded-liveness property evaluated by the live monitor.

    Subclasses (or the :func:`eventually` / :func:`leads_to` factories)
    provide :meth:`make_tracker`, returning a fresh stateful tracker per
    run.  ``within`` is the bound in simulated seconds.
    """

    kind = "liveness"
    state_checkable = False

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        within: float,
        severity: str = "warning",
        tags: Iterable[str] = (),
    ) -> None:
        if within <= 0:
            raise ValueError("liveness window `within` must be positive")
        super().__init__(
            name, description, severity=severity, tags=set(tags) | {"liveness"}
        )
        self.within = float(within)

    def describe(self) -> dict:
        data = super().describe()
        data["within"] = self.within
        return data

    def make_tracker(self) -> "LivenessTracker":
        raise NotImplementedError


class LivenessTracker:
    """Per-run evaluation state of one liveness property."""

    def __init__(self, prop: LivenessProperty) -> None:
        self.prop = prop

    def anchor(self, now: float) -> None:
        """Fix the run's start time before any event is observed.

        The live monitor calls this when it is installed, so windows that
        are relative to the run start (``eventually``) open at the actual
        start even when the first executed event comes late.  Without an
        anchor, windows open at the first observation.
        """

    def observe(self, state: GlobalState, now: float) -> list[LivenessFailure]:
        """Feed one observed global state; returns expired obligations."""
        raise NotImplementedError

    def finalize(self, now: float) -> list[LivenessFailure]:
        """End of run: report obligations whose deadline has passed."""
        raise NotImplementedError


class _EventuallyTracker(LivenessTracker):
    def __init__(self, prop: "_Eventually") -> None:
        super().__init__(prop)
        self._deadline: Optional[float] = None
        self._satisfied = False
        self._reported = False

    def anchor(self, now: float) -> None:
        if self._deadline is None:
            self._deadline = now + self.prop.within

    def _expired(self, now: float) -> list[LivenessFailure]:
        if (
            not self._satisfied
            and not self._reported
            and self._deadline is not None
            and now > self._deadline
        ):
            self._reported = True
            detail = (
                f"predicate did not hold within {self.prop.within:g}s "
                f"(deadline {self._deadline:g}, now {now:g})"
            )
            return [(None, detail)]
        return []

    def observe(self, state: GlobalState, now: float) -> list[LivenessFailure]:
        if self._satisfied or self._reported:
            return []
        if self._deadline is None:
            self._deadline = now + self.prop.within
        # Expiry is checked before the predicate: a predicate that first
        # holds at the first observation AFTER the deadline did not hold
        # within the window and must not discharge the obligation.
        expired = self._expired(now)
        if expired:
            return expired
        if self.prop.pred(state):
            self._satisfied = True
        return []

    def finalize(self, now: float) -> list[LivenessFailure]:
        return self._expired(now)


class _Eventually(LivenessProperty):
    def __init__(self, name: str, pred: StatePredicate, description: str = "", **kw):
        super().__init__(name, description, **kw)
        self.pred = pred

    def make_tracker(self) -> LivenessTracker:
        return _EventuallyTracker(self)


class _LeadsToTracker(LivenessTracker):
    def __init__(self, prop: "_LeadsTo") -> None:
        super().__init__(prop)
        self._trigger_was_true = False
        self._deadline: Optional[float] = None
        self._opened_at: Optional[float] = None

    def _expired(self, now: float) -> list[LivenessFailure]:
        if self._deadline is not None and now > self._deadline:
            opened = self._opened_at
            self._deadline = None
            self._opened_at = None
            detail = (
                f"goal did not follow trigger (at {opened:g}) within "
                f"{self.prop.within:g}s (now {now:g})"
            )
            return [(None, detail)]
        return []

    def observe(self, state: GlobalState, now: float) -> list[LivenessFailure]:
        expired = self._expired(now)
        trigger = self.prop.trigger(state)
        if trigger and not self._trigger_was_true and self._deadline is None:
            self._deadline = now + self.prop.within
            self._opened_at = now
        self._trigger_was_true = trigger
        if self._deadline is not None and self.prop.goal(state):
            self._deadline = None
            self._opened_at = None
        return expired

    def finalize(self, now: float) -> list[LivenessFailure]:
        return self._expired(now)


class _LeadsTo(LivenessProperty):
    def __init__(
        self,
        name: str,
        trigger: StatePredicate,
        goal: StatePredicate,
        description: str = "",
        **kw,
    ):
        super().__init__(name, description, **kw)
        self.trigger = trigger
        self.goal = goal

    def make_tracker(self) -> LivenessTracker:
        return _LeadsToTracker(self)


def eventually(
    name: str,
    pred: StatePredicate,
    *,
    within: float,
    description: str = "",
    severity: str = "warning",
    tags: Iterable[str] = (),
) -> LivenessProperty:
    """``pred`` must hold at some point within ``within`` seconds.

    The window opens at the run start when the tracker is anchored (the
    live monitor anchors at install time), or at the first observation
    otherwise.  At most one violation is reported per run; once the
    predicate holds the property is discharged permanently.
    """
    return _Eventually(
        name, pred, description, within=within, severity=severity, tags=tags
    )


def leads_to(
    name: str,
    trigger: StatePredicate,
    goal: StatePredicate,
    *,
    within: float,
    description: str = "",
    severity: str = "warning",
    tags: Iterable[str] = (),
) -> LivenessProperty:
    """Whenever ``trigger`` becomes true, ``goal`` must hold within the window.

    Edge-triggered: a new obligation opens when ``trigger`` transitions
    from false to true with no obligation already open; it is discharged
    as soon as ``goal`` is observed true, and violated (one episode per
    obligation) when the deadline passes first.
    """
    return _LeadsTo(
        name, trigger, goal, description, within=within, severity=severity, tags=tags
    )
