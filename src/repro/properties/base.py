"""Core property types: the base class, safety properties and combinators.

A *property* is a named, identified check over the distributed system.  Two
kinds exist:

* **Safety properties** (:class:`SafetyProperty`) are predicates over a
  single :class:`~repro.mc.global_state.GlobalState`.  They are evaluated by
  the model checkers (exhaustive search, random walks, consequence
  prediction), by the live property monitor and by the immediate safety
  check.
* **Liveness properties** (:class:`~repro.properties.liveness.LivenessProperty`)
  are temporal: they watch the live execution over simulated time and can
  only be evaluated by the live monitor.  See :mod:`repro.properties.liveness`.

Every property carries a namespaced id (``"randtree.no_self_reference"``),
a :data:`severity <SEVERITIES>` and a set of free-form tags, which is what
makes the property surface selectable (``Experiment.properties("randtree.*")``,
``python -m repro properties``, campaign ``properties=`` axes).

Combinators build safety properties from simpler check functions:

* :func:`node_property` — checked independently at every node; declares
  whether the check reads only that node's local state (``local_only``),
  which is what enables the monitor's incremental fast path;
* :func:`pairwise_property` — checked over every ordered pair of distinct
  nodes (cross-node invariants such as "a receiver never believes a sender
  has blocks the sender lacks");
* plain :class:`SafetyProperty` — an arbitrary predicate over the whole
  global state.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..mc.global_state import GlobalState, NodeLocal
from ..runtime.address import Address
from ..runtime.state import NodeState

#: Recognised severity levels, most severe first.
SEVERITIES = ("critical", "error", "warning", "info")

#: Property scopes: ``"node"`` means the check at a node reads only that
#: node's local state (incrementally re-checkable); ``"global"`` means it
#: may read other nodes or in-flight messages and must be fully re-checked.
SCOPES = ("node", "global")


def validate_severity(severity: str) -> str:
    if severity not in SEVERITIES:
        raise ValueError(
            f"unknown severity {severity!r} (one of: {', '.join(SEVERITIES)})"
        )
    return severity


@dataclass(frozen=True)
class PropertyViolation:
    """One violation of one property in one global state."""

    property_name: str
    node: Optional[Address]
    detail: str

    def __str__(self) -> str:
        where = f" at {self.node}" if self.node is not None else ""
        return f"[{self.property_name}]{where}: {self.detail}"


class Property:
    """Base class: identity, severity and tags shared by all property kinds.

    ``name`` is the namespaced id (``"<system>.<property>"`` by
    convention); ``kind`` is ``"safety"`` or ``"liveness"``;
    ``state_checkable`` tells the state-based checkers whether they can
    evaluate the property on a single global state.
    """

    kind = "property"
    #: True when the property is a predicate over one global state.
    state_checkable = False

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        severity: str = "error",
        tags: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.description = description or name
        self.severity = validate_severity(severity)
        self.tags = frozenset(tags)

    @property
    def namespace(self) -> str:
        """The id prefix before the first dot (usually the system name)."""
        return self.name.split(".", 1)[0] if "." in self.name else ""

    def describe(self) -> dict:
        """Registry-listing summary (``python -m repro properties``)."""
        return {
            "id": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "tags": sorted(self.tags),
            "description": self.description,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SafetyProperty(Property):
    """A named safety property over global states.

    ``check_fn`` receives the global state and returns an iterable of
    violation detail strings paired with the offending node (or ``None``
    for system-wide violations).  The constructor signature is kept
    compatible with the original ``repro.mc.properties.SafetyProperty``:
    severity and tags are keyword-only additions.
    """

    kind = "safety"
    state_checkable = True
    #: Default scope: an arbitrary predicate may read anything.
    scope = "global"

    def __init__(
        self,
        name: str,
        check_fn: Callable[[GlobalState], Iterable[tuple[Optional[Address], str]]],
        description: str = "",
        *,
        severity: str = "error",
        tags: Iterable[str] = (),
    ) -> None:
        super().__init__(name, description, severity=severity, tags=tags)
        self._check_fn = check_fn

    def violations(self, state: GlobalState) -> list[PropertyViolation]:
        """All violations of this property in ``state``."""
        return [
            PropertyViolation(property_name=self.name, node=node, detail=detail)
            for node, detail in self._check_fn(state)
        ]

    def holds(self, state: GlobalState) -> bool:
        """True when the property is satisfied in ``state``."""
        return not self.violations(state)

    def describe(self) -> dict:
        data = super().describe()
        data["scope"] = self.scope
        return data


class NodeScopedProperty(SafetyProperty):
    """A safety property checked independently at every node.

    Built by :func:`node_property`.  When ``local_only`` is true the
    per-node check reads nothing but that node's local state and timers,
    so :meth:`violations_at` can re-check a single dirty node — the live
    monitor's incremental fast path and the immediate safety check both
    rely on this.
    """

    def __init__(
        self,
        name: str,
        node_check_fn: Callable[
            [Address, NodeState, frozenset[str], GlobalState], Iterable[str]
        ],
        description: str = "",
        *,
        severity: str = "error",
        tags: Iterable[str] = (),
        local_only: bool = True,
    ) -> None:
        def check(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
            for addr, local in state.nodes.items():
                for detail in node_check_fn(addr, local.state, local.timers, state):
                    yield addr, detail

        super().__init__(name, check, description, severity=severity, tags=tags)
        self._node_check_fn = node_check_fn
        self.scope = "node" if local_only else "global"

    def violations_at(
        self, state: GlobalState, addr: Address
    ) -> list[PropertyViolation]:
        """Violations of this property at the single node ``addr``.

        Exact for ``scope == "node"`` properties; for cross-node checks it
        still evaluates the node's check function against the full global
        state (callers must not use it as a substitute for a full re-check
        in that case).
        """
        local = state.nodes.get(addr)
        if local is None:
            return []
        return [
            PropertyViolation(property_name=self.name, node=addr, detail=detail)
            for detail in self._node_check_fn(addr, local.state, local.timers, state)
        ]


def node_property(
    name: str,
    check_fn: Callable[
        [Address, NodeState, frozenset[str], GlobalState], Iterable[str]
    ],
    description: str = "",
    *,
    severity: str = "error",
    tags: Iterable[str] = (),
    local_only: bool = True,
) -> NodeScopedProperty:
    """Build a property checked independently at every node.

    ``check_fn`` receives the node address, its protocol state, its armed
    timers and the full global state, and yields a violation description
    per problem found at that node.  Pass ``local_only=False`` when the
    check reads other nodes' state through the global-state argument
    (e.g. "the root must not appear as another node's child") — such
    properties are excluded from incremental re-checking.
    """
    return NodeScopedProperty(
        name,
        check_fn,
        description,
        severity=severity,
        tags=tags,
        local_only=local_only,
    )


def pairwise_property(
    name: str,
    check_fn: Callable[
        [Address, NodeLocal, Address, NodeLocal, GlobalState], Iterable[str]
    ],
    description: str = "",
    *,
    severity: str = "error",
    tags: Iterable[str] = (),
) -> SafetyProperty:
    """Build a cross-node invariant over every ordered pair of nodes.

    ``check_fn(addr_a, local_a, addr_b, local_b, state)`` yields violation
    details attributed to ``addr_a``.  Pairs are enumerated in sorted
    address order so violation order is deterministic.
    """

    def check(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
        addresses = sorted(state.nodes)
        for addr_a in addresses:
            for addr_b in addresses:
                if addr_a == addr_b:
                    continue
                for detail in check_fn(
                    addr_a, state.nodes[addr_a], addr_b, state.nodes[addr_b], state
                ):
                    yield addr_a, detail

    return SafetyProperty(name, check, description, severity=severity, tags=tags)


def typed_check(state_type: type) -> Callable:
    """Guard a per-node property check behind a state-type test.

    Mixed deployments (and mid-churn snapshots) can hand a system's
    property a node running a different protocol; every per-node check
    therefore starts with the same ``isinstance`` guard.  Decorating the
    check function with ``@typed_check(MyState)`` hoists that guard: the
    check yields nothing for nodes whose state is not an instance of
    ``state_type`` and otherwise runs unchanged.

        @typed_check(RandTreeState)
        def _no_self_reference(addr, state, timers, gs):
            if addr in state.children:
                yield "node lists itself as a child"
    """

    def decorate(
        check_fn: Callable[
            [Address, NodeState, frozenset[str], GlobalState], Iterable[str]
        ],
    ) -> Callable[[Address, NodeState, frozenset[str], GlobalState], Iterable[str]]:
        @functools.wraps(check_fn)
        def checked(
            addr: Address,
            state: NodeState,
            timers: frozenset[str],
            gs: GlobalState,
        ) -> Iterable[str]:
            if not isinstance(state, state_type):
                return ()
            return check_fn(addr, state, timers, gs)

        return checked

    return decorate


def typed_states(
    state: GlobalState, state_type: type
) -> Iterator[tuple[Address, NodeState]]:
    """Iterate ``(addr, node_state)`` pairs whose state is ``state_type``.

    The whole-global-state analogue of :func:`typed_check`: global checks
    and liveness predicates that scan every node use this instead of
    repeating the ``isinstance`` filter inline.  Iteration follows
    ``state.nodes`` order (insertion order, which is deterministic).
    """
    for addr, local in state.nodes.items():
        if isinstance(local.state, state_type):
            yield addr, local.state


def safety_properties(properties: Sequence[Property]) -> list[SafetyProperty]:
    """The state-checkable subset of ``properties``.

    The model checkers and the immediate safety check evaluate properties
    on single global states; temporal (liveness) properties are silently
    excluded because they are only meaningful to the live monitor.
    """
    return [prop for prop in properties if isinstance(prop, SafetyProperty)]


def check_all(
    properties: Sequence[Property], state: GlobalState
) -> list[PropertyViolation]:
    """All violations of all state-checkable ``properties`` in ``state``."""
    found: list[PropertyViolation] = []
    for prop in properties:
        if isinstance(prop, SafetyProperty):
            found.extend(prop.violations(state))
    return found
