"""First-class property API: registry, combinators, structured violations.

This package is the single source of truth for the properties CrystalBall
checks.  It provides:

* the property classes (:class:`SafetyProperty`, :class:`LivenessProperty`)
  with namespaced ids, severities and tags;
* combinators: :func:`node_property`, :func:`pairwise_property`, the
  bounded-liveness operators :func:`eventually` and :func:`leads_to`, and
  the :func:`typed_check` / :func:`typed_states` state-type guards;
* the global :mod:`registry <repro.properties.registry>` the systems'
  properties self-register into, with glob-pattern selection;
* :class:`ViolationRecord`, the structured violation-episode record the
  live monitor emits and the reporting stack aggregates.

``repro.mc.properties`` re-exports the safety subset for backwards
compatibility; new code should import from here.
"""

from .base import (
    SCOPES,
    SEVERITIES,
    NodeScopedProperty,
    Property,
    PropertyViolation,
    SafetyProperty,
    check_all,
    node_property,
    pairwise_property,
    safety_properties,
    typed_check,
    typed_states,
)
from .liveness import LivenessProperty, LivenessTracker, eventually, leads_to
from .registry import (
    all_properties,
    get_property,
    register_properties,
    register_property,
    resolve_properties,
    select_properties,
    unregister_property,
)
from .violations import ViolationRecord, state_digest

__all__ = [
    "SCOPES",
    "SEVERITIES",
    "NodeScopedProperty",
    "Property",
    "PropertyViolation",
    "SafetyProperty",
    "check_all",
    "node_property",
    "pairwise_property",
    "safety_properties",
    "typed_check",
    "typed_states",
    "LivenessProperty",
    "LivenessTracker",
    "eventually",
    "leads_to",
    "all_properties",
    "get_property",
    "register_properties",
    "register_property",
    "resolve_properties",
    "select_properties",
    "unregister_property",
    "ViolationRecord",
    "state_digest",
]
