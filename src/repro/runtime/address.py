"""Node addresses.

The paper identifies nodes by IP addresses and relies on their numeric
ordering (e.g. the RandTree root is the node with the numerically smallest
address, Chord ids derive from addresses).  ``Address`` is a small immutable
value type with a total order so protocol code can express those rules
directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Address:
    """An IP-like node identifier.

    Parameters
    ----------
    host:
        Numeric host identifier (stands in for the 32-bit IPv4 address).
    port:
        Service port.  Two services on the same simulated machine use the
        same ``host`` but different ports.
    """

    host: int
    port: int = 5000

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError(f"host must be non-negative, got {self.host}")
        if not (0 < self.port < 65536):
            raise ValueError(f"port must be in (0, 65536), got {self.port}")

    def __lt__(self, other: "Address") -> bool:
        if not isinstance(other, Address):
            return NotImplemented
        return (self.host, self.port) < (other.host, other.port)

    # Addresses are immutable and appear in every peers tuple, routing
    # table and payload the model checker copies: copying returns the
    # instance itself so speculative execution never traverses them.
    def __copy__(self) -> "Address":
        return self

    def __deepcopy__(self, memo: dict) -> "Address":
        return self

    def frozen(self) -> tuple:
        """Cached canonical frozen form (see ``serialization.freeze``)."""
        cached = self.__dict__.get("_frozen")
        if cached is None:
            cached = ("Address", ("host", self.host), ("port", self.port))
            object.__setattr__(self, "_frozen", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    def chord_id(self, bits: int = 16) -> int:
        """Deterministically hash this address into a ``bits``-bit Chord id."""
        digest = hashlib.sha1(str(self).encode("ascii")).digest()
        return int.from_bytes(digest, "big") % (1 << bits)


#: Pseudo-address used by the model checker for "all nodes outside the
#: current snapshot" (Section 4, "dummy node").  Messages addressed to nodes
#: without a checkpoint are redirected here and never processed.
DUMMY_ADDRESS = Address(host=0, port=1)


def make_addresses(count: int, *, start: int = 1, port: int = 5000) -> list[Address]:
    """Create ``count`` distinct addresses with consecutive host numbers."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [Address(host=start + i, port=port) for i in range(count)]
