"""Churn and failure injection.

The execution-steering evaluation (Section 5.4.1) runs "a live churn
scenario in which one participant per minute leaves and enters the system on
average".  :class:`ChurnProcess` reproduces that workload: at exponentially
distributed intervals it picks a random node and resets it (leave + rejoin),
optionally mixing in fail-stop crashes and later revivals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from .address import Address
from .simulator import Simulator


@dataclass
class ChurnProcess:
    """Injects resets (and optionally crashes) into a running simulation.

    Parameters
    ----------
    mean_interval:
        Mean time between churn events in simulated seconds (60 s reproduces
        the paper's one-event-per-minute scenario).
    reset_probability:
        Probability that a churn event is a silent reset; the remainder are
        fail-stop crashes followed by a revival after ``downtime``.
    """

    nodes: list[Address]
    mean_interval: float = 60.0
    reset_probability: float = 1.0
    downtime: float = 30.0
    seed: int = 0
    stop_after: Optional[float] = None

    events_injected: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("churn needs at least one node")
        if self.mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        self._rng = random.Random(self.seed)

    def install(self, sim: Simulator) -> None:
        """Schedule the first churn event on ``sim``."""
        sim.schedule_callback(sim.now + self._next_interval(), self._fire)

    def _next_interval(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_interval)

    def _fire(self, sim: Simulator) -> None:
        if self.stop_after is not None and sim.now >= self.stop_after:
            return
        target = self._rng.choice(self.nodes)
        self.events_injected += 1
        if self._rng.random() < self.reset_probability:
            sim.schedule_reset(sim.now, target)
        else:
            sim.crash_node(target)
            sim.schedule_callback(sim.now + self.downtime,
                                  lambda s, addr=target: s.revive_node(addr))
        sim.schedule_callback(sim.now + self._next_interval(), self._fire)
