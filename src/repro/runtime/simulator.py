"""Discrete-event simulator: the live runtime for protocols under test.

This is the ModelNet-cluster substitute.  It executes protocol state
machines against a latency/loss network model, maintains timers and TCP-like
connections, injects node resets and churn, and exposes the hook points the
CrystalBall controller needs:

* a per-node :class:`NodeHook` consulted before every handler execution
  (event filtering and the immediate safety check),
* control-plane message routing (checkpoint requests/responses),
* controller wakeups via :meth:`Simulator.schedule_at` (hooks arm exactly
  the wakeups they need; the legacy polled per-node tick survives as a
  compatibility adapter for hooks without ``on_attach``),
* observers called after every executed event (live property monitoring,
  tracing, statistics).

Scheduling is O(active): the heap only ever holds entries for armed
timers, queued deliveries (a batched :class:`~repro.runtime.network.
DeliveryPlan` occupies a single entry no matter how many messages it
carries) and hook wakeups, so idle nodes consume zero scheduler cycles.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Mapping,
    Optional,
    Protocol as TypingProtocol,
    Sequence,
)

from ..obs.context import ObsContext
from .address import Address
from .context import HandlerContext
from .events import (
    AppEvent,
    ConnectionErrorEvent,
    Event,
    MessageEvent,
    ResetEvent,
    TimerEvent,
)
from .logical_clock import LogicalClock
from .messages import Message, Transport
from .network import DeliveryPlan, NetworkModel
from .protocol import Protocol
from .state import NodeState
from .transport import ConnectionTable


class FilterAction(Enum):
    """Decision a node hook can take about an event before it is executed."""

    ALLOW = "allow"
    DROP = "drop"
    DROP_AND_RESET = "drop_and_reset"
    DELAY = "delay"


class NodeHook(TypingProtocol):
    """Interface the CrystalBall controller implements to plug into a node.

    Hooks may additionally define ``on_attach(sim, node)``; when present,
    :meth:`Simulator.attach_hook` calls it instead of arming the legacy
    per-node tick, and the hook owns its wakeup schedule via
    :meth:`Simulator.schedule_at` (see the scheduler-hook API notes in the
    README's Scaling section).
    """

    def on_tick(self, sim: "Simulator", node: "SimNode") -> None:
        """Periodic controller activity (snapshot gathering, model checking)."""

    def filter_event(self, sim: "Simulator", node: "SimNode", event: Event) -> FilterAction:
        """Execution-steering event filter (Section 3.3)."""

    def immediate_safety_check(self, sim: "Simulator", node: "SimNode", event: Event) -> bool:
        """Return False to block the event because it would immediately
        violate a safety property (Section 3.3, immediate safety check)."""

    def handle_control_message(self, sim: "Simulator", node: "SimNode", message: Message) -> None:
        """Process a CrystalBall control-plane message."""

    def on_event_executed(self, sim: "Simulator", node: "SimNode", event: Event) -> None:
        """Called after an event was executed on the node."""

    def on_forced_checkpoint(self, sim: "Simulator", node: "SimNode") -> None:
        """Called when the logical clock forces a checkpoint (Section 2.3)."""


@dataclass
class NodeStats:
    """Per-node accounting used by the overhead experiments (Section 5.5)."""

    events_executed: int = 0
    messages_sent: int = 0
    service_bytes_sent: int = 0
    control_bytes_sent: int = 0
    resets: int = 0
    events_dropped_by_filter: int = 0
    events_blocked_by_isc: int = 0
    events_delayed: int = 0


@dataclass
class SimNode:
    """A live node: protocol state plus runtime bookkeeping."""

    addr: Address
    protocol: Protocol
    state: NodeState
    clock: LogicalClock = field(default_factory=LogicalClock)
    connections: ConnectionTable = field(default_factory=ConnectionTable)
    armed_timers: dict[str, int] = field(default_factory=dict)  # name -> generation
    incarnation: int = 0
    alive: bool = True
    hook: Optional[NodeHook] = None
    stats: NodeStats = field(default_factory=NodeStats)

    def timer_names(self) -> frozenset[str]:
        return frozenset(self.armed_timers)


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    kind: str = field(compare=False)
    data: Any = field(compare=False)


@dataclass
class TraceRecord:
    """One executed event in the live run (for debugging and examples)."""

    time: float
    node: Address
    description: str
    kind: str


#: Event class -> the ``etype`` field of structured ``event`` records.
_EVENT_TYPES = {
    MessageEvent: "msg",
    TimerEvent: "timer",
    AppEvent: "app",
    ResetEvent: "reset",
    ConnectionErrorEvent: "connerr",
}

#: Event outcome -> the runtime counter it increments.
_OUTCOME_COUNTERS = {
    "executed": "runtime.events_executed",
    "reset": "runtime.resets",
    "filtered": "runtime.events_filtered",
    "filtered+reset": "runtime.events_filtered",
    "delayed": "runtime.events_delayed",
    "blocked-by-isc": "runtime.events_blocked_by_isc",
}


class Simulator:
    """Discrete-event simulator hosting one protocol across many nodes."""

    def __init__(
        self,
        protocol_factory: Callable[[], Protocol],
        network: Optional[NetworkModel] = None,
        *,
        seed: int = 0,
        tick_interval: float = 10.0,
        trace: bool = False,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.protocol_factory = protocol_factory
        self.network = network or NetworkModel()
        self.rng = random.Random(seed)
        self.tick_interval = tick_interval
        self.trace_enabled = trace
        self.obs = obs if obs is not None else ObsContext()
        self._next_eid = 0

        self.now: float = 0.0
        self.nodes: dict[Address, SimNode] = {}
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        #: inflight service messages by delivery id, maintained at
        #: enqueue/deliver time so introspection never scans the heap.
        self._inflight: dict[int, Message] = {}
        self._delivery_ids = itertools.count()
        self._last_tcp_delivery: dict[tuple[Address, Address], float] = {}
        self.observers: list[Callable[["Simulator", SimNode, Event], None]] = []
        self.trace: list[TraceRecord] = []
        self.events_executed = 0

    # -- topology management ----------------------------------------------------

    def add_node(self, addr: Address, *, start: bool = True) -> SimNode:
        """Create a node running a fresh protocol instance."""
        if addr in self.nodes:
            raise ValueError(f"node {addr} already exists")
        protocol = self.protocol_factory()
        state = protocol.initial_state(addr)
        node = SimNode(addr=addr, protocol=protocol, state=state)
        self.nodes[addr] = node
        if start:
            ctx = self._make_context(node)
            protocol.on_start(ctx, state)
            self._apply_effects(node, ctx)
        return node

    def attach_hook(self, addr: Address, hook: NodeHook) -> None:
        """Attach a CrystalBall controller (or any hook) to a node.

        Hooks defining ``on_attach(sim, node)`` arm their own wakeups via
        :meth:`schedule_at` — the O(active) path, where a hook with nothing
        to do costs no scheduler cycles.  Hooks without ``on_attach``
        (third-party code written against the old contract) fall back to
        the polled per-node tick, unchanged.
        """
        node = self.nodes[addr]
        node.hook = hook
        on_attach = getattr(hook, "on_attach", None)
        if on_attach is not None:
            on_attach(self, node)
        else:
            # The compat adapter is itself an owned wakeup: a schedule_at
            # closure that polls on_tick and re-arms while a hook is
            # attached, exactly mirroring the retired "tick" queue kind
            # (same _schedule calls, so identical (time, seq) allocation).
            def wakeup(sim: "Simulator") -> None:
                polled = sim.nodes.get(addr)
                if polled is None:
                    return
                if polled.alive and polled.hook is not None:
                    polled.hook.on_tick(sim, polled)
                if polled.hook is not None:
                    sim.schedule_at(sim.now + sim.tick_interval, wakeup)

            self.schedule_at(self.now + self.tick_interval, wakeup)

    def add_observer(self, observer: Callable[["Simulator", SimNode, Event], None]) -> None:
        """Register a callback invoked after every executed event."""
        self.observers.append(observer)

    # -- scheduling API -----------------------------------------------------------

    def schedule_app(self, time: float, addr: Address, call: str,
                     payload: Optional[Mapping[str, Any]] = None) -> None:
        """Schedule an application call on ``addr`` at absolute time ``time``."""
        self._schedule(time, "app", AppEvent(node=addr, call=call, payload=dict(payload or {})))

    def schedule_reset(self, time: float, addr: Address) -> None:
        """Schedule a silent node reset at absolute time ``time``."""
        self._schedule(time, "reset", addr)

    def schedule_at(self, time: float, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn(sim)`` at absolute time ``time``.

        The controller-facing wakeup interface: hooks and drivers arm
        exactly the wakeups they need instead of being polled every tick.
        """
        self._schedule(time, "callback", fn)

    def schedule_callback(self, time: float, fn: Callable[["Simulator"], None]) -> None:
        """Schedule an arbitrary callback (used by churn and workloads)."""
        self.schedule_at(time, fn)

    def inject_app(self, addr: Address, call: str,
                   payload: Optional[Mapping[str, Any]] = None) -> None:
        """Execute an application call on ``addr`` immediately.

        Workload drivers inject whole bursts from a single wakeup through
        this, so a burst of N requests costs one heap entry, not N.
        """
        self._execute_event(AppEvent(node=addr, call=call,
                                     payload=dict(payload or {})))

    def _schedule(self, time: float, kind: str, data: Any) -> None:
        heapq.heappush(self._queue, _QueueEntry(max(time, self.now), next(self._seq), kind, data))

    def _schedule_delivery(self, time: float, message: Message) -> None:
        did = next(self._delivery_ids)
        if not message.control:
            self._inflight[did] = message
        self._schedule(time, "deliver", (did, message))

    # -- running -------------------------------------------------------------------

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation until the queue drains, ``until`` simulated
        seconds elapse, or ``max_events`` events execute."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            entry = self._queue[0]
            if until is not None and entry.time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = entry.time
            self._dispatch(entry)
            executed += 1

    def step(self) -> bool:
        """Execute a single queued entry; returns False when the queue is empty."""
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        self.now = entry.time
        self._dispatch(entry)
        return True

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, entry: _QueueEntry) -> None:
        kind = entry.kind
        if kind == "deliver":
            did, message = entry.data
            self._inflight.pop(did, None)
            self._dispatch_delivery(message)
        elif kind == "deliver_batch":
            self._dispatch_batch(entry.data)
        elif kind == "timer":
            self._dispatch_timer(entry.data)
        elif kind == "app":
            self._execute_event(entry.data)
        elif kind == "reset":
            self._perform_reset(entry.data)
        elif kind == "connerr":
            self._execute_event(entry.data)
        elif kind == "callback":
            entry.data(self)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown queue entry kind {kind}")

    def _dispatch_delivery(self, message: Message) -> None:
        node = self.nodes.get(message.dst)
        if node is None or not node.alive:
            self._record_drop(message, "peer-down")
            return
        tracer = self.obs.tracer
        if tracer is not None:
            tracer.deliver(self.now, message.dst, message.msg_id,
                           message.mtype, message.src)
        if self.obs.metrics is not None:
            self.obs.metrics.inc("runtime.messages_delivered")
        if message.control:
            if node.hook is not None:
                node.hook.handle_control_message(self, node, message)
            return
        # Forced checkpoint before processing a message with a larger
        # checkpoint number (Section 2.3).
        if node.clock.observe(message.checkpoint_number) and node.hook is not None:
            node.hook.on_forced_checkpoint(self, node)  # type: ignore[attr-defined]
        self._execute_event(MessageEvent(node=message.dst, message=message))

    def _dispatch_batch(self, plan: "DeliveryPlan") -> None:
        """Deliver every due message of a batched plan, then re-arm the
        plan's single heap entry at its next delivery time."""
        while not plan.exhausted and plan.next_time() <= self.now:
            did, message = plan.pop_due()
            self._inflight.pop(did, None)
            self._dispatch_delivery(message)
        if not plan.exhausted:
            self._schedule(plan.next_time(), "deliver_batch", plan)

    def _dispatch_timer(self, data: tuple[Address, str, int]) -> None:
        addr, name, generation = data
        node = self.nodes.get(addr)
        if node is None or not node.alive:
            return
        if node.armed_timers.get(name) != generation:
            return  # cancelled or re-armed since
        del node.armed_timers[name]
        self._execute_event(TimerEvent(node=addr, timer=name))

    # -- event execution -------------------------------------------------------------

    def _execute_event(self, event: Event) -> None:
        node = self.nodes.get(event.node)
        if node is None or not node.alive:
            return

        if node.hook is not None:
            action = node.hook.filter_event(self, node, event)
            if action == FilterAction.DROP:
                node.stats.events_dropped_by_filter += 1
                self._record_trace(node, event, "filtered")
                return
            if action == FilterAction.DROP_AND_RESET:
                node.stats.events_dropped_by_filter += 1
                self._record_trace(node, event, "filtered+reset")
                if isinstance(event, MessageEvent):
                    self._break_connection(node, event.message.src)
                return
            if action == FilterAction.DELAY:
                node.stats.events_delayed += 1
                delay = 1.0
                if isinstance(event, MessageEvent):
                    self._schedule_delivery(self.now + delay, event.message)
                elif isinstance(event, TimerEvent):
                    self.set_timer(node, event.timer, delay)
                self._record_trace(node, event, "delayed")
                return
            if not node.hook.immediate_safety_check(self, node, event):
                node.stats.events_blocked_by_isc += 1
                self._record_trace(node, event, "blocked-by-isc")
                if isinstance(event, TimerEvent):
                    self.set_timer(node, event.timer, 1.0)
                return

        ctx = self._make_context(node)
        node.state = node.protocol.execute(ctx, node.state, event)
        self._apply_effects(node, ctx)

        node.stats.events_executed += 1
        self.events_executed += 1
        self._record_trace(node, event, "executed")
        if node.hook is not None:
            node.hook.on_event_executed(self, node, event)
        for observer in self.observers:
            observer(self, node, event)

    def _make_context(self, node: SimNode) -> HandlerContext:
        return HandlerContext(self_addr=node.addr, now=self.now, rng=self.rng)

    def _apply_effects(self, node: SimNode, ctx: HandlerContext) -> None:
        for op in ctx.timer_ops:
            if op.action == "set":
                self.set_timer(node, op.name, op.delay)
            else:
                node.armed_timers.pop(op.name, None)
        for peer in ctx.closed_connections:
            self._break_connection(node, peer)
        for message in ctx.sent:
            self._transmit(node, message)

    # -- timers -------------------------------------------------------------------------

    def set_timer(self, node: SimNode, name: str, delay: float) -> None:
        """Arm (or re-arm) a named timer on ``node``."""
        generation = node.armed_timers.get(name, 0) + 1
        node.armed_timers[name] = generation
        self._schedule(self.now + max(delay, 1e-6), "timer", (node.addr, name, generation))

    # -- message transmission -------------------------------------------------------------

    def _transmit(self, node: SimNode, message: Message) -> None:
        stamped = message.with_checkpoint_number(node.clock.stamp()) if not message.control else message
        node.stats.messages_sent += 1
        size = stamped.size_bytes()
        if stamped.control:
            node.stats.control_bytes_sent += size
        else:
            node.stats.service_bytes_sent += size

        tracer = self.obs.tracer
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.inc("runtime.messages_sent")
            if stamped.control:
                metrics.inc("runtime.control_bytes_sent", size)
            else:
                metrics.inc("runtime.service_bytes_sent", size)
        if tracer is not None:
            tracer.send(
                self.now, stamped.src, stamped.msg_id, stamped.mtype,
                stamped.dst, stamped.transport.value, stamped.control,
                size,
            )

        if not self.network.reachable(stamped.src, stamped.dst):
            self._record_drop(stamped, "unreachable")
            if stamped.transport is Transport.TCP:
                self._schedule_connection_error(node.addr, stamped.dst)
            return

        dest = self.nodes.get(stamped.dst)
        latency = self.network.latency(stamped.src, stamped.dst, self.rng)

        if stamped.transport is Transport.UDP:
            loss = self.network.loss_probability(stamped.src, stamped.dst, self.rng)
            if self.rng.random() < loss:
                self._record_drop(stamped, "loss")
                return
            # Fault interceptors act on messages that survived the loss
            # draw, so `messages_affected` counts delivered traffic only.
            if self.network.interceptors:
                stamped = self.network.rewrite_message(stamped, self.rng)
                plan = self.network.plan_deliveries(stamped, latency,
                                                    self.rng)
            else:
                plan = [latency]
            for delivery_latency in plan:
                self._schedule_delivery(self.now + delivery_latency, stamped)
            return

        # TCP semantics: verify / establish the connection first.
        if dest is None or not dest.alive:
            self._record_drop(stamped, "peer-down")
            self._schedule_connection_error(node.addr, stamped.dst)
            node.connections.close(stamped.dst)
            return
        recorded = node.connections.recorded_incarnation(stamped.dst)
        if recorded is not None and recorded != dest.incarnation:
            # Stale connection: the peer reset since establishment.
            self._record_drop(stamped, "stale-connection")
            node.connections.close(stamped.dst)
            self._schedule_connection_error(node.addr, stamped.dst)
            return
        if recorded is None:
            node.connections.establish(stamped.dst, dest.incarnation)
            dest.connections.establish(node.addr, node.incarnation)
        if self.network.interceptors:
            stamped = self.network.rewrite_message(stamped, self.rng)
            plan = self.network.plan_deliveries(stamped, latency, self.rng)
        else:
            plan = [latency]
        key = (stamped.src, stamped.dst)
        # TCP stays FIFO per stream even under fault interceptors: every
        # planned copy is delivered no earlier than the previous delivery.
        for delivery_latency in sorted(plan):
            delivery = max(self.now + delivery_latency,
                           self._last_tcp_delivery.get(key, 0.0) + 1e-6)
            self._last_tcp_delivery[key] = delivery
            self._schedule_delivery(delivery, stamped)

    def transmit(self, addr: Address, message: Message) -> None:
        """Send a message on behalf of ``addr`` (used by the CrystalBall
        controller for checkpoint requests and responses)."""
        node = self.nodes[addr]
        self._transmit(node, message)

    def transmit_batch(self, addr: Address, messages: Sequence[Message]) -> None:
        """Send many messages from ``addr`` under one batched delivery plan.

        Accounting, loss and latency draws match sequential
        :meth:`transmit` calls message for message (same RNG order), but
        every surviving UDP copy shares a single ``deliver_batch`` heap
        entry that cursors through the plan — a broadcast costs one
        scheduler slot instead of one per recipient.  TCP messages take
        the sequential path to preserve per-stream FIFO ordering.
        """
        node = self.nodes[addr]
        deliveries: list[tuple[float, int, Message]] = []
        for message in messages:
            if message.transport is not Transport.UDP:
                self._transmit(node, message)
                continue
            stamped = (message if message.control else
                       message.with_checkpoint_number(node.clock.stamp()))
            node.stats.messages_sent += 1
            size = stamped.size_bytes()
            if stamped.control:
                node.stats.control_bytes_sent += size
            else:
                node.stats.service_bytes_sent += size
            metrics = self.obs.metrics
            if metrics is not None:
                metrics.inc("runtime.messages_sent")
                metrics.inc("runtime.control_bytes_sent" if stamped.control
                            else "runtime.service_bytes_sent", size)
            if self.obs.tracer is not None:
                self.obs.tracer.send(
                    self.now, stamped.src, stamped.msg_id, stamped.mtype,
                    stamped.dst, stamped.transport.value, stamped.control,
                    size,
                )
            if not self.network.reachable(stamped.src, stamped.dst):
                self._record_drop(stamped, "unreachable")
                continue
            latency = self.network.latency(stamped.src, stamped.dst, self.rng)
            loss = self.network.loss_probability(stamped.src, stamped.dst,
                                                 self.rng)
            if self.rng.random() < loss:
                self._record_drop(stamped, "loss")
                continue
            if self.network.interceptors:
                stamped = self.network.rewrite_message(stamped, self.rng)
                plan = self.network.plan_deliveries(stamped, latency,
                                                    self.rng)
            else:
                plan = [latency]
            for delivery_latency in plan:
                did = next(self._delivery_ids)
                if not stamped.control:
                    self._inflight[did] = stamped
                deliveries.append((self.now + delivery_latency, did, stamped))
        if deliveries:
            batch = DeliveryPlan.from_deliveries(deliveries)
            self._schedule(batch.next_time(), "deliver_batch", batch)

    def _record_drop(self, message: Message, reason: str) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.inc("runtime.messages_dropped")
        if self.obs.tracer is not None:
            self.obs.tracer.drop(self.now, message.msg_id, message.mtype,
                                 reason)

    def _schedule_connection_error(self, at: Address, peer: Address) -> None:
        latency = self.network.latency(peer, at, self.rng)
        self._schedule(self.now + latency, "connerr", ConnectionErrorEvent(node=at, peer=peer))

    def _break_connection(self, node: SimNode, peer: Address) -> None:
        """Tear down the TCP connection between ``node`` and ``peer`` and
        signal the peer with an RST (used by execution steering)."""
        node.connections.close(peer)
        peer_node = self.nodes.get(peer)
        if peer_node is not None and peer_node.alive:
            peer_node.connections.close(node.addr)
            self._schedule_connection_error(peer, node.addr)

    # -- resets / churn ---------------------------------------------------------------------

    def _perform_reset(self, addr: Address) -> None:
        node = self.nodes.get(addr)
        if node is None:
            return
        node.incarnation += 1
        node.stats.resets += 1
        affected = node.connections.close_all()
        node.armed_timers.clear()
        # RST packets towards peers; each may be lost (silent reset), which is
        # the scenario that exposes the RandTree inconsistency of Figure 2.
        for peer in affected:
            peer_node = self.nodes.get(peer)
            if peer_node is None or not peer_node.alive:
                continue
            if self.rng.random() < self.network.rst_loss_probability:
                continue  # silent: the peer keeps its stale connection
            peer_node.connections.close(addr)
            self._schedule_connection_error(peer, addr)
        # Reboot with fresh state.
        ctx = self._make_context(node)
        node.state = node.protocol.execute(ctx, node.state, ResetEvent(node=addr))
        node.clock = LogicalClock()
        self._apply_effects(node, ctx)
        node.stats.events_executed += 1
        self.events_executed += 1
        self._record_trace(node, ResetEvent(node=addr), "reset")
        for observer in self.observers:
            observer(self, node, ResetEvent(node=addr))

    def crash_node(self, addr: Address) -> None:
        """Take a node permanently offline (fail-stop, used by churn)."""
        node = self.nodes.get(addr)
        if node is None:
            return
        node.alive = False
        node.armed_timers.clear()
        node.connections.close_all()

    def revive_node(self, addr: Address) -> None:
        """Bring a crashed node back with fresh state."""
        node = self.nodes.get(addr)
        if node is None:
            return
        node.alive = True
        node.incarnation += 1
        ctx = self._make_context(node)
        node.state = node.protocol.execute(ctx, node.state, ResetEvent(node=addr))
        self._apply_effects(node, ctx)

    # -- introspection -------------------------------------------------------------------------

    def node_states(self) -> dict[Address, tuple[NodeState, frozenset[str]]]:
        """Live view of all alive nodes: protocol state plus armed timers."""
        return {
            addr: (node.state, node.timer_names())
            for addr, node in self.nodes.items()
            if node.alive
        }

    def inflight_messages(self) -> list[Message]:
        """Service messages currently queued for delivery, in enqueue
        order.  Served from the inflight index maintained at
        enqueue/deliver time — O(inflight), never a heap scan."""
        return list(self._inflight.values())

    def inflight_service_count(self) -> int:
        """Number of service messages currently queued for delivery."""
        return len(self._inflight)

    def total_service_bytes(self) -> int:
        return sum(n.stats.service_bytes_sent for n in self.nodes.values())

    def total_control_bytes(self) -> int:
        return sum(n.stats.control_bytes_sent for n in self.nodes.values())

    def _record_trace(self, node: SimNode, event: Event, outcome: str) -> None:
        if self.trace_enabled:
            self.trace.append(
                TraceRecord(time=self.now, node=node.addr,
                            description=event.describe(), kind=outcome)
            )
        metrics = self.obs.metrics
        if metrics is not None:
            counter = _OUTCOME_COUNTERS.get(outcome)
            if counter is not None:
                metrics.inc(counter)
        tracer = self.obs.tracer
        if tracer is not None:
            eid = None
            if outcome in ("executed", "reset"):
                self._next_eid += 1
                eid = self._next_eid
            msg_id = (event.message.msg_id
                      if isinstance(event, MessageEvent) else None)
            tracer.event(
                self.now, node.addr,
                _EVENT_TYPES.get(type(event), "event"), outcome,
                event.describe(), eid=eid, msg=msg_id,
            )
