"""Checkpoint-number logical clock (Section 2.3).

Each node keeps a checkpoint number ``cn``.  Every outgoing service message
is stamped with the sender's ``cn``; a receiver whose ``cn`` is smaller takes
a *forced checkpoint* before processing the message and adopts the larger
number.  This preserves the happens-before relationship among the collected
checkpoints, so a set of checkpoints with the same number forms a consistent
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LogicalClock:
    """Per-node checkpoint-number clock.

    The clock only decides *when* a checkpoint must be taken; actually
    storing the checkpoint is the checkpoint manager's job
    (:mod:`repro.core.checkpoint`).
    """

    value: int = 0
    #: Number of forced checkpoints triggered by incoming messages.
    forced_checkpoints: int = 0
    #: Number of locally initiated (periodic) increments.
    local_increments: int = 0

    def stamp(self) -> int:
        """Checkpoint number to piggyback on an outgoing message."""
        return self.value

    def observe(self, message_cn: int) -> bool:
        """Process the checkpoint number of an incoming message.

        Returns ``True`` when a forced checkpoint must be taken *before* the
        message is processed (i.e. the message carries a larger number).
        """
        if message_cn > self.value:
            self.value = message_cn
            self.forced_checkpoints += 1
            return True
        return False

    def advance(self) -> int:
        """Locally increment the clock (periodic checkpoint); returns new value."""
        self.value += 1
        self.local_increments += 1
        return self.value

    def observe_request(self, request_cn: int) -> bool:
        """Process a checkpoint *request* number (Section 2.3, case 1).

        Returns ``True`` when the request is for a future checkpoint, in which
        case the node must take a fresh checkpoint stamped ``request_cn`` and
        adopt that number.
        """
        if request_cn > self.value:
            self.value = request_cn
            return True
        return False
