"""Distributed-system runtime substrate (the Mace + ModelNet equivalent).

Protocols are state machines (:class:`~repro.runtime.protocol.Protocol`)
with explicit local state (:class:`~repro.runtime.state.NodeState`); the
discrete-event :class:`~repro.runtime.simulator.Simulator` executes them
against a :class:`~repro.runtime.network.NetworkModel` with latency, loss,
partitions, TCP failure semantics, node resets and churn.
"""

from .address import Address, DUMMY_ADDRESS, make_addresses
from .context import HandlerContext, TimerOp
from .events import (
    AppEvent,
    ConnectionErrorEvent,
    Event,
    MessageEvent,
    ResetEvent,
    TimerEvent,
    is_internal,
)
from .logical_clock import LogicalClock
from .messages import Message, Transport
from .network import NetworkModel
from .protocol import Protocol
from .simulator import FilterAction, NodeHook, NodeStats, SimNode, Simulator, TraceRecord
from .state import NodeState
from .transport import ConnectionTable, SendQueue
from .churn import ChurnProcess

__all__ = [
    "Address",
    "DUMMY_ADDRESS",
    "make_addresses",
    "HandlerContext",
    "TimerOp",
    "AppEvent",
    "ConnectionErrorEvent",
    "Event",
    "MessageEvent",
    "ResetEvent",
    "TimerEvent",
    "is_internal",
    "LogicalClock",
    "Message",
    "Transport",
    "NetworkModel",
    "Protocol",
    "FilterAction",
    "NodeHook",
    "NodeStats",
    "SimNode",
    "Simulator",
    "TraceRecord",
    "NodeState",
    "ConnectionTable",
    "SendQueue",
    "ChurnProcess",
]
