"""Events processed by protocol state machines.

The paper's model (Figure 4) distinguishes two handler families: message
handlers (``HM``) and internal-action handlers (``HA``, covering timers and
application calls).  We additionally surface node resets and transport
errors as events, because the evaluated bugs are triggered by exactly those
(silent resets, lost TCP RSTs, broken connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Union

from .address import Address
from .messages import Message
from .serialization import freeze


@dataclass(frozen=True)
class MessageEvent:
    """Delivery of a network message to ``node``."""

    node: Address
    message: Message

    def signature(self) -> tuple:
        return ("msg", freeze(self.node), self.message.signature())

    def describe(self) -> str:
        return f"{self.node} handles {self.message}"


@dataclass(frozen=True)
class TimerEvent:
    """Expiry of a named timer at ``node``."""

    node: Address
    timer: str

    def signature(self) -> tuple:
        return ("timer", freeze(self.node), self.timer)

    def describe(self) -> str:
        return f"{self.node} fires timer '{self.timer}'"


@dataclass(frozen=True)
class AppEvent:
    """An application call into the service at ``node`` (e.g. 'join')."""

    node: Address
    call: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def signature(self) -> tuple:
        return ("app", freeze(self.node), self.call, freeze(dict(self.payload)))

    def describe(self) -> str:
        return f"{self.node} application call '{self.call}'"


@dataclass(frozen=True)
class ResetEvent:
    """A silent node reset (power failure / crash-and-reboot) at ``node``."""

    node: Address

    def signature(self) -> tuple:
        return ("reset", freeze(self.node))

    def describe(self) -> str:
        return f"{self.node} resets"


@dataclass(frozen=True)
class ConnectionErrorEvent:
    """Transport error upcall: the TCP connection between ``node`` and
    ``peer`` broke (RST received or send on a dead connection failed)."""

    node: Address
    peer: Address

    def signature(self) -> tuple:
        return ("connerr", freeze(self.node), freeze(self.peer))

    def describe(self) -> str:
        return f"{self.node} sees connection error with {self.peer}"


Event = Union[MessageEvent, TimerEvent, AppEvent, ResetEvent, ConnectionErrorEvent]

#: Internal (non-message) events: these correspond to the paper's ``HA``
#: handlers plus node resets.
INTERNAL_EVENT_TYPES = (TimerEvent, AppEvent, ResetEvent, ConnectionErrorEvent)


def is_internal(event: Event) -> bool:
    """True if ``event`` is an internal action (not a message delivery)."""
    return isinstance(event, INTERNAL_EVENT_TYPES)


def event_signature(event: Event) -> tuple:
    """Canonical hashable identity of an event."""
    return event.signature()
