"""Protocol (service) abstraction — the Mace-service equivalent.

A protocol is a state machine: per-node local state plus handlers for
messages, timers, application calls, node resets and transport errors
(Figure 4's ``HM`` and ``HA``).  The same handler code is executed by the
live runtime, by consequence prediction, and by the immediate safety check.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping, Sequence

from .address import Address
from .context import HandlerContext
from .events import (
    AppEvent,
    ConnectionErrorEvent,
    Event,
    MessageEvent,
    ResetEvent,
    TimerEvent,
)
from .messages import Message
from .state import NodeState


class Protocol(abc.ABC):
    """Base class for distributed services under test.

    Subclasses implement the handler methods; each handler receives the
    execution context, the node's mutable state, and the event payload, and
    mutates the state in place while emitting messages/timer operations
    through the context.
    """

    #: Human-readable service name ("RandTree", "Chord", ...).
    name: str = "protocol"

    # -- state construction ----------------------------------------------------

    @abc.abstractmethod
    def initial_state(self, addr: Address) -> NodeState:
        """Fresh local state for a node that just booted (or reset)."""

    def on_start(self, ctx: HandlerContext, state: NodeState) -> None:
        """Called once when the node (re)starts; schedule initial timers here."""

    def reset_state(self, addr: Address, old_state: NodeState) -> NodeState:
        """State of a node immediately after a silent reset.

        The default wipes everything (volatile state is lost).  Protocols
        that keep data on stable storage (e.g. a Paxos acceptor persisting
        its promises) override this to carry the persisted fields over from
        ``old_state`` — which is exactly the behaviour whose absence
        constitutes the paper's injected Paxos ``bug2``.
        """
        return self.initial_state(addr)

    # -- handlers ---------------------------------------------------------------

    @abc.abstractmethod
    def handle_message(self, ctx: HandlerContext, state: NodeState, message: Message) -> None:
        """Process an incoming service message."""

    def handle_timer(self, ctx: HandlerContext, state: NodeState, timer: str) -> None:
        """Process expiry of the named timer."""

    def handle_app(self, ctx: HandlerContext, state: NodeState, call: str,
                   payload: Mapping[str, Any]) -> None:
        """Process an application call (e.g. ``join``, ``download``)."""

    def handle_connection_error(self, ctx: HandlerContext, state: NodeState,
                                peer: Address) -> None:
        """Process a transport error (broken TCP connection) with ``peer``."""

    # -- structure the CrystalBall controller relies on -------------------------

    def neighbors(self, state: NodeState) -> list[Address]:
        """The node's snapshot neighbourhood (Section 3.1).

        Default implementation returns an empty list; protocols override it
        to expose parent/children/successors/peers.
        """
        return []

    def timer_specs(self) -> Mapping[str, float]:
        """Declared timers and their default periods (simulated seconds)."""
        return {}

    def app_calls(self, state: NodeState) -> Sequence[tuple[str, Mapping[str, Any]]]:
        """Application calls the model checker may consider at ``state``.

        These correspond to the "application calls" part of the paper's
        internal-action set ``A``.  Default: none.
        """
        return []

    # -- generic event dispatch --------------------------------------------------

    def execute(self, ctx: HandlerContext, state: NodeState, event: Event) -> NodeState:
        """Dispatch ``event`` to the appropriate handler.

        Returns the state object that should be the node's state after the
        event (for :class:`ResetEvent` this is a fresh initial state, for
        everything else the same mutated ``state`` object).
        """
        if isinstance(event, MessageEvent):
            self.handle_message(ctx, state, event.message)
            return state
        if isinstance(event, TimerEvent):
            self.handle_timer(ctx, state, event.timer)
            return state
        if isinstance(event, AppEvent):
            self.handle_app(ctx, state, event.call, event.payload)
            return state
        if isinstance(event, ConnectionErrorEvent):
            self.handle_connection_error(ctx, state, event.peer)
            return state
        if isinstance(event, ResetEvent):
            fresh = self.reset_state(event.node, state)
            self.on_start(ctx, fresh)
            return fresh
        raise TypeError(f"unknown event type: {event!r}")

    # -- misc --------------------------------------------------------------------

    def describe(self) -> str:
        return f"<Protocol {self.name}>"
