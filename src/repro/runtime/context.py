"""Handler execution context.

Protocol handlers are written once and executed in three places: the live
runtime (discrete-event simulator), the consequence-prediction model checker,
and the immediate safety check.  A :class:`HandlerContext` decouples the
handler code from its host: handlers call ``ctx.send`` / ``ctx.set_timer`` /
``ctx.close_connection`` and the host interprets the collected effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from .address import Address
from .messages import Message, Transport


@dataclass
class TimerOp:
    """A timer arm/cancel request produced by a handler."""

    action: str  # "set" or "cancel"
    name: str
    delay: float = 0.0


@dataclass
class HandlerContext:
    """Collects the side effects of one handler execution.

    Attributes
    ----------
    self_addr:
        Address of the node the handler runs on.
    now:
        Current simulated time (0.0 inside the model checker, where time is
        abstracted away).
    rng:
        Deterministic RNG.  Handlers must use this instead of the global
        ``random`` module so that erroneous paths can be replayed
        (Section 4, "we deterministically replay pseudo-random number
        generation").
    """

    self_addr: Address
    now: float = 0.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    sent: list[Message] = field(default_factory=list)
    timer_ops: list[TimerOp] = field(default_factory=list)
    closed_connections: list[Address] = field(default_factory=list)
    upcalls: list[tuple[str, Mapping[str, Any]]] = field(default_factory=list)

    def send(
        self,
        dst: Address,
        mtype: str,
        payload: Mapping[str, Any] | None = None,
        *,
        transport: Transport = Transport.TCP,
    ) -> Message:
        """Queue a message for transmission to ``dst``."""
        message = Message(
            mtype=mtype,
            src=self.self_addr,
            dst=dst,
            payload=dict(payload or {}),
            transport=transport,
        )
        self.sent.append(message)
        return message

    def set_timer(self, name: str, delay: float = 1.0) -> None:
        """(Re-)arm the named timer to fire after ``delay`` simulated seconds."""
        self.timer_ops.append(TimerOp(action="set", name=name, delay=delay))

    def cancel_timer(self, name: str) -> None:
        """Cancel the named timer if armed."""
        self.timer_ops.append(TimerOp(action="cancel", name=name))

    def close_connection(self, peer: Address) -> None:
        """Tear down the TCP connection with ``peer`` (sends a RST)."""
        self.closed_connections.append(peer)

    def deliver_upcall(self, name: str, payload: Mapping[str, Any] | None = None) -> None:
        """Deliver an upcall to the local application (e.g. block received)."""
        self.upcalls.append((name, dict(payload or {})))

    # -- helpers used by hosts -------------------------------------------------

    def armed_timers(self, current: frozenset[str]) -> frozenset[str]:
        """Apply the collected timer operations to ``current`` armed set."""
        timers = set(current)
        for op in self.timer_ops:
            if op.action == "set":
                timers.add(op.name)
            else:
                timers.discard(op.name)
        return frozenset(timers)
