"""Network model for the live runtime.

The paper evaluates CrystalBall on ModelNet with a 5,000-node INET topology:
wide-area latencies, random cross-traffic loss, and constrained access
links.  :class:`NetworkModel` captures the properties the experiments depend
on — per-pair one-way latency, per-link loss probability, and explicit
partitions (used to script the Paxos scenarios of Figure 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .address import Address


@dataclass
class NetworkModel:
    """Latency / loss / partition model used by the simulator.

    Parameters
    ----------
    latency_fn:
        Optional callable ``(src, dst, rng) -> one-way latency in seconds``.
        When omitted, latencies are drawn uniformly around ``default_rtt``.
    loss_fn:
        Optional callable ``(src, dst, rng) -> loss probability`` for UDP
        messages (TCP is modelled as reliable while the connection is up).
    default_rtt:
        Mean round-trip time used by the default latency model; the paper's
        INET topology averages 130 ms.
    """

    latency_fn: Optional[Callable[[Address, Address, random.Random], float]] = None
    loss_fn: Optional[Callable[[Address, Address, random.Random], float]] = None
    default_rtt: float = 0.130
    jitter: float = 0.2
    partitions: set[frozenset[Address]] = field(default_factory=set)
    #: probability that a TCP RST emitted by a resetting node is lost, which
    #: is precisely the trigger of the RandTree bug in Figure 2.
    rst_loss_probability: float = 0.2

    def latency(self, src: Address, dst: Address, rng: random.Random) -> float:
        """One-way latency from ``src`` to ``dst``."""
        if src == dst:
            return 1e-4
        if self.latency_fn is not None:
            return max(1e-4, self.latency_fn(src, dst, rng))
        base = self.default_rtt / 2.0
        return max(1e-4, base * (1.0 + rng.uniform(-self.jitter, self.jitter)))

    def loss_probability(self, src: Address, dst: Address, rng: random.Random) -> float:
        """Cross-traffic loss probability for a packet from ``src`` to ``dst``."""
        if self.loss_fn is not None:
            return min(1.0, max(0.0, self.loss_fn(src, dst, rng)))
        # ModelNet cross-traffic emulation: uniform in [0.001, 0.005] per link.
        return rng.uniform(0.001, 0.005)

    # -- partitions -------------------------------------------------------------

    def partition(self, a: Address, b: Address) -> None:
        """Block all traffic between ``a`` and ``b`` (both directions)."""
        self.partitions.add(frozenset((a, b)))

    def heal(self, a: Address, b: Address) -> None:
        """Remove the partition between ``a`` and ``b`` if present."""
        self.partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self.partitions.clear()

    def isolate(self, node: Address, others: Iterable[Address]) -> None:
        """Partition ``node`` from every address in ``others``."""
        for other in others:
            if other != node:
                self.partition(node, other)

    def reachable(self, src: Address, dst: Address) -> bool:
        """True unless a partition blocks the pair."""
        return frozenset((src, dst)) not in self.partitions
