"""Network model for the live runtime.

The paper evaluates CrystalBall on ModelNet with a 5,000-node INET topology:
wide-area latencies, random cross-traffic loss, and constrained access
links.  :class:`NetworkModel` captures the properties the experiments depend
on — per-pair one-way latency, per-link loss probability, and explicit
partitions (used to script the Paxos scenarios of Figure 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .address import Address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> runtime)
    from ..faults.base import MessageInterceptor
    from .messages import Message


@dataclass
class DeliveryPlan:
    """A batch of planned message deliveries behind one scheduler entry.

    A broadcast (snapshot-request fan-out, workload burst) used to push one
    heap entry per recipient; a plan holds the whole batch sorted by
    delivery time and the simulator cursors through it, re-arming a single
    heap entry at the next due time.  ``deliveries`` entries are
    ``(time, delivery_id, message)``.
    """

    deliveries: list[tuple[float, int, "Message"]]
    cursor: int = 0

    @classmethod
    def from_deliveries(
        cls, deliveries: list[tuple[float, int, "Message"]]
    ) -> "DeliveryPlan":
        """Build a plan; entries are ordered by (time, enqueue order)."""
        return cls(deliveries=sorted(deliveries, key=lambda d: (d[0], d[1])))

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.deliveries)

    def next_time(self) -> float:
        return self.deliveries[self.cursor][0]

    def pop_due(self) -> tuple[int, "Message"]:
        """Advance past the next delivery, returning (delivery_id, message)."""
        _, did, message = self.deliveries[self.cursor]
        self.cursor += 1
        return did, message

    def __len__(self) -> int:
        return len(self.deliveries) - self.cursor


@dataclass
class NetworkModel:
    """Latency / loss / partition model used by the simulator.

    Parameters
    ----------
    latency_fn:
        Optional callable ``(src, dst, rng) -> one-way latency in seconds``.
        When omitted, latencies are drawn uniformly around ``default_rtt``.
    loss_fn:
        Optional callable ``(src, dst, rng) -> loss probability`` for UDP
        messages (TCP is modelled as reliable while the connection is up).
    default_rtt:
        Mean round-trip time used by the default latency model; the paper's
        INET topology averages 130 ms.
    """

    latency_fn: Optional[Callable[[Address, Address, random.Random], float]] = None
    loss_fn: Optional[Callable[[Address, Address, random.Random], float]] = None
    default_rtt: float = 0.130
    jitter: float = 0.2
    partitions: set[frozenset[Address]] = field(default_factory=set)
    #: probability that a TCP RST emitted by a resetting node is lost, which
    #: is precisely the trigger of the RandTree bug in Figure 2.
    rst_loss_probability: float = 0.2
    #: Fault-injection interceptors (see :mod:`repro.faults`): each may
    #: transform the delivery plan of every transmitted message.
    interceptors: list["MessageInterceptor"] = field(default_factory=list)
    #: Reference counts per partitioned pair, so overlapping partitions
    #: (two fault windows cutting a shared link) compose: a link is only
    #: restored when every cut of it has been healed.
    _partition_refs: dict[frozenset[Address], int] = field(
        default_factory=dict, init=False, repr=False)

    def latency(self, src: Address, dst: Address, rng: random.Random) -> float:
        """One-way latency from ``src`` to ``dst``."""
        if src == dst:
            return 1e-4
        if self.latency_fn is not None:
            return max(1e-4, self.latency_fn(src, dst, rng))
        base = self.default_rtt / 2.0
        return max(1e-4, base * (1.0 + rng.uniform(-self.jitter, self.jitter)))

    def loss_probability(self, src: Address, dst: Address, rng: random.Random) -> float:
        """Cross-traffic loss probability for a packet from ``src`` to ``dst``."""
        if self.loss_fn is not None:
            return min(1.0, max(0.0, self.loss_fn(src, dst, rng)))
        # ModelNet cross-traffic emulation: uniform in [0.001, 0.005] per link.
        return rng.uniform(0.001, 0.005)

    # -- fault interceptors -----------------------------------------------------

    def plan_deliveries(self, message: "Message", latency: float,
                        rng: random.Random) -> list[float]:
        """Delivery plan for one transmitted message.

        The plan is a list of delivery latencies — one entry per copy that
        will arrive (an empty plan drops the message).  Without installed
        interceptors the plan is just ``[latency]`` and no RNG state is
        consumed, so fault-free runs are bit-identical to the pre-fault
        runtime.
        """
        plan = [latency]
        for interceptor in self.interceptors:
            plan = interceptor.transform(message, plan, rng)
        return plan

    def rewrite_message(self, message: "Message",
                        rng: random.Random) -> "Message":
        """Give every interceptor a chance to replace the message content.

        Byzantine faults (tampering, spoofing, equivocation) act here; the
        default :meth:`~repro.faults.base.MessageInterceptor.rewrite` is
        the identity and consumes no RNG state, so benign fault schedules
        are unchanged.
        """
        for interceptor in self.interceptors:
            message = interceptor.rewrite(message, rng)
        return message

    # -- partitions -------------------------------------------------------------

    def partition(self, a: Address, b: Address) -> None:
        """Block all traffic between ``a`` and ``b`` (both directions).

        Cuts are reference-counted: cutting the same pair twice (two
        overlapping fault windows) requires two heals to restore it.
        """
        pair = frozenset((a, b))
        self._partition_refs[pair] = self._partition_refs.get(pair, 0) + 1
        self.partitions.add(pair)

    def heal(self, a: Address, b: Address) -> None:
        """Undo one cut of the pair; restores the link when no cut remains."""
        pair = frozenset((a, b))
        remaining = self._partition_refs.get(pair, 0) - 1
        if remaining > 0:
            self._partition_refs[pair] = remaining
            return
        self._partition_refs.pop(pair, None)
        self.partitions.discard(pair)

    def heal_all(self) -> None:
        """Remove every partition regardless of outstanding cuts."""
        self.partitions.clear()
        self._partition_refs.clear()

    def isolate(self, node: Address, others: Iterable[Address]) -> None:
        """Partition ``node`` from every address in ``others``."""
        for other in others:
            if other != node:
                self.partition(node, other)

    def reachable(self, src: Address, dst: Address) -> bool:
        """True unless a partition blocks the pair."""
        return frozenset((src, dst)) not in self.partitions
