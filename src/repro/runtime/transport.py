"""Connection tracking for TCP-like transports.

The evaluated bugs hinge on TCP failure semantics: silent node resets, lost
RST packets, and error upcalls when a stale connection is used.  The
:class:`ConnectionTable` records, per node, which peers it believes it has an
established connection with and the peer *incarnation* observed at
establishment time; a peer that has reset since then has a newer incarnation
and any use of the stale connection produces a transport error.

Bullet' additionally depends on the behaviour of a bounded, non-blocking
send queue (MaceTcpTransport): when the queue is full new data is refused,
which is what exposes the shadow-file-map bug.  :class:`SendQueue` models
that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .address import Address
from .messages import Message


@dataclass
class ConnectionTable:
    """Per-node table of established TCP connections."""

    #: peer address -> peer incarnation number recorded when the connection
    #: was established.
    peers: dict[Address, int] = field(default_factory=dict)

    def is_connected(self, peer: Address) -> bool:
        return peer in self.peers

    def establish(self, peer: Address, peer_incarnation: int) -> None:
        self.peers[peer] = peer_incarnation

    def recorded_incarnation(self, peer: Address) -> Optional[int]:
        return self.peers.get(peer)

    def close(self, peer: Address) -> bool:
        """Drop the connection entry; returns True if it existed."""
        return self.peers.pop(peer, None) is not None

    def close_all(self) -> list[Address]:
        """Drop every connection; returns the list of peers affected."""
        peers = list(self.peers)
        self.peers.clear()
        return peers

    def connected_peers(self) -> list[Address]:
        return list(self.peers)


@dataclass
class SendQueue:
    """A bounded non-blocking send queue in front of a TCP connection.

    ``offer`` either accepts the message (True) or refuses it because the
    queue is full (False) — it never blocks, mirroring MaceTcpTransport.
    """

    capacity_bytes: int = 65536
    queued_bytes: int = 0
    queued_messages: int = 0
    refused_messages: int = 0

    def offer(self, message: Message) -> bool:
        """Try to enqueue ``message``; returns False when the queue is full."""
        size = message.size_bytes()
        if self.queued_bytes + size > self.capacity_bytes:
            self.refused_messages += 1
            return False
        self.queued_bytes += size
        self.queued_messages += 1
        return True

    def drain(self, budget_bytes: int) -> int:
        """Drain up to ``budget_bytes`` from the queue; returns bytes drained."""
        drained = min(self.queued_bytes, max(0, budget_bytes))
        self.queued_bytes -= drained
        if self.queued_bytes == 0:
            self.queued_messages = 0
        return drained

    @property
    def is_full(self) -> bool:
        return self.queued_bytes >= self.capacity_bytes
