"""Network messages exchanged by protocol state machines.

A message corresponds to the ``(N, M)`` pairs of the paper's system model
(Figure 4): a destination node plus message content, where the content
carries the sender and an arbitrary payload.  Messages also piggyback the
sender's checkpoint number, which drives the consistent-snapshot algorithm
of Section 2.3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Mapping

from .address import Address
from .serialization import estimate_size, freeze


class Transport(Enum):
    """Transport used to carry a message.

    TCP connections can break and signal errors back to the protocol
    (Section 3.3 relies on connection resets as a steering action); UDP
    messages are fire-and-forget.
    """

    TCP = "tcp"
    UDP = "udp"


_msg_counter = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """A protocol-level message.

    Attributes
    ----------
    mtype:
        Message type name (e.g. ``"Join"``, ``"UpdateSibling"``).
    src, dst:
        Sender and destination addresses.
    payload:
        Message body.  Stored as a plain mapping; :meth:`signature` produces
        a canonical hashable form for model checking.
    transport:
        TCP or UDP semantics.
    checkpoint_number:
        The sender's checkpoint number at send time (Section 2.3).  Control
        messages of the checkpoint manager itself do not advance it.
    control:
        True for CrystalBall control-plane messages (checkpoint requests and
        responses); these are routed to the controller, not the service.
    msg_id:
        Unique id used by the live runtime for tracing; ignored by state
        hashing so that model checking does not distinguish otherwise
        identical messages.
    """

    mtype: str
    src: Address
    dst: Address
    payload: Mapping[str, Any] = field(default_factory=dict)
    transport: Transport = Transport.TCP
    checkpoint_number: int = 0
    control: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_counter), compare=False)
    _sig_cache: Any = field(default=None, repr=False, compare=False, init=False)

    def signature(self) -> tuple:
        """Canonical hashable identity used by the model checker.

        Cached: payloads are never mutated after construction, and one
        in-flight message is shared by every search state that carries it.
        """
        if self._sig_cache is None:
            object.__setattr__(self, "_sig_cache", (
                self.mtype,
                freeze(self.src),
                freeze(self.dst),
                freeze(dict(self.payload)),
                self.transport.value,
            ))
        return self._sig_cache

    def with_checkpoint_number(self, cn: int) -> "Message":
        """Copy of this message stamped with checkpoint number ``cn``."""
        return replace(self, checkpoint_number=cn)

    def size_bytes(self) -> int:
        """Approximate wire size, for bandwidth accounting (cached)."""
        cached = self.__dict__.get("_size")
        if cached is None:
            cached = 28 + estimate_size(dict(self.payload))
            object.__setattr__(self, "_size", cached)
        return cached

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload."""
        return self.payload.get(key, default)

    def __str__(self) -> str:
        return f"{self.mtype}({self.src}->{self.dst})"
