"""Canonical freezing, hashing and size accounting for node state.

Model checking needs a stable, hashable signature of arbitrary protocol
state (Figure 5/8 store ``hash(state)`` in the ``explored`` set), and the
checkpoint manager needs to estimate how many bytes a checkpoint occupies on
the wire (Section 3.1, "Managing Bandwidth Consumption").  Both are built on
:func:`freeze`, which converts nested Python containers into a canonical
immutable form.
"""

from __future__ import annotations

import dataclasses
import pickle
import zlib
from typing import Any

Frozen = Any  # a hashable, canonical representation


def freeze(value: Any) -> Frozen:
    """Return a canonical hashable representation of ``value``.

    Dictionaries become sorted tuples of (key, value) pairs, sets become
    sorted tuples, lists/tuples become tuples, dataclasses become
    ``(class name, sorted field tuples)``.  The result is deterministic
    across runs, which keeps model-checker hashes reproducible.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, dict):
        return tuple(sorted(((freeze(k), freeze(v)) for k, v in value.items()),
                            key=repr))
    if isinstance(value, (set, frozenset)):
        return ("__set__",) + tuple(sorted((freeze(v) for v in value), key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Immutable dataclasses (e.g. Address) expose a cached frozen
        # form; computing it once matters because the model checker
        # freezes the same value objects for every state hash.
        frozen_form = getattr(value, "frozen", None)
        if frozen_form is not None:
            return frozen_form()
        fields = tuple(
            (f.name, freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return (type(value).__name__,) + fields
    if hasattr(value, "signature"):
        return value.signature()
    # Fall back to repr for anything exotic; still deterministic for
    # well-behaved value types.
    return repr(value)


def stable_hash(value: Any) -> int:
    """A deterministic hash of ``value`` via its frozen form."""
    return hash(freeze(value))


def estimate_size(value: Any) -> int:
    """Estimate the serialized size of ``value`` in bytes.

    Uses :mod:`pickle` as the stand-in serializer for Mace's checkpoint
    encoding.  Used for checkpoint bandwidth accounting only.
    """
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return len(repr(value).encode("utf-8"))


def to_compact_bytes(value: Any) -> bytes:
    """The compact-bytes encoding: pickle + zlib.

    This is the repository's one wire/checkpoint byte format: the size
    accounting below charges for it, and the deployed-mode transport
    (:mod:`repro.backends.wire`) ships messages — checkpoint payloads
    included — as exactly these bytes inside length-prefixed frames.
    """
    raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return zlib.compress(raw, level=6)


def from_compact_bytes(blob: bytes) -> Any:
    """Decode a :func:`to_compact_bytes` payload back into the value."""
    return pickle.loads(zlib.decompress(blob))


def compressed_size(value: Any) -> int:
    """Estimate the size of ``value`` after checkpoint compression.

    The paper's checkpoint manager compresses checkpoints with LZW
    (Section 4); we account for compression with zlib, which has comparable
    behaviour on the small, repetitive state dumps involved.
    """
    try:
        return len(to_compact_bytes(value))
    except Exception:
        return len(zlib.compress(repr(value).encode("utf-8"), level=6))


def diff_size(old: Any, new: Any) -> int:
    """Size of transmitting ``new`` given the peer already has ``old``.

    Models the "diff" optimisation of Section 3.1: identical checkpoints
    cost a constant acknowledgement, otherwise we charge the compressed
    size of the new checkpoint (a conservative upper bound on a real delta
    encoding).  :func:`delta_size` is the real delta encoding.
    """
    if freeze(old) == freeze(new):
        return 16  # just a "nothing changed" header
    return compressed_size(new)


def delta_fields(old: Any, new: Any) -> dict[str, Any] | None:
    """Top-level dataclass fields of ``new`` that differ from ``old``.

    The structural unit of the delta encoding: two checkpoints of the same
    protocol state type usually differ in a couple of fields (a routing
    table entry, a counter), so shipping only the changed fields keeps
    control-plane bytes flat as the untouched bulk of the state grows.
    Returns ``None`` when the values are not field-wise comparable (not
    dataclasses, or of different types) and the caller must fall back to a
    full transfer.
    """
    if not (dataclasses.is_dataclass(old) and not isinstance(old, type)):
        return None
    if type(old) is not type(new):
        return None
    changed: dict[str, Any] = {}
    for f in dataclasses.fields(new):
        if freeze(getattr(old, f.name)) != freeze(getattr(new, f.name)):
            changed[f.name] = getattr(new, f.name)
    return changed


def delta_size(old: Any, new: Any) -> int:
    """Bytes to ship ``new`` to a peer that already holds ``old`` under
    delta encoding.

    Identical values cost the constant acknowledgement header; otherwise
    the charge is a header plus the compressed changed-field subset,
    capped at the full compressed size (a pathological delta never costs
    more than resending everything).
    """
    if freeze(old) == freeze(new):
        return 16
    changed = delta_fields(old, new)
    if changed is None:
        return compressed_size(new)
    return min(16 + compressed_size(changed), compressed_size(new))
