"""Base class for protocol node state.

Protocol state must be (a) deep-copyable, because the model checker and the
immediate safety check speculatively execute handlers on copies, (b)
hashable in a canonical way, because explored-state sets store state hashes,
and (c) size-measurable, for checkpoint bandwidth accounting.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any

from .serialization import compressed_size, estimate_size, freeze


@dataclasses.dataclass
class NodeState:
    """Base class for the local state of one protocol instance.

    Subclasses are ordinary (mutable) dataclasses; handlers mutate them in
    place.  The runtime and the model checker use :meth:`clone` whenever they
    need an independent copy.
    """

    def clone(self) -> "NodeState":
        """Deep copy of this state (checkpointing, speculative execution)."""
        return copy.deepcopy(self)

    def signature(self) -> tuple:
        """Canonical hashable representation of this state."""
        fields = tuple(
            (f.name, freeze(getattr(self, f.name)))
            for f in dataclasses.fields(self)
        )
        return (type(self).__name__,) + fields

    def state_hash(self) -> int:
        """Deterministic hash of :meth:`signature`."""
        return hash(self.signature())

    def size_bytes(self) -> int:
        """Approximate serialized size of this state."""
        return estimate_size(self)

    def compressed_bytes(self) -> int:
        """Approximate size after checkpoint compression (Section 4)."""
        return compressed_size(self)

    def summary(self) -> dict[str, Any]:
        """A small human-readable dict used in traces and examples."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
