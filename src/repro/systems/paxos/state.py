"""Paxos node state (Section 5.4.2).

Every node plays all three roles (proposer, acceptor, learner), as in the
paper's experiments.  Round numbers are ``(counter, host)`` pairs so they
are totally ordered and unique per proposer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...runtime.address import Address
from ...runtime.state import NodeState

Round = tuple[int, int]

#: Sentinel for "no round yet"; smaller than every real round.
NO_ROUND: Round = (0, 0)


@dataclass
class PaxosState(NodeState):
    """Local state of one Paxos participant."""

    addr: Address
    peers: tuple[Address, ...] = ()

    # -- proposer ---------------------------------------------------------------
    #: client value this node wants to get chosen (None = no pending proposal).
    pending_proposal: Optional[int] = None
    round_counter: int = 0
    current_round: Round = NO_ROUND
    proposing: bool = False
    accept_sent: bool = False
    #: promises received for ``current_round``: peer -> (accepted_round, value).
    promises: dict[Address, tuple[Round, Optional[int]]] = field(default_factory=dict)
    #: accepted (round, value) carried by the most recent promise — the
    #: quantity the buggy leader of ``bug1`` consults.
    last_promise: tuple[Round, Optional[int]] = (NO_ROUND, None)

    # -- acceptor ---------------------------------------------------------------
    promised_round: Round = NO_ROUND
    accepted_round: Round = NO_ROUND
    accepted_value: Optional[int] = None
    #: the promise as written to stable storage; with the paper's ``bug2``
    #: this is never updated, so the promise does not survive a reset.
    persisted_promised_round: Round = NO_ROUND

    # -- learner ----------------------------------------------------------------
    #: value -> set of acceptors from which a Learn was received.
    learns: dict[int, set[Address]] = field(default_factory=dict)
    #: every value this node has observed as chosen (must never exceed one).
    chosen_values: set[int] = field(default_factory=set)

    def majority(self) -> int:
        return len(self.peers) // 2 + 1

    def record_learn(self, value: int, acceptor: Address) -> bool:
        """Record a Learn message; returns True when ``value`` becomes chosen."""
        supporters = self.learns.setdefault(value, set())
        supporters.add(acceptor)
        if len(supporters) >= self.majority():
            self.chosen_values.add(value)
            return True
        return False
