"""Paxos: fault-tolerant consensus (Section 5.4.2)."""

from .properties import (
    ACCEPTED_IMPLIES_PROMISED,
    ALL_PROPERTIES,
    AT_MOST_ONE_VALUE_CHOSEN,
    LOCAL_AGREEMENT,
)
from .protocol import ACCEPT, LEARN, PREPARE, PROMISE, PROPOSE_TIMER, Paxos, PaxosConfig
from .scenarios import Figure13Scenario, PaxosRunResult
from .state import NO_ROUND, PaxosState

__all__ = [
    "ACCEPT",
    "LEARN",
    "PREPARE",
    "PROMISE",
    "PROPOSE_TIMER",
    "Paxos",
    "PaxosConfig",
    "ACCEPTED_IMPLIES_PROMISED",
    "ALL_PROPERTIES",
    "AT_MOST_ONE_VALUE_CHOSEN",
    "LOCAL_AGREEMENT",
    "Figure13Scenario",
    "PaxosRunResult",
    "NO_ROUND",
    "PaxosState",
]
