"""Safety properties for Paxos (Section 5.4.2).

The property installed in the paper's experiments is the original Paxos
safety property: at most one value can be chosen, across all nodes.
Registered under the ``paxos.`` namespace in the global property registry;
``ALL_PROPERTIES`` keeps the historical check order.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...mc.global_state import GlobalState
from ...properties import (
    SafetyProperty,
    leads_to,
    node_property,
    register_properties,
    typed_check,
    typed_states,
)
from ...runtime.address import Address
from .state import PaxosState


def _agreement(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
    chosen: dict[int, list[Address]] = {}
    for addr, node_state in typed_states(state, PaxosState):
        for value in node_state.chosen_values:
            chosen.setdefault(value, []).append(addr)
    if len(chosen) > 1:
        detail = ", ".join(
            f"value {value} chosen at {sorted(str(a) for a in addrs)}"
            for value, addrs in sorted(chosen.items())
        )
        yield None, f"more than one value chosen: {detail}"


@typed_check(PaxosState)
def _local_agreement(addr: Address, state: PaxosState,
                     timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if len(state.chosen_values) > 1:
        yield (f"node observed multiple chosen values: "
               f"{sorted(state.chosen_values)}")


@typed_check(PaxosState)
def _accepted_implies_promised(addr: Address, state: PaxosState,
                               timers: frozenset[str],
                               gs: GlobalState) -> Iterable[str]:
    if state.accepted_value is not None and state.accepted_round > state.promised_round:
        yield (f"accepted round {state.accepted_round} exceeds promised round "
               f"{state.promised_round}")


AT_MOST_ONE_VALUE_CHOSEN = SafetyProperty(
    "paxos.at_most_one_value_chosen", _agreement,
    "At most one value can be chosen across all nodes (the original Paxos "
    "safety property).",
    severity="critical", tags=("consensus", "agreement"))

LOCAL_AGREEMENT = node_property(
    "paxos.local_agreement", _local_agreement,
    "A single learner never observes two different chosen values.",
    severity="critical", tags=("consensus", "agreement"))

ACCEPTED_IMPLIES_PROMISED = node_property(
    "paxos.accepted_implies_promised", _accepted_implies_promised,
    "An acceptor's accepted round never exceeds its promised round.",
    severity="error", tags=("consensus",))


def _proposal_pending(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, PaxosState)]
    return any(s.proposing or s.pending_proposal is not None for s in states)


def _some_value_chosen(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, PaxosState)]
    return any(s.chosen_values for s in states)


#: Bounded liveness (opt-in): an active proposal reaches a decision.
EVENTUALLY_CHOSEN = leads_to(
    "paxos.eventually_chosen",
    _proposal_pending, _some_value_chosen, within=45.0,
    description="Once some node is proposing, a value must be chosen "
                "somewhere within 45 s of simulated time.",
    tags=("consensus",))

#: ``paxos.agreement`` — the same predicate as AT_MOST_ONE_VALUE_CHOSEN
#: under the classic name, registered as the falsification target of the
#: byzantine attack tooling (``python -m repro attack paxos --property
#: paxos.agreement``).  Not part of the default check set, so regular live
#: runs don't report the same violation twice.
AGREEMENT = SafetyProperty(
    "paxos.agreement", _agreement,
    "Agreement: at most one value is ever chosen (alias of "
    "paxos.at_most_one_value_chosen used as an attack target).",
    severity="critical", tags=("consensus", "agreement", "attack-target"))

ALL_PROPERTIES: list[SafetyProperty] = [
    AT_MOST_ONE_VALUE_CHOSEN,
    LOCAL_AGREEMENT,
    ACCEPTED_IMPLIES_PROMISED,
]

register_properties(ALL_PROPERTIES + [EVENTUALLY_CHOSEN, AGREEMENT])
