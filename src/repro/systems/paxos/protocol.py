"""Paxos protocol implementation (Section 5.4.2).

A minimal single-instance Paxos in which every node plays proposer,
acceptor and learner (as in the paper's baseline Mace Paxos).  Two bugs can
be injected, matching the paper's evaluation:

``bug1`` (from the WiDS-checker study [28])
    When the leader has gathered a majority of promises it builds the Accept
    request from the value of the *last* Promise received instead of the
    Promise with the highest accepted round number.
``bug2`` (inspired by "Paxos made live" [4])
    An acceptor does not write its promise to stable storage, so the promise
    does not survive a crash-and-reboot.

The corresponding ``inject_bug1`` / ``inject_bug2`` flags default to False
(correct behaviour); the evaluation enables them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message
from ...runtime.protocol import Protocol
from .state import NO_ROUND, PaxosState, Round

PREPARE = "Prepare"
PROMISE = "Promise"
ACCEPT = "Accept"
LEARN = "Learn"

PROPOSE_TIMER = "propose_retry"


@dataclass
class PaxosConfig:
    """Paxos membership and fault-injection switches."""

    peers: tuple[Address, ...] = ()
    propose_retry_period: float = 15.0
    #: Leader picks the value of the last promise instead of the
    #: highest-round one (safety bug).
    inject_bug1: bool = False
    #: Acceptor promises are not written to stable storage and are lost on
    #: reset (safety bug).
    inject_bug2: bool = False


class Paxos(Protocol):
    """Single-instance Paxos with all roles on every node."""

    name = "Paxos"

    def __init__(self, config: Optional[PaxosConfig] = None) -> None:
        self.config = config or PaxosConfig()

    # -- state -------------------------------------------------------------------

    def initial_state(self, addr: Address) -> PaxosState:
        return PaxosState(addr=addr, peers=tuple(self.config.peers))

    def reset_state(self, addr: Address, old_state: PaxosState) -> PaxosState:
        fresh = self.initial_state(addr)
        if isinstance(old_state, PaxosState) and not self.config.inject_bug2:
            # Correct behaviour: the acceptor's promise and accepted value
            # survive the reboot because they were written to stable storage.
            fresh.promised_round = old_state.persisted_promised_round
            fresh.persisted_promised_round = old_state.persisted_promised_round
            fresh.accepted_round = old_state.accepted_round
            fresh.accepted_value = old_state.accepted_value
        return fresh

    def timer_specs(self) -> Mapping[str, float]:
        return {PROPOSE_TIMER: self.config.propose_retry_period}

    def neighbors(self, state: PaxosState) -> list[Address]:
        return sorted(a for a in state.peers if a != state.addr)

    def app_calls(self, state: PaxosState) -> Sequence[tuple[str, Mapping[str, Any]]]:
        if state.pending_proposal is not None and not state.proposing:
            return [("propose", {"value": state.pending_proposal})]
        return []

    # -- application interface ------------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: PaxosState, call: str,
                   payload: Mapping[str, Any]) -> None:
        if call == "submit":
            state.pending_proposal = payload.get("value")
        elif call == "propose":
            value = payload.get("value", state.pending_proposal)
            if value is not None:
                state.pending_proposal = value
                self._start_round(ctx, state)

    def handle_timer(self, ctx: HandlerContext, state: PaxosState, timer: str) -> None:
        if timer == PROPOSE_TIMER and state.pending_proposal is not None \
                and not state.chosen_values:
            self._start_round(ctx, state)

    def _start_round(self, ctx: HandlerContext, state: PaxosState) -> None:
        state.round_counter += 1
        state.current_round = (state.round_counter, state.addr.host)
        state.proposing = True
        state.accept_sent = False
        state.promises = {}
        state.last_promise = (NO_ROUND, None)
        for peer in state.peers:
            ctx.send(peer, PREPARE, {"round": state.current_round})

    # -- message handlers --------------------------------------------------------------

    def handle_message(self, ctx: HandlerContext, state: PaxosState,
                       message: Message) -> None:
        handlers = {
            PREPARE: self._on_prepare,
            PROMISE: self._on_promise,
            ACCEPT: self._on_accept,
            LEARN: self._on_learn,
        }
        handler = handlers.get(message.mtype)
        if handler is not None:
            handler(ctx, state, message)

    def _on_prepare(self, ctx: HandlerContext, state: PaxosState,
                    message: Message) -> None:
        round_: Round = tuple(message.get("round"))
        if round_ <= state.promised_round:
            return
        state.promised_round = round_
        if not self.config.inject_bug2:
            state.persisted_promised_round = round_
        ctx.send(message.src, PROMISE,
                 {"round": round_,
                  "accepted_round": state.accepted_round,
                  "accepted_value": state.accepted_value})

    def _on_promise(self, ctx: HandlerContext, state: PaxosState,
                    message: Message) -> None:
        round_: Round = tuple(message.get("round"))
        if not state.proposing or round_ != state.current_round or state.accept_sent:
            return
        accepted_round: Round = tuple(message.get("accepted_round", NO_ROUND))
        accepted_value = message.get("accepted_value")
        state.promises[message.src] = (accepted_round, accepted_value)
        state.last_promise = (accepted_round, accepted_value)

        if len(state.promises) < state.majority():
            return

        if self.config.inject_bug1:
            # BUG 1: use the value reported by the *last* Promise received.
            _, value = state.last_promise
        else:
            best_round, value = max(
                state.promises.values(),
                key=lambda item: item[0],
            )
            if best_round == NO_ROUND:
                value = None
        if value is None:
            value = state.pending_proposal
        if value is None:
            return
        state.accept_sent = True
        for peer in state.peers:
            ctx.send(peer, ACCEPT, {"round": state.current_round, "value": value})

    def _on_accept(self, ctx: HandlerContext, state: PaxosState,
                   message: Message) -> None:
        round_: Round = tuple(message.get("round"))
        value: int = message.get("value")
        if round_ < state.promised_round:
            return
        state.promised_round = round_
        if not self.config.inject_bug2:
            state.persisted_promised_round = round_
        state.accepted_round = round_
        state.accepted_value = value
        for peer in state.peers:
            ctx.send(peer, LEARN, {"round": round_, "value": value})

    def _on_learn(self, ctx: HandlerContext, state: PaxosState,
                  message: Message) -> None:
        value: int = message.get("value")
        state.record_learn(value, message.src)

    # -- failures -------------------------------------------------------------------------

    def handle_connection_error(self, ctx: HandlerContext, state: PaxosState,
                                peer: Address) -> None:
        # Paxos tolerates message loss; nothing to clean up beyond an
        # in-progress promise count for the broken peer.
        state.promises.pop(peer, None)
