"""The Paxos fault-injection scenario of Figure 13 (Section 5.4.2).

Three nodes A, B, C each play all Paxos roles.  In the first round node C
is disconnected and A gets value 0 chosen with promises/accepts from A and B
(the Learn from A to B is lost).  In the second round node A is disconnected
and C is reachable again; B (or C) runs a new round.  With ``bug1`` the new
leader builds its Accept from the wrong promise and value 1 gets chosen,
violating agreement; ``bug2`` loses B's promise across a reset with the same
effect.  The scenario driver schedules the partitions, proposals and resets
and is reused by the execution-steering benchmark (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...core.controller import CrystalBallConfig, CrystalBallController, Mode, attach_crystalball
from ...core.monitor import LivePropertyMonitor
from ...properties import SafetyProperty
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address, make_addresses
from ...runtime.network import NetworkModel
from ...runtime.simulator import Simulator
from .properties import ALL_PROPERTIES
from .protocol import Paxos, PaxosConfig


@dataclass
class PaxosRunResult:
    """Outcome of one scripted Figure 13 run."""

    violation_occurred: bool
    chosen_values: set[int]
    steering_filters_triggered: int
    isc_blocks: int
    violations_predicted: int

    @property
    def avoided_by_steering(self) -> bool:
        return not self.violation_occurred and self.steering_filters_triggered > 0

    @property
    def avoided_by_isc(self) -> bool:
        return (not self.violation_occurred
                and self.steering_filters_triggered == 0
                and self.isc_blocks > 0)


@dataclass
class Figure13Scenario:
    """Driver for the Paxos bug1/bug2 runs of Figures 13 and 14."""

    bug: int = 1
    inter_round_delay: float = 30.0
    crystalball_mode: Mode = Mode.OFF
    seed: int = 0
    reset_b: Optional[bool] = None

    addresses: list[Address] = field(default_factory=lambda: make_addresses(3, start=1))

    def __post_init__(self) -> None:
        if self.bug not in (1, 2):
            raise ValueError("bug must be 1 or 2")
        if self.reset_b is None:
            # bug2 is exposed by resetting node B between the rounds.
            self.reset_b = self.bug == 2

    @property
    def properties(self) -> Sequence[SafetyProperty]:
        return ALL_PROPERTIES

    def build_protocol(self) -> Paxos:
        config = PaxosConfig(peers=tuple(self.addresses),
                             inject_bug1=self.bug == 1,
                             inject_bug2=self.bug == 2)
        return Paxos(config)

    def run(self) -> PaxosRunResult:
        """Run one live scenario; returns what happened.

        Round 1: node C is disconnected and A gets value 0 chosen with the
        help of B.  Between the rounds C becomes reachable again (there is a
        short window in which checkpoints can be exchanged) and then A is
        disconnected; for ``bug2`` node B additionally resets.  Round 2: the
        second leader (B for ``bug1``, C for ``bug2``) proposes value 1.
        With the injected bug the run chooses two different values unless
        CrystalBall's execution steering or immediate safety check prevents
        it.
        """
        _, _, result = self._execute()
        return result

    def run_report(self):
        """Run the scenario and return a :class:`repro.api.RunReport`."""
        import time

        from ...api.experiment import build_run_report

        started = time.perf_counter()
        sim, pieces, result = self._execute()
        report = build_run_report(
            system="paxos",
            scenario=f"figure13-bug{self.bug}",
            mode=self.crystalball_mode,
            seed=self.seed,
            sim=sim,
            controllers=pieces["controllers"],
            monitor=pieces["monitor"],
            wall_clock_seconds=time.perf_counter() - started,
            outcome={
                "bug": self.bug,
                "violation_occurred": result.violation_occurred,
                "chosen_values": sorted(result.chosen_values),
                "avoided_by_steering": result.avoided_by_steering,
                "avoided_by_isc": result.avoided_by_isc,
            },
        )
        return report

    def _execute(self):
        a, b, c = self.addresses
        network = NetworkModel(default_rtt=0.05, jitter=0.0, rst_loss_probability=0.0)
        sim = Simulator(self.build_protocol, network, seed=self.seed,
                        tick_interval=3.0)
        for addr in self.addresses:
            sim.add_node(addr)

        controllers: dict[Address, CrystalBallController] = {}
        if self.crystalball_mode is not Mode.OFF:
            config = CrystalBallConfig(
                mode=self.crystalball_mode,
                search_budget=SearchBudget(max_states=1500, max_depth=12),
                transition=TransitionConfig(enable_resets=False),
            )
            controllers = attach_crystalball(sim, self.properties, config=config)

        monitor = LivePropertyMonitor(self.properties).install(sim)

        second_leader = b if self.bug == 1 else c

        # Round 1: C is disconnected; A proposes value 0.
        network.isolate(c, [a, b])
        sim.schedule_app(1.0, a, "propose", {"value": 0})
        # The client submits the value for the second round early, so the
        # intent is part of the leader's checkpointed state.
        sim.schedule_app(2.0, second_leader, "submit", {"value": 1})
        sim.run(until=10.0)

        # Between rounds: C becomes reachable again; after a short window in
        # which checkpoints can be exchanged, A gets disconnected.  For the
        # bug2 scenario node B resets right at the start of that window, so
        # its (lost) acceptor state is what the neighbourhood snapshots see.
        network.heal_all()
        reconnect_window = min(8.0, max(2.0, self.inter_round_delay / 2))
        sim.schedule_callback(sim.now + reconnect_window,
                              lambda s: s.network.isolate(a, [b, c]))
        if self.reset_b:
            sim.schedule_reset(sim.now + 1.0, b)
        start_second = sim.now + max(self.inter_round_delay, reconnect_window + 2.0)
        sim.schedule_app(start_second, second_leader, "propose", {"value": 1})
        sim.run(until=start_second + 40.0)

        chosen: set[int] = set()
        for addr in self.addresses:
            node_state = sim.nodes[addr].state
            chosen |= set(node_state.chosen_values)

        filters_triggered = sum(ctrl.stats.filters_triggered
                                for ctrl in controllers.values())
        isc_blocks = sum(ctrl.stats.isc_blocks for ctrl in controllers.values())
        predicted = sum(ctrl.stats.violations_predicted
                        for ctrl in controllers.values())
        result = PaxosRunResult(
            violation_occurred=len(chosen) > 1 or monitor.inconsistent_states > 0,
            chosen_values=chosen,
            steering_filters_triggered=filters_triggered,
            isc_blocks=isc_blocks,
            violations_predicted=predicted,
        )
        return sim, {"controllers": controllers, "monitor": monitor}, result
