"""Paxos registration with the unified experiment API."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Mapping, Optional, Sequence

from ...api.experiment import make_fault_scenario_runner
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...core.controller import Mode
from ...faults.types import CrashRestart, MessageDelay
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...runtime.messages import Message
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import Paxos, PaxosConfig
from .scenarios import Figure13Scenario


#: Options accepted by generic (non-scenario) Paxos live runs.
_LIVE_OPTIONS = ("bug", "value0", "value1", "second_round_at")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("paxos", options, _LIVE_OPTIONS)
    bug = int(options.get("bug", 0))
    config = PaxosConfig(peers=tuple(addresses),
                         inject_bug1=bug == 1,
                         inject_bug2=bug == 2)
    return lambda: Paxos(config)


def _schedule(sim, addresses: Sequence[Address],
              options: Mapping[str, Any]) -> None:
    """Generic consensus workload: two competing proposals.

    The first node proposes value 0 immediately; the last node submits and
    later proposes value 1, forcing a second round.  With no injected bug
    the agreement property holds throughout.
    """
    first, last = addresses[0], addresses[-1]
    sim.schedule_app(1.0, first, "propose", {"value": options.get("value0", 0)})
    if len(addresses) > 1:
        sim.schedule_app(2.0, last, "submit", {"value": options.get("value1", 1)})
        sim.schedule_app(float(options.get("second_round_at", 30.0)),
                         last, "propose", {"value": options.get("value1", 1)})


def _collect(sim) -> dict:
    chosen: set[int] = set()
    per_node: dict[str, list[int]] = {}
    for addr, node in sim.nodes.items():
        values = sorted(node.state.chosen_values)
        per_node[str(addr)] = values
        chosen |= set(values)
    return {"chosen_values": sorted(chosen),
            "chosen_by_node": per_node,
            "agreement_held": len(chosen) <= 1}


#: Poison values injected by the byzantine mutator sit far outside the
#: honest proposal range (0/1), so an attack-chosen value is unmistakable
#: in reports.
_POISON_BASE = 600


def _message_mutator(message: Message, rng: random.Random,
                     variant: int) -> Optional[Message]:
    """Protocol-aware byzantine rewrite (see :mod:`repro.faults.byzantine`).

    A tampered/equivocated ``Promise`` fabricates a sky-high accepted
    round carrying a poisoned value — a leader that trusts the lie is
    forced (by the Paxos value-selection rule itself) to propose the
    poison.  ``Accept``/``Learn`` rewrites replace the value outright, so
    an equivocating acceptor tells every peer a different decision.  The
    ``variant`` index parameterizes the lie; per-destination variants are
    what make the lies *conflicting*.
    """
    payload = dict(message.payload)
    if message.mtype == "Promise" and "accepted_round" in payload:
        payload["accepted_round"] = (10 ** 6 + variant, 0)
        payload["accepted_value"] = _POISON_BASE + variant
    elif message.mtype in ("Accept", "Learn") and "value" in payload:
        payload["value"] = _POISON_BASE + variant
    else:
        return None
    return replace(message, payload=payload)


def _run_figure13(bug: int):
    def run(*, mode=None, seed: int = 0, inter_round_delay: float = 30.0,
            reset_b=None, **_ignored):
        scenario = Figure13Scenario(
            bug=bug, inter_round_delay=inter_round_delay,
            crystalball_mode=mode if mode is not None else Mode.OFF,
            seed=seed, reset_b=reset_b)
        return scenario.run_report()
    return run


def _make_submission(rng, key, addresses):
    """Submit a candidate value to a random node's proposer role."""
    target = addresses[int(rng.random() * len(addresses)) % len(addresses)]
    return target, "submit", {"value": int(key)}


SPEC = register_system(SystemSpec(
    name="paxos",
    summary="Single-instance Paxos (Section 5.4.2): injected consensus bugs",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    property_namespace="paxos",
    transition_factory=lambda: TransitionConfig(enable_resets=False),
    scenarios={
        "figure13-bug1": ScenarioSpec(
            name="figure13-bug1",
            description="Figure 13 fault-injection schedule with bug1 "
                        "(wrong promise picked by the second leader)",
            run=_run_figure13(1),
            build=lambda **kw: Figure13Scenario(bug=1, **kw),
        ),
        "figure13-bug2": ScenarioSpec(
            name="figure13-bug2",
            description="Figure 13 fault-injection schedule with bug2 "
                        "(promises lost across a reset)",
            run=_run_figure13(2),
            build=lambda **kw: Figure13Scenario(bug=2, **kw),
        ),
        "leader-crash": ScenarioSpec(
            name="leader-crash",
            description="Live consensus where the first proposer fail-stops "
                        "mid-round and restarts with fresh state before the "
                        "competing proposal",
            run=make_fault_scenario_runner(
                system="paxos",
                faults_factory=lambda duration, addrs: [
                    CrashRestart(at=duration * 0.1, duration=duration * 0.3,
                                 target=addrs[0], spare=0),
                ],
                default_nodes=3, default_duration=60.0),
        ),
        "partition-quorum": ScenarioSpec(
            name="partition-quorum",
            description="Live consensus under recurring partitions that "
                        "strand a minority, plus delayed messages between "
                        "rounds",
            run=make_fault_scenario_runner(
                system="paxos",
                faults=("partition",),
                faults_factory=lambda duration, addrs: [
                    MessageDelay(every=duration / 3, duration=duration / 6,
                                 min_extra=0.5, max_extra=2.0),
                ],
                default_nodes=5, default_duration=60.0),
        ),
    },
    workloads={
        "submissions": WorkloadSpec(
            name="submissions",
            description="Open-loop value submissions to random acceptors "
                        "(repeated proposals stress the promise paths)",
            make_request=_make_submission,
            traffic=TrafficSpec(rate=20.0, burst=5, keys=256,
                                key_distribution="uniform", start=5.0),
        ),
    },
    default_nodes=3,
    default_duration=60.0,
    tick_interval=5.0,
    join_call=None,
    supports_churn=False,
    default_churn_interval=None,
    search_budget_factory=lambda: SearchBudget(max_states=500, max_depth=8),
    schedule=_schedule,
    collect=_collect,
    message_mutator=_message_mutator,
))
