"""Chord: a distributed hash table providing key-based routing (Section 5.2.2)."""

from .protocol import (
    Chord,
    ChordConfig,
    FIND_PRED,
    FIND_PRED_REPLY,
    GET_PRED,
    GET_PRED_REPLY,
    JOIN_TIMER,
    STABILIZE_TIMER,
    UPDATE_PRED,
)
from .properties import (
    ALL_PROPERTIES,
    ORDERING_CONSTRAINT,
    PRED_SELF_IMPLIES_SUCC_SELF,
    SUCC_SELF_IMPLIES_PRED_SELF,
)
from .scenarios import Figure10Scenario, Figure11Scenario
from .state import ChordState, in_interval, ring_distance

__all__ = [
    "Chord",
    "ChordConfig",
    "FIND_PRED",
    "FIND_PRED_REPLY",
    "GET_PRED",
    "GET_PRED_REPLY",
    "JOIN_TIMER",
    "STABILIZE_TIMER",
    "UPDATE_PRED",
    "ALL_PROPERTIES",
    "ORDERING_CONSTRAINT",
    "PRED_SELF_IMPLIES_SUCC_SELF",
    "SUCC_SELF_IMPLIES_PRED_SELF",
    "Figure10Scenario",
    "Figure11Scenario",
    "ChordState",
    "in_interval",
    "ring_distance",
]
