"""Chord registration with the unified experiment API."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...api.experiment import (
    make_fault_scenario_runner,
    make_search_scenario_runner,
)
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import LOOKUP_REPLY, Chord, ChordConfig
from .scenarios import Figure10Scenario, Figure11Scenario

#: ChordConfig fields accepted as experiment options.
_CONFIG_OPTIONS = ("id_bits", "successor_list_size", "join_retry_period",
                   "stabilize_period", "id_map", "fix_pred_self",
                   "fix_ordering")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("chord", options,
                  _CONFIG_OPTIONS + ("fixed", "bootstrap_index"))
    kwargs = {name: options[name] for name in _CONFIG_OPTIONS
              if name in options}
    if options.get("fixed"):
        kwargs.update(fix_pred_self=True, fix_ordering=True)
    bootstrap_index = int(options.get("bootstrap_index", 0))
    config = ChordConfig(bootstrap=(addresses[bootstrap_index],), **kwargs)
    return lambda: Chord(config)


def _make_lookup(rng, key, addresses):
    """One DHT lookup for ``key`` issued from a random live member."""
    origin = addresses[int(rng.random() * len(addresses)) % len(addresses)]
    return origin, "lookup", {"key": key}


def _run_figure(scenario_cls, name: str, *, resets: bool):
    def prepare(fixed: bool):
        scenario = scenario_cls.build(fixed=fixed)
        return scenario.protocol, scenario.global_state()

    return make_search_scenario_runner(
        system="chord", scenario=name, properties=ALL_PROPERTIES,
        prepare=prepare, default_max_states=12000, default_max_depth=12,
        resets=resets)


SPEC = register_system(SystemSpec(
    name="chord",
    summary="Chord DHT (Section 5.2.2): ring stabilization inconsistencies",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    property_namespace="chord",
    transition_factory=lambda: TransitionConfig(enable_resets=True,
                                                max_resets_per_node=1),
    scenarios={
        "figure10": ScenarioSpec(
            name="figure10",
            description="Consequence prediction from the Figure 10 state "
                        "(predecessor-is-self inconsistency)",
            run=_run_figure(Figure10Scenario, "figure10", resets=True),
            build=Figure10Scenario.build,
        ),
        "figure11": ScenarioSpec(
            name="figure11",
            description="Consequence prediction from the Figure 11 state "
                        "(ring-ordering violation)",
            run=_run_figure(Figure11Scenario, "figure11", resets=False),
            build=Figure11Scenario.build,
        ),
        "partition-churn": ScenarioSpec(
            name="partition-churn",
            description="Live ring under overlapping partitions and "
                        "crash/restart churn — the compound adversary "
                        "behind the ring-consistency violations",
            run=make_fault_scenario_runner(
                system="chord", faults=("partition-churn",),
                default_nodes=6, default_duration=240.0),
        ),
        "link-flap": ScenarioSpec(
            name="link-flap",
            description="Live ring with one flaky link cut and restored "
                        "throughout stabilization",
            run=make_fault_scenario_runner(
                system="chord", faults=("link-flap",),
                default_nodes=6, default_duration=240.0),
        ),
    },
    workloads={
        "lookups": WorkloadSpec(
            name="lookups",
            description="Open-loop DHT key lookups from random members "
                        "(stateless routing along successor pointers)",
            make_request=_make_lookup,
            traffic=TrafficSpec(rate=200.0, burst=20, keys=4096,
                                key_distribution="zipf", start=60.0),
            completion_mtypes=frozenset({LOOKUP_REPLY}),
        ),
    },
    default_nodes=6,
    default_duration=200.0,
    search_budget_factory=lambda: SearchBudget(max_states=400, max_depth=6),
))
