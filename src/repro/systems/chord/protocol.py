"""Chord protocol implementation (Section 5.2.2).

The implementation follows the join/stabilize behaviour the paper describes
for the Mace Chord service, *including the two inconsistencies CrystalBall
found*:

``pred_self`` (Figure 10)
    When a node handles an ``UpdatePred`` message while its predecessor is
    unset, it adopts the sender as predecessor even when the sender is the
    node itself, ending up with ``predecessor == self`` while the successor
    list still contains other nodes.
``ordering`` (Figure 11)
    When a node processes a ``GetPredReply`` during stabilization it adds
    the reported successors to its successor list without updating its
    predecessor pointer, violating the ring-ordering constraint.

Both are controlled by ``fix_*`` flags in :class:`ChordConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message
from ...runtime.protocol import Protocol
from .state import ChordState, in_interval

FIND_PRED = "FindPred"
FIND_PRED_REPLY = "FindPredReply"
UPDATE_PRED = "UpdatePred"
GET_PRED = "GetPred"
GET_PRED_REPLY = "GetPredReply"
LOOKUP = "Lookup"
LOOKUP_REPLY = "LookupReply"

JOIN_TIMER = "join_retry"
STABILIZE_TIMER = "stabilize"


@dataclass
class ChordConfig:
    """Chord parameters and bug-fix switches."""

    bootstrap: tuple[Address, ...] = ()
    id_bits: int = 16
    successor_list_size: int = 4
    join_retry_period: float = 5.0
    stabilize_period: float = 10.0
    #: Optional explicit id assignment (used to script the paper's
    #: consecutive-placement scenarios); defaults to hashing the address.
    id_map: dict[Address, int] = field(default_factory=dict)

    #: Avoid adopting ourselves as predecessor when the successor list still
    #: contains other nodes (fix for the Figure 10 inconsistency).
    fix_pred_self: bool = False
    #: Update the predecessor pointer when learning new successors during
    #: stabilization (fix for the Figure 11 inconsistency).
    fix_ordering: bool = False


class Chord(Protocol):
    """The Chord distributed hash table service."""

    name = "Chord"

    def __init__(self, config: Optional[ChordConfig] = None) -> None:
        self.config = config or ChordConfig()

    # -- state ------------------------------------------------------------------

    def node_id(self, addr: Address) -> int:
        if addr in self.config.id_map:
            return self.config.id_map[addr]
        return addr.chord_id(self.config.id_bits)

    def initial_state(self, addr: Address) -> ChordState:
        return ChordState(addr=addr,
                          node_id=self.node_id(addr),
                          bootstrap=tuple(self.config.bootstrap),
                          successor_list_size=self.config.successor_list_size)

    def on_start(self, ctx: HandlerContext, state: ChordState) -> None:
        ctx.set_timer(JOIN_TIMER, self.config.join_retry_period)

    def timer_specs(self) -> Mapping[str, float]:
        return {JOIN_TIMER: self.config.join_retry_period,
                STABILIZE_TIMER: self.config.stabilize_period}

    def neighbors(self, state: ChordState) -> list[Address]:
        neighbors = set(state.successors)
        if state.predecessor is not None:
            neighbors.add(state.predecessor)
        neighbors.discard(state.addr)
        return sorted(neighbors)

    def app_calls(self, state: ChordState) -> Sequence[tuple[str, Mapping[str, Any]]]:
        if not state.joined:
            return [("join", {})]
        return []

    # -- joining -----------------------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: ChordState, call: str,
                   payload: Mapping[str, Any]) -> None:
        if call == "join":
            self._try_join(ctx, state)
        elif call == "lookup":
            # The DHT's service operation, driven by the "lookups" workload.
            if state.joined:
                key = int(payload.get("key", 0)) % (1 << self.config.id_bits)
                self._route_lookup(ctx, state, key, state.addr, hops=0)

    def handle_timer(self, ctx: HandlerContext, state: ChordState, timer: str) -> None:
        if timer == JOIN_TIMER:
            if not state.joined:
                self._try_join(ctx, state)
                ctx.set_timer(JOIN_TIMER, self.config.join_retry_period)
        elif timer == STABILIZE_TIMER:
            self._stabilize(ctx, state)

    def _try_join(self, ctx: HandlerContext, state: ChordState) -> None:
        targets = [a for a in state.bootstrap if a != state.addr]
        if not targets:
            # First node: a ring of one.
            state.joined = True
            state.predecessor = state.addr
            state.successors = []
            ctx.set_timer(STABILIZE_TIMER, self.config.stabilize_period)
            return
        ctx.send(targets[0], FIND_PRED,
                 {"origin": state.addr, "origin_id": state.node_id})

    # -- message handlers ---------------------------------------------------------

    def handle_message(self, ctx: HandlerContext, state: ChordState,
                       message: Message) -> None:
        handlers = {
            FIND_PRED: self._on_find_pred,
            FIND_PRED_REPLY: self._on_find_pred_reply,
            UPDATE_PRED: self._on_update_pred,
            GET_PRED: self._on_get_pred,
            GET_PRED_REPLY: self._on_get_pred_reply,
            LOOKUP: self._on_lookup,
        }
        handler = handlers.get(message.mtype)
        if handler is not None:
            handler(ctx, state, message)

    # -- lookups (the service operation under heavy traffic) ----------------------

    def _on_lookup(self, ctx: HandlerContext, state: ChordState,
                   message: Message) -> None:
        if not state.joined:
            return
        self._route_lookup(ctx, state, int(message.get("key", 0)),
                           message.get("origin", message.src),
                           int(message.get("hops", 0)))

    def _route_lookup(self, ctx: HandlerContext, state: ChordState, key: int,
                      origin: Address, hops: int) -> None:
        """Route a key lookup greedily along the successor pointers.

        Deliberately stateless: a million-lookup workload must not change
        any node's checkpointed state (checkpoints stay the same size and
        deep checks stay unaffected by traffic volume).  The ring may be
        inconsistent — that is the point of the system — so routing gives
        up after ``2 * id_bits`` hops instead of looping forever.
        """
        if hops > 2 * self.config.id_bits:
            return
        successor = state.successor()
        succ_id = state.id_of(successor) if successor is not None else None
        if successor is None or succ_id is None or successor == state.addr \
                or in_interval(key, state.node_id, succ_id,
                               bits=self.config.id_bits):
            owner = successor if successor is not None else state.addr
            ctx.send(origin, LOOKUP_REPLY,
                     {"key": key, "owner": owner, "hops": hops})
        else:
            ctx.send(successor, LOOKUP,
                     {"key": key, "origin": origin, "hops": hops + 1})

    def _on_find_pred(self, ctx: HandlerContext, state: ChordState,
                      message: Message) -> None:
        origin: Address = message.get("origin")
        origin_id: int = message.get("origin_id", 0)
        state.remember(origin, origin_id)
        if not state.joined:
            return

        successor = state.successor()
        succ_id = state.id_of(successor) if successor is not None else None
        if successor is None or succ_id is None or origin == successor \
                or successor == state.addr or in_interval(
                    origin_id, state.node_id, succ_id, bits=self.config.id_bits):
            # We are the origin's predecessor: reply with our successor list.
            successor_list = [a for a in ([successor] if successor else [])
                              + state.successors if a is not None]
            ctx.send(origin, FIND_PRED_REPLY,
                     {"successor_list": tuple(dict.fromkeys(successor_list)),
                      "pred_id": state.node_id,
                      "ids": {a: state.id_of(a) or self.node_id(a)
                              for a in dict.fromkeys(successor_list)}})
        else:
            ctx.send(successor, FIND_PRED,
                     {"origin": origin, "origin_id": origin_id})

    def _on_find_pred_reply(self, ctx: HandlerContext, state: ChordState,
                            message: Message) -> None:
        predecessor = message.src
        successor_list = list(message.get("successor_list", ()))
        ids: Mapping[Address, int] = message.get("ids", {})

        state.remember(predecessor, message.get("pred_id", self.node_id(predecessor)))
        for addr in successor_list:
            state.remember(addr, ids.get(addr, self.node_id(addr)))

        state.joined = True
        # (i) set the predecessor to the replying node.
        state.predecessor = predecessor
        # (ii) store the successor list included in the message as-is (the
        # Mace code keeps it verbatim, which is what enables Figure 10).
        state.successors = [a for a in successor_list
                            if a != state.addr or not self.config.fix_pred_self]
        if not state.successors:
            state.successors = [predecessor]
            state.remember(predecessor, message.get("pred_id",
                                                    self.node_id(predecessor)))
        ctx.set_timer(STABILIZE_TIMER, self.config.stabilize_period)

        # (iii) notify our new successor that we are its predecessor.  The
        # Mace implementation sends this even when the successor is the node
        # itself (a deliberate loop-back coding style).
        successor = state.successor()
        if successor is not None:
            ctx.send(successor, UPDATE_PRED, {"pred_id": state.node_id})

    def _on_update_pred(self, ctx: HandlerContext, state: ChordState,
                        message: Message) -> None:
        sender = message.src
        sender_id: int = message.get("pred_id", self.node_id(sender))
        state.remember(sender, sender_id)

        if state.predecessor is None:
            # BUG (Figure 10): the predecessor is adopted unconditionally,
            # even when the sender is the node itself while the successor
            # list still names other nodes.
            if self.config.fix_pred_self and sender == state.addr and any(
                    s != state.addr for s in state.successors):
                return
            state.predecessor = sender
            return

        pred_id = state.id_of(state.predecessor)
        if pred_id is None or in_interval(sender_id, pred_id, state.node_id,
                                          bits=self.config.id_bits):
            state.predecessor = sender

    def _on_get_pred(self, ctx: HandlerContext, state: ChordState,
                     message: Message) -> None:
        pred = state.predecessor
        successor_list = tuple(dict.fromkeys(state.successors))
        ctx.send(message.src, GET_PRED_REPLY,
                 {"pred": pred,
                  "pred_id": state.id_of(pred) if pred is not None else None,
                  "successor_list": successor_list,
                  "ids": {a: state.id_of(a) or self.node_id(a)
                          for a in successor_list}})

    def _on_get_pred_reply(self, ctx: HandlerContext, state: ChordState,
                           message: Message) -> None:
        reported_pred: Optional[Address] = message.get("pred")
        reported_pred_id: Optional[int] = message.get("pred_id")
        successor_list = list(message.get("successor_list", ()))
        ids: Mapping[Address, int] = message.get("ids", {})

        for addr in successor_list:
            state.remember(addr, ids.get(addr, self.node_id(addr)))
        if reported_pred is not None and reported_pred_id is not None:
            state.remember(reported_pred, reported_pred_id)

        # BUG (Figure 11): the node extends its successor list with the
        # reported successors but leaves its predecessor pointer untouched.
        for addr in successor_list:
            state.add_successor(addr)
        if reported_pred is not None and reported_pred != state.addr:
            state.add_successor(reported_pred)

        if self.config.fix_ordering:
            # Paper's correction: update the predecessor after updating the
            # successor list — any newly learnt node whose id falls between
            # the current predecessor and this node is a better predecessor.
            candidates = [a for a in successor_list if a != state.addr]
            if reported_pred is not None and reported_pred != state.addr:
                candidates.append(reported_pred)
            for candidate in candidates:
                candidate_id = state.id_of(candidate)
                if candidate_id is None:
                    continue
                pred_id = (state.id_of(state.predecessor)
                           if state.predecessor is not None else None)
                if state.predecessor is None or pred_id is None or in_interval(
                        candidate_id, pred_id, state.node_id,
                        bits=self.config.id_bits):
                    state.predecessor = candidate

    # -- stabilization and failures ---------------------------------------------------

    def _stabilize(self, ctx: HandlerContext, state: ChordState) -> None:
        successor = state.successor()
        if successor is not None and successor != state.addr:
            ctx.send(successor, GET_PRED, {})
            ctx.send(successor, UPDATE_PRED, {"pred_id": state.node_id})
        if state.joined:
            ctx.set_timer(STABILIZE_TIMER, self.config.stabilize_period)

    def handle_connection_error(self, ctx: HandlerContext, state: ChordState,
                                peer: Address) -> None:
        state.forget(peer)
