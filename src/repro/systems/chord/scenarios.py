"""Scripted Chord scenarios from the paper (Figures 10 and 11)."""

from __future__ import annotations

from dataclasses import dataclass

from ...mc.global_state import GlobalState
from ...runtime.address import Address
from .protocol import Chord, ChordConfig, STABILIZE_TIMER
from .state import ChordState


@dataclass
class Figure10Scenario:
    """The state preceding the "predecessor is self" inconsistency.

    Nodes A, B and C sit consecutively on the ring (D is a further live node
    that keeps the successor lists non-trivial).  B has already reset and A
    has removed it (A's successor is now C).  A silent reset of C followed by
    its re-join through A leads to C having itself as predecessor while its
    successor list still names other nodes.
    """

    a: Address
    b: Address
    c: Address
    d: Address
    protocol: Chord

    @classmethod
    def build(cls, *, fixed: bool = False) -> "Figure10Scenario":
        a, b, c, d = Address(10), Address(20), Address(30), Address(40)
        config = ChordConfig(
            bootstrap=(a,),
            id_map={a: 100, b: 200, c: 300, d: 500},
            fix_pred_self=fixed,
            fix_ordering=fixed,
        )
        return cls(a=a, b=b, c=c, d=d, protocol=Chord(config))

    def node_states(self) -> dict[Address, ChordState]:
        proto = self.protocol
        ids = {addr: proto.node_id(addr) for addr in (self.a, self.b, self.c, self.d)}

        sa = proto.initial_state(self.a)
        sa.joined = True
        sa.predecessor = self.d
        sa.successors = [self.c, self.d]
        for addr, node_id in ids.items():
            sa.remember(addr, node_id)

        sc = proto.initial_state(self.c)
        sc.joined = True
        sc.predecessor = self.b
        sc.successors = [self.d, self.a]
        for addr, node_id in ids.items():
            sc.remember(addr, node_id)

        sd = proto.initial_state(self.d)
        sd.joined = True
        sd.predecessor = self.c
        sd.successors = [self.a]
        for addr, node_id in ids.items():
            sd.remember(addr, node_id)
        return {self.a: sa, self.c: sc, self.d: sd}

    def global_state(self) -> GlobalState:
        states = self.node_states()
        timers = {addr: frozenset({STABILIZE_TIMER}) for addr in states}
        return GlobalState.from_snapshot(states, timers=timers)


@dataclass
class Figure11Scenario:
    """The state preceding the node-ordering violation.

    Nodes ``a_i``, ``a_im1`` (= A\\ :sub:`i-1`) and ``a_im2`` (= A\\ :sub:`i-2`)
    have just joined through ``a_i`` with identical FindPredReply contents:
    both set their predecessor and successor to ``a_i``.  A stabilize round
    at ``a_im1`` then makes it adopt ``a_im2`` as an extra successor while
    its predecessor still points at ``a_i``.
    """

    a_i: Address
    a_im1: Address
    a_im2: Address
    protocol: Chord

    @classmethod
    def build(cls, *, fixed: bool = False) -> "Figure11Scenario":
        a_i, a_im1, a_im2 = Address(1), Address(3), Address(5)
        config = ChordConfig(
            bootstrap=(a_i,),
            id_map={a_i: 100, a_im1: 900, a_im2: 800},
            fix_pred_self=fixed,
            fix_ordering=fixed,
        )
        return cls(a_i=a_i, a_im1=a_im1, a_im2=a_im2, protocol=Chord(config))

    def node_states(self) -> dict[Address, ChordState]:
        proto = self.protocol
        ids = {addr: proto.node_id(addr)
               for addr in (self.a_i, self.a_im1, self.a_im2)}

        si = proto.initial_state(self.a_i)
        si.joined = True
        si.predecessor = self.a_im1
        si.successors = [self.a_im2]
        for addr, node_id in ids.items():
            si.remember(addr, node_id)

        sm1 = proto.initial_state(self.a_im1)
        sm1.joined = True
        sm1.predecessor = self.a_i
        sm1.successors = [self.a_i]
        for addr, node_id in ids.items():
            sm1.remember(addr, node_id)

        sm2 = proto.initial_state(self.a_im2)
        sm2.joined = True
        sm2.predecessor = self.a_i
        sm2.successors = [self.a_i]
        for addr, node_id in ids.items():
            sm2.remember(addr, node_id)
        return {self.a_i: si, self.a_im1: sm1, self.a_im2: sm2}

    def global_state(self) -> GlobalState:
        states = self.node_states()
        timers = {addr: frozenset({STABILIZE_TIMER}) for addr in states}
        return GlobalState.from_snapshot(states, timers=timers)
