"""Chord node state (Section 5.2.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...runtime.address import Address
from ...runtime.state import NodeState


@dataclass
class ChordState(NodeState):
    """Local state of one Chord participant.

    Each node has a Chord identifier, a predecessor pointer and a successor
    list ordered by ring distance from the node's own id.
    """

    addr: Address
    node_id: int = 0
    bootstrap: tuple[Address, ...] = ()
    successor_list_size: int = 4

    joined: bool = False
    predecessor: Optional[Address] = None
    successors: list[Address] = field(default_factory=list)
    #: id of every peer this node has learnt about (for routing and the
    #: ordering property).
    known_ids: dict[Address, int] = field(default_factory=dict)

    def successor(self) -> Optional[Address]:
        """The immediate successor, or ``None`` when the list is empty."""
        return self.successors[0] if self.successors else None

    def remember(self, addr: Address, node_id: int) -> None:
        self.known_ids[addr] = node_id

    def id_of(self, addr: Address) -> Optional[int]:
        if addr == self.addr:
            return self.node_id
        return self.known_ids.get(addr)

    def add_successor(self, addr: Address) -> None:
        """Insert ``addr`` into the successor list, keeping ring order."""
        if addr == self.addr or addr in self.successors:
            return
        self.successors.append(addr)
        self.successors.sort(
            key=lambda a: ring_distance(self.node_id, self.known_ids.get(a, 0)))
        del self.successors[self.successor_list_size:]

    def forget(self, peer: Address) -> None:
        """Remove every reference to ``peer`` (transport error handling)."""
        if self.predecessor == peer:
            self.predecessor = None
        self.successors = [s for s in self.successors if s != peer]
        self.known_ids.pop(peer, None)


def ring_distance(from_id: int, to_id: int, *, bits: int = 16) -> int:
    """Clockwise distance from ``from_id`` to ``to_id`` on the Chord ring."""
    space = 1 << bits
    return (to_id - from_id) % space


def in_interval(value: int, low: int, high: int, *, bits: int = 16) -> bool:
    """True when ``value`` lies strictly inside the ring interval (low, high)."""
    space = 1 << bits
    if low == high:
        return value != low
    return (value - low) % space < (high - low) % space and value != low and value != high
