"""Safety properties for Chord (Section 5.2.2).

Registered under the ``chord.`` namespace in the global property registry;
``ALL_PROPERTIES`` keeps the historical check order.
"""

from __future__ import annotations

from typing import Iterable

from ...mc.global_state import GlobalState
from ...properties import (
    SafetyProperty,
    leads_to,
    node_property,
    register_properties,
    typed_check,
    typed_states,
)
from ...runtime.address import Address
from .state import ChordState, in_interval


@typed_check(ChordState)
def _pred_self_implies_succ_self(addr: Address, state: ChordState,
                                 timers: frozenset[str],
                                 gs: GlobalState) -> Iterable[str]:
    if state.predecessor == addr:
        others = [s for s in state.successors if s != addr]
        if others:
            yield (f"predecessor points to self but the successor list still "
                   f"contains {sorted(str(a) for a in others)}")


@typed_check(ChordState)
def _ordering_constraint(addr: Address, state: ChordState,
                         timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if state.predecessor is None or state.predecessor == addr:
        return
    pred_id = state.id_of(state.predecessor)
    if pred_id is None:
        return
    for successor in state.successors:
        if successor in (addr, state.predecessor):
            continue
        succ_id = state.id_of(successor)
        if succ_id is None:
            continue
        if in_interval(succ_id, pred_id, state.node_id):
            yield (f"successor {successor} (id {succ_id}) lies between "
                   f"predecessor {state.predecessor} (id {pred_id}) and the "
                   f"node's own id {state.node_id}")


@typed_check(ChordState)
def _no_self_successor_only(addr: Address, state: ChordState,
                            timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if not state.joined:
        return
    if state.successors and all(s == addr for s in state.successors) \
            and state.predecessor is not None and state.predecessor != addr:
        yield ("successor list contains only the node itself while the "
               f"predecessor is {state.predecessor}")


PRED_SELF_IMPLIES_SUCC_SELF = node_property(
    "chord.pred_self_implies_succ_self", _pred_self_implies_succ_self,
    "If a node's predecessor is itself, its successor must also be itself "
    "(Figure 10).",
    severity="critical", tags=("ring", "figure10"))

ORDERING_CONSTRAINT = node_property(
    "chord.ordering_constraint", _ordering_constraint,
    "No successor's id may lie between the predecessor's id and the node's "
    "own id (Figure 11).",
    severity="critical", tags=("ring", "figure11"))

SUCC_SELF_IMPLIES_PRED_SELF = node_property(
    "chord.succ_self_implies_pred_self", _no_self_successor_only,
    "If the successor list contains only the node itself, the predecessor "
    "must be the node itself as well.",
    severity="error", tags=("ring",))


def _some_joined_node_without_predecessor(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, ChordState)]
    return any(s.joined and s.predecessor is None for s in states)


def _every_joined_node_has_predecessor(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, ChordState)]
    joined = [s for s in states if s.joined]
    return bool(joined) and all(s.predecessor is not None for s in joined)


#: Bounded liveness (opt-in): stabilization re-links the ring in a window.
RING_STABILIZES = leads_to(
    "chord.ring_stabilizes",
    _some_joined_node_without_predecessor,
    _every_joined_node_has_predecessor, within=120.0,
    description="After a joined node loses its predecessor pointer, "
                "stabilization must restore a predecessor at every joined "
                "node within 120 s.",
    tags=("ring",))

ALL_PROPERTIES: list[SafetyProperty] = [
    PRED_SELF_IMPLIES_SUCC_SELF,
    ORDERING_CONSTRAINT,
    SUCC_SELF_IMPLIES_PRED_SELF,
]

register_properties(ALL_PROPERTIES + [RING_STABILIZES])
