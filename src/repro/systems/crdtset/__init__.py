"""Op-based CRDT replica group (OR-Set + PN-Counter).

The first replicated-data system in the repo: convergence and tombstone
properties instead of overlay-structure invariants, with a deliberately
buggy last-writer-wins delivery mode that MET-style offline search
falsifies (see :mod:`.scenarios`).
"""

from .properties import (
    ALL_PROPERTIES,
    CONVERGED,
    EVENTUALLY_CONVERGES,
    NO_TOMBSTONE_RESURRECTION,
)
from .protocol import DIGEST, OP, OPS, SYNC_TIMER, CrdtConfig, CrdtReplica
from .scenarios import ConcurrentOpsScenario
from .state import CrdtState, Tag

__all__ = [
    "ALL_PROPERTIES",
    "CONVERGED",
    "EVENTUALLY_CONVERGES",
    "NO_TOMBSTONE_RESURRECTION",
    "DIGEST",
    "OP",
    "OPS",
    "SYNC_TIMER",
    "CrdtConfig",
    "CrdtReplica",
    "ConcurrentOpsScenario",
    "CrdtState",
    "Tag",
]
