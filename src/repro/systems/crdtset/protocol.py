"""Op-based OR-Set + PN-Counter replica protocol with anti-entropy.

Client operations (``add``/``remove``/``inc``/``dec``) are turned into
operations with ``(origin, seq)`` identity, applied locally and broadcast
to every peer.  A periodic anti-entropy round rotates over the peers and
exchanges delivery-vector digests; a peer that is ahead pushes the missing
suffix of its op log, which heals partitions, lost messages and reset
replicas.

Two delivery disciplines share this code path:

* **OR-Set mode** (default, correct): per-origin FIFO with exactly-once
  delivery; a remove cancels precisely the add-tags it observed, so
  concurrent add/remove resolves add-wins and replicas converge.
* **LWW mode** (``lww=True``, deliberately buggy): operations are applied
  in arrival order with no dedup and no causal buffering — a re-ordered
  or duplicated ``add`` resurrects an element a remove already covered,
  and replicas with identical delivery vectors can disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message
from ...runtime.protocol import Protocol
from .state import CrdtState

OP = "Op"
DIGEST = "Digest"
OPS = "Ops"

SYNC_TIMER = "sync"

#: Largest op batch one anti-entropy reply carries.
SYNC_BATCH = 64


def _norm_op(op: Mapping[str, Any]) -> dict:
    """Canonicalise an op that round-tripped through a message payload."""
    op = dict(op)
    if "tag" in op:
        op["tag"] = tuple(op["tag"])
    if "observed" in op:
        op["observed"] = tuple(tuple(tag) for tag in op["observed"])
    return op


@dataclass
class CrdtConfig:
    """Replica-group membership and protocol knobs."""

    peers: tuple[Address, ...] = ()
    #: period of the anti-entropy rotation timer.
    sync_period: float = 15.0
    #: enable the deliberately buggy last-writer-wins delivery discipline.
    lww: bool = False


class CrdtReplica(Protocol):
    """One replica of the OR-Set + PN-Counter object."""

    name = "CrdtSet"

    def __init__(self, config: Optional[CrdtConfig] = None) -> None:
        self.config = config or CrdtConfig()

    # -- state -------------------------------------------------------------------

    def initial_state(self, addr: Address) -> CrdtState:
        return CrdtState(addr=addr, peers=tuple(self.config.peers),
                         lww=self.config.lww)

    def timer_specs(self) -> Mapping[str, float]:
        return {SYNC_TIMER: self.config.sync_period}

    def neighbors(self, state: CrdtState) -> list[Address]:
        return self._others(state)

    def on_start(self, ctx: HandlerContext, state: CrdtState) -> None:
        ctx.set_timer(SYNC_TIMER, self.config.sync_period)

    def _others(self, state: CrdtState) -> list[Address]:
        return sorted(a for a in state.peers if a != state.addr)

    # -- application interface ---------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: CrdtState, call: str,
                   payload: Mapping[str, Any]) -> None:
        if call == "add":
            elem = payload.get("elem")
            self._emit(ctx, state, {"kind": "add", "elem": elem,
                                    "tag": (state.addr.host, state.seq + 1)})
        elif call == "remove":
            elem = payload.get("elem")
            observed = tuple(sorted(state.live_tags(elem)))
            self._emit(ctx, state, {"kind": "remove", "elem": elem,
                                    "observed": observed})
        elif call in ("inc", "dec"):
            amount = int(payload.get("amount", 1))
            self._emit(ctx, state, {"kind": call, "amount": amount})

    def _emit(self, ctx: HandlerContext, state: CrdtState,
              fields: Mapping[str, Any]) -> None:
        """Mint, apply and broadcast one locally originated op."""
        state.seq += 1
        op = {"origin": state.addr.host, "seq": state.seq, **fields}
        self._ingest(state, op)
        for peer in self._others(state):
            ctx.send(peer, OP, {"op": op})

    # -- delivery ----------------------------------------------------------------

    def _ingest(self, state: CrdtState, raw_op: Mapping[str, Any]) -> None:
        op = _norm_op(raw_op)
        origin, seq = op["origin"], op["seq"]
        if state.lww:
            # BUGGY: apply in arrival order; no dedup, no causal buffering.
            self._apply(state, op)
            self._log_op(state, op)
            if seq > state.delivered.get(origin, 0):
                state.delivered[origin] = seq
            return
        if seq <= state.delivered.get(origin, 0):
            return  # duplicate of an already delivered op
        if seq != state.delivered.get(origin, 0) + 1:
            state.pending[(origin, seq)] = op
            return
        self._deliver(state, op)
        # drain buffered ops that just became causally ready
        while True:
            ready = state.pending.pop((origin, state.delivered[origin] + 1),
                                      None)
            if ready is None:
                break
            self._deliver(state, ready)

    def _deliver(self, state: CrdtState, op: dict) -> None:
        self._apply(state, op)
        self._log_op(state, op)
        state.delivered[op["origin"]] = op["seq"]

    def _log_op(self, state: CrdtState, op: dict) -> None:
        entries = state.log.setdefault(op["origin"], [])
        if any(entry["seq"] == op["seq"] for entry in entries):
            return
        index = len(entries)
        while index > 0 and entries[index - 1]["seq"] > op["seq"]:
            index -= 1
        entries.insert(index, op)

    def _apply(self, state: CrdtState, op: dict) -> None:
        kind = op["kind"]
        if kind == "add":
            state.adds.setdefault(op["elem"], set()).add(op["tag"])
            if state.lww:
                state.present[op["elem"]] = op["tag"]
        elif kind == "remove":
            state.covered.update(op["observed"])
            if state.lww:
                state.present.pop(op["elem"], None)
            else:
                state.tombstones.update(op["observed"])
        elif kind == "inc":
            state.incs[op["origin"]] = \
                state.incs.get(op["origin"], 0) + op["amount"]
        elif kind == "dec":
            state.decs[op["origin"]] = \
                state.decs.get(op["origin"], 0) + op["amount"]

    # -- anti-entropy ------------------------------------------------------------

    def handle_timer(self, ctx: HandlerContext, state: CrdtState,
                     timer: str) -> None:
        if timer != SYNC_TIMER:
            return
        others = self._others(state)
        if others:
            target = others[state.sync_rotation % len(others)]
            state.sync_rotation += 1
            ctx.send(target, DIGEST, {"vector": dict(state.delivered)})
        ctx.set_timer(SYNC_TIMER, self.config.sync_period)

    def handle_message(self, ctx: HandlerContext, state: CrdtState,
                       message: Message) -> None:
        if message.mtype == OP:
            self._ingest(state, message.get("op"))
        elif message.mtype == DIGEST:
            self._on_digest(ctx, state, message)
        elif message.mtype == OPS:
            for op in message.get("ops", ()):
                self._ingest(state, op)

    def _on_digest(self, ctx: HandlerContext, state: CrdtState,
                   message: Message) -> None:
        vector = {int(host): int(seq)
                  for host, seq in dict(message.get("vector", {})).items()}
        missing: list[dict] = []
        for origin in sorted(state.log):
            theirs = vector.get(origin, 0)
            for op in state.log[origin]:
                if op["seq"] > theirs:
                    missing.append(op)
        if missing:
            ctx.send(message.src, OPS, {"ops": missing[:SYNC_BATCH]})
        if any(seq > state.delivered.get(host, 0)
               for host, seq in vector.items()):
            # the digest shows the sender is ahead of us: ask it to push
            # by advertising our own vector back.
            ctx.send(message.src, DIGEST, {"vector": dict(state.delivered)})

    # -- failures ----------------------------------------------------------------

    def handle_connection_error(self, ctx: HandlerContext, state: CrdtState,
                                peer: Address) -> None:
        # Anti-entropy re-delivers anything a broken connection dropped.
        pass
