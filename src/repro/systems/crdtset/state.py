"""CRDT replica state: an op-based OR-Set plus a PN-Counter.

Each replica owns a grow-only operation log and a causal delivery vector.
Operations carry ``(origin, seq)`` identity: an *add* mints a unique tag,
a *remove* names the add-tags it observed, and the counter ops carry a
signed amount.  In OR-Set mode (the correct design) operations are applied
causally (per-origin FIFO, exactly once) and the applies commute, so any
two replicas that delivered the same operations expose the same observable
set and counter value.  The deliberately buggy *last-writer-wins* mode
applies operations in arrival order with no causal metadata — the MET-style
search scenario falsifies it over concurrent add/remove interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ...runtime.address import Address
from ...runtime.state import NodeState

#: Unique identity of one add operation: ``(origin host, origin sequence)``.
Tag = tuple[int, int]


@dataclass
class CrdtState(NodeState):
    """Local state of one CRDT replica."""

    addr: Address
    peers: tuple[Address, ...] = ()
    #: buggy variant: apply ops in arrival order, ignore causal metadata.
    lww: bool = False

    # -- delivery bookkeeping ---------------------------------------------------
    #: own operation counter (also the seq of the next local op).
    seq: int = 0
    #: per-origin contiguous delivery high-water mark (host -> seq).
    delivered: dict[int, int] = field(default_factory=dict)
    #: buffered out-of-order ops awaiting causal predecessors
    #: ((origin, seq) -> op); always empty in LWW mode.
    pending: dict[Tag, dict] = field(default_factory=dict)
    #: grow-only op log in per-origin seq order — the anti-entropy source.
    log: dict[int, list[dict]] = field(default_factory=dict)

    # -- OR-Set -----------------------------------------------------------------
    #: element -> add-tags seen for it.
    adds: dict[Any, set[Tag]] = field(default_factory=dict)
    #: add-tags cancelled by a remove (OR-Set observed-remove semantics).
    tombstones: set[Tag] = field(default_factory=set)
    #: every tag any *applied* remove claimed to observe; a tag in here
    #: must never be live again (the resurrection property reads this).
    covered: set[Tag] = field(default_factory=set)
    #: LWW mode only: the single winning tag per present element.
    present: dict[Any, Tag] = field(default_factory=dict)

    # -- PN-Counter -------------------------------------------------------------
    incs: dict[int, int] = field(default_factory=dict)
    decs: dict[int, int] = field(default_factory=dict)

    #: rotation index over peers for anti-entropy rounds (deterministic
    #: stand-in for random peer choice, so live and model runs agree).
    sync_rotation: int = 0

    # -- derived views -----------------------------------------------------------

    def live_tags(self, elem: Any) -> set[Tag]:
        """The add-tags currently keeping ``elem`` in the set."""
        if self.lww:
            tag = self.present.get(elem)
            return {tag} if tag is not None else set()
        return self.adds.get(elem, set()) - self.tombstones

    def observable(self) -> frozenset:
        """The elements a client reading this replica would see."""
        if self.lww:
            return frozenset(self.present)
        return frozenset(
            elem for elem, tags in self.adds.items()
            if tags - self.tombstones)

    def counter_value(self) -> int:
        return sum(self.incs.values()) - sum(self.decs.values())

    def resurrected(self) -> Iterator[tuple[Any, Tag]]:
        """Elements held live by a tag some applied remove observed."""
        elems = self.present if self.lww else self.adds
        for elem in sorted(elems, key=repr):
            for tag in sorted(self.live_tags(elem)):
                if tag in self.covered:
                    yield elem, tag

    def delivery_vector(self) -> dict[int, int]:
        """The delivery vector with zero entries normalised away."""
        return {host: seq for host, seq in self.delivered.items() if seq}
