"""Safety and convergence properties for the CRDT replica group.

Registered under the ``crdtset.`` namespace.  The convergence check is the
CRDT literature's *strong eventual consistency* obligation restated as a
safety property: two replicas that have delivered the same operations (equal
delivery vectors, nothing buffered) must expose the same observable set and
counter value.  Stated this way it is checkable on every single global
state, which is what lets consequence prediction falsify the buggy LWW
variant instead of waiting for a liveness window to expire.
"""

from __future__ import annotations

from typing import Iterable

from ...mc.global_state import GlobalState, NodeLocal
from ...properties import (
    SafetyProperty,
    eventually,
    node_property,
    pairwise_property,
    register_properties,
    typed_check,
    typed_states,
)
from ...runtime.address import Address
from .state import CrdtState


def _converged(addr_a: Address, local_a: NodeLocal,
               addr_b: Address, local_b: NodeLocal,
               gs: GlobalState) -> Iterable[str]:
    state_a, state_b = local_a.state, local_b.state
    if not isinstance(state_a, CrdtState) or not isinstance(state_b, CrdtState):
        return
    if state_a.pending or state_b.pending:
        return
    if state_a.delivery_vector() != state_b.delivery_vector():
        return
    seen_a, seen_b = state_a.observable(), state_b.observable()
    if seen_a != seen_b:
        yield (f"replicas {addr_a} and {addr_b} delivered the same ops but "
               f"observe different sets: "
               f"{sorted(seen_a, key=repr)} vs {sorted(seen_b, key=repr)}")
    if state_a.counter_value() != state_b.counter_value():
        yield (f"replicas {addr_a} and {addr_b} delivered the same ops but "
               f"disagree on the counter: {state_a.counter_value()} vs "
               f"{state_b.counter_value()}")


@typed_check(CrdtState)
def _no_tombstone_resurrection(addr: Address, state: CrdtState,
                               timers: frozenset[str],
                               gs: GlobalState) -> Iterable[str]:
    for elem, tag in state.resurrected():
        yield (f"element {elem!r} is observable through add-tag {tag} "
               f"although an applied remove already covered that tag")


CONVERGED = pairwise_property(
    "crdtset.converged", _converged,
    "Replicas with equal delivery vectors (and empty reorder buffers) must "
    "expose the same observable set and counter value.",
    severity="critical", tags=("crdt", "convergence"))

NO_TOMBSTONE_RESURRECTION = node_property(
    "crdtset.no_tombstone_resurrection", _no_tombstone_resurrection,
    "An add-tag observed by an applied remove never becomes live again.",
    severity="error", tags=("crdt",))


def _all_replicas_converged(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, CrdtState)]
    if not states:
        return False
    if any(s.pending for s in states):
        return False
    reference = states[0]
    return all(
        s.delivery_vector() == reference.delivery_vector()
        and s.observable() == reference.observable()
        and s.counter_value() == reference.counter_value()
        for s in states[1:])


#: Bounded liveness (opt-in): once the workload quiesces, anti-entropy must
#: drive every replica to the same delivered set and observable state.
EVENTUALLY_CONVERGES = eventually(
    "crdtset.eventually_converges", _all_replicas_converged, within=150.0,
    description="All replicas reach identical delivery vectors, observable "
                "sets and counter values within 150 s of the run start.",
    tags=("crdt", "convergence"))

ALL_PROPERTIES: list[SafetyProperty] = [
    CONVERGED,
    NO_TOMBSTONE_RESURRECTION,
]

register_properties(ALL_PROPERTIES + [EVENTUALLY_CONVERGES])
