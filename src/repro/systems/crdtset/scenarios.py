"""Scripted CRDT snapshots for offline search (MET-style).

The concurrent-ops scenario reproduces the classic add/remove race that
separates a correct OR-Set from a last-writer-wins set.  Replica A added
element ``x`` (tag ``(1, 1)``) and everyone delivered it.  Concurrently,
replica B removed ``x`` (observing exactly that tag) while a duplicated
copy of A's original add is still in flight towards replica C.  Exhaustive
search over the delivery interleavings at C falsifies the LWW variant —
the late duplicate resurrects ``x`` through a covered tag and C diverges
from A under an equal delivery vector — while the OR-Set variant (built
with ``fixed=True``) deduplicates the op and stays clean on every path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ...mc.global_state import GlobalState
from ...runtime.address import Address, make_addresses
from ...runtime.messages import Message
from .protocol import OP, CrdtConfig, CrdtReplica
from .state import CrdtState


@dataclass
class ConcurrentOpsScenario:
    """Three replicas racing a remove against a duplicated add."""

    protocol: CrdtReplica
    states: Mapping[Address, CrdtState]
    inflight: tuple[Message, ...] = field(default_factory=tuple)

    @classmethod
    def build(cls, *, fixed: bool = False, **_ignored) -> "ConcurrentOpsScenario":
        """``fixed=False`` builds the buggy LWW variant the search falsifies."""
        addresses = make_addresses(3, start=1)
        a, b, c = addresses
        protocol = CrdtReplica(CrdtConfig(peers=tuple(addresses),
                                          lww=not fixed))
        states = {addr: protocol.initial_state(addr) for addr in addresses}

        # Established history: A's add of "x" was delivered everywhere.
        add_op = {"origin": a.host, "seq": 1, "kind": "add", "elem": "x",
                  "tag": (a.host, 1)}
        for addr in addresses:
            protocol._ingest(states[addr], add_op)
        states[a].seq = 1

        # Concurrent present: B removes "x" (observing tag (1, 1)); its
        # Remove ops to A and C are still in flight, as is a duplicated
        # copy of A's original add heading for C.
        remove_op = {"origin": b.host, "seq": 1, "kind": "remove",
                     "elem": "x", "observed": ((a.host, 1),)}
        protocol._ingest(states[b], remove_op)
        states[b].seq = 1

        inflight = (
            Message(mtype=OP, src=b, dst=a, payload={"op": remove_op}),
            Message(mtype=OP, src=b, dst=c, payload={"op": remove_op}),
            Message(mtype=OP, src=a, dst=c, payload={"op": add_op}),
        )
        return cls(protocol=protocol, states=states, inflight=inflight)

    def global_state(self) -> GlobalState:
        return GlobalState.from_snapshot(self.states, inflight=self.inflight)
