"""CRDT replica group registration with the unified experiment API."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...api.experiment import (
    make_fault_scenario_runner,
    make_search_scenario_runner,
)
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import CrdtConfig, CrdtReplica
from .scenarios import ConcurrentOpsScenario

#: CrdtConfig fields accepted as experiment options.
_CONFIG_OPTIONS = ("sync_period", "lww")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("crdtset", options, _CONFIG_OPTIONS + ("fixed",))
    lww = bool(options.get("lww", False)) and not options.get("fixed")
    kwargs = {}
    if "sync_period" in options:
        kwargs["sync_period"] = float(options["sync_period"])
    config = CrdtConfig(peers=tuple(addresses), lww=lww, **kwargs)
    return lambda: CrdtReplica(config)


def _schedule(sim, addresses: Sequence[Address],
              options: Mapping[str, Any]) -> None:
    """Deterministic replicated-set workload with deliberate concurrency.

    Every replica adds its own element and bumps the counter; the first and
    last replicas then race an add/remove pair on one shared element (the
    OR-Set resolves it add-wins).  All operations finish early in the run
    so the tail exercises anti-entropy convergence under quiescence.
    """
    for index, addr in enumerate(addresses):
        base = 2.0 + index * 1.5
        sim.schedule_app(base, addr, "add", {"elem": f"e{index}"})
        sim.schedule_app(base + 4.0, addr, "inc", {"amount": index + 1})
    first, last = addresses[0], addresses[-1]
    sim.schedule_app(10.0, first, "add", {"elem": "shared"})
    sim.schedule_app(16.0, last, "remove", {"elem": "shared"})
    sim.schedule_app(16.0, first, "add", {"elem": "shared"})
    sim.schedule_app(22.0, last, "dec", {"amount": 1})


def _collect(sim) -> dict:
    sets: dict[str, list] = {}
    counters: dict[str, int] = {}
    resurrections = 0
    for addr, node in sorted(sim.nodes.items()):
        state = node.state
        sets[str(addr)] = sorted(state.observable(), key=repr)
        counters[str(addr)] = state.counter_value()
        resurrections += sum(1 for _ in state.resurrected())
    distinct_sets = {tuple(values) for values in sets.values()}
    return {"sets_by_node": sets,
            "counters_by_node": counters,
            "converged": len(distinct_sets) <= 1
                         and len(set(counters.values())) <= 1,
            "resurrections": resurrections}


def _prepare_concurrent_ops(fixed: bool):
    scenario = ConcurrentOpsScenario.build(fixed=fixed)
    return scenario.protocol, scenario.global_state()


def _make_set_op(rng, key, addresses):
    """60/30/10 add/remove/inc mix against a random replica."""
    replica = addresses[int(rng.random() * len(addresses)) % len(addresses)]
    draw = rng.random()
    if draw < 0.6:
        return replica, "add", {"elem": f"e{key}"}
    if draw < 0.9:
        return replica, "remove", {"elem": f"e{key}"}
    return replica, "inc", {"amount": 1}


SPEC = register_system(SystemSpec(
    name="crdtset",
    summary="Op-based OR-Set + PN-Counter replicas with anti-entropy "
            "(MET-style CRDT target)",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    property_namespace="crdtset",
    transition_factory=lambda: TransitionConfig(enable_resets=False),
    scenarios={
        "concurrent-ops": ScenarioSpec(
            name="concurrent-ops",
            description="Exhaustive search over a remove racing a "
                        "duplicated add: falsifies the buggy LWW-set "
                        "delivery (run with fixed=True for the OR-Set)",
            run=make_search_scenario_runner(
                system="crdtset", scenario="concurrent-ops",
                properties=ALL_PROPERTIES,
                prepare=_prepare_concurrent_ops,
                default_max_states=4000, default_max_depth=8,
                resets=False),
            build=ConcurrentOpsScenario.build,
        ),
        "partition-sync": ScenarioSpec(
            name="partition-sync",
            description="Live replica group under recurring healed "
                        "partitions: anti-entropy must re-converge the "
                        "sides after each heal",
            run=make_fault_scenario_runner(
                system="crdtset", faults=("partition",),
                default_nodes=4, default_duration=240.0),
        ),
        "lww-divergence": ScenarioSpec(
            name="lww-divergence",
            description="Live run of the buggy LWW variant under delays "
                        "and duplicated messages: replicas diverge and "
                        "resurrect removed elements",
            run=make_fault_scenario_runner(
                system="crdtset", faults=("delay", "duplicate"),
                default_nodes=4, default_duration=240.0,
                options={"lww": True}),
        ),
    },
    workloads={
        "set-ops": WorkloadSpec(
            name="set-ops",
            description="Open-loop add/remove/inc mix on random replicas "
                        "(anti-entropy carries the operations outward)",
            make_request=_make_set_op,
            traffic=TrafficSpec(rate=50.0, burst=10, keys=128,
                                key_distribution="uniform", start=10.0),
        ),
    },
    default_nodes=4,
    default_duration=200.0,
    join_call=None,
    supports_churn=False,
    default_churn_interval=None,
    search_budget_factory=lambda: SearchBudget(max_states=400, max_depth=6),
    schedule=_schedule,
    collect=_collect,
))
