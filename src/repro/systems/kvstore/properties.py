"""Session-guarantee and durability properties for the KV store.

Registered under the ``kvstore.`` namespace.  The two session guarantees
(read-your-writes, monotonic reads) are checked against the per-node
``stale_reads`` log the coordinator appends to when a completed read
returns a version below one of its floors — recording the observation in
state is what makes the guarantee checkable by the model checkers, the
live monitor and the immediate safety check alike (the same idiom the
Paxos state uses for learned values).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...mc.global_state import GlobalState
from ...properties import (
    SafetyProperty,
    eventually,
    node_property,
    register_properties,
    typed_check,
    typed_states,
)
from ...runtime.address import Address
from .protocol import REPLICATE
from .state import KvState


@typed_check(KvState)
def _read_your_writes(addr: Address, state: KvState,
                      timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    for kind, key, floor, got in state.stale_reads:
        if kind == "read_your_writes":
            yield (f"read of {key!r} returned version {got}, below this "
                   f"client's own committed write {floor}")


@typed_check(KvState)
def _monotonic_reads(addr: Address, state: KvState,
                     timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    for kind, key, floor, got in state.stale_reads:
        if kind == "monotonic_reads":
            yield (f"read of {key!r} returned version {got}, below the "
                   f"version {floor} this client previously read")


def _quorum_intersection(
        state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
    """Every committed write is durable at a write quorum (or being repaired).

    A committed write whose coordinator no longer tracks it in
    ``pending_writes`` has no repair path left: at least ``W`` replicas
    must hold its version (counting copies still in flight), otherwise a
    crash-induced data loss has silently dropped below quorum durability.
    """
    replicas = dict(typed_states(state, KvState))
    inflight: dict[str, list] = {}
    for message in state.inflight:
        if message.mtype == REPLICATE:
            version = tuple(message.get("version"))
            inflight.setdefault(message.get("key"), []).append(version)
    for addr in sorted(replicas):
        coordinator = replicas[addr]
        for key in sorted(coordinator.committed):
            version, _value = coordinator.committed[key]
            entry = coordinator.pending_writes.get(key)
            if entry is not None and tuple(entry["version"]) >= version:
                continue  # the reconciler is still repairing this write
            holders = sum(1 for replica in replicas.values()
                          if replica.stored_version(key) >= version)
            pending = sum(1 for v in inflight.get(key, ()) if v >= version)
            if holders + pending < coordinator.write_quorum:
                yield addr, (
                    f"committed write {key!r}@{version} is held by only "
                    f"{holders} replicas (W={coordinator.write_quorum}) "
                    f"with no repair pending")


READ_YOUR_WRITES = node_property(
    "kvstore.read_your_writes", _read_your_writes,
    "A client never reads a version older than a write it already "
    "committed.",
    severity="critical", tags=("kv", "session"))

MONOTONIC_READS = node_property(
    "kvstore.monotonic_reads", _monotonic_reads,
    "Successive reads by one client never go backwards in version order.",
    severity="error", tags=("kv", "session"))

QUORUM_INTERSECTION = SafetyProperty(
    "kvstore.quorum_intersection", _quorum_intersection,
    "Every committed write stays durable at >= W replicas (counting "
    "in-flight copies) unless a repair is still pending.",
    severity="critical", tags=("kv", "durability"))


def _stores_agree(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, KvState)]
    if not states:
        return False
    if any(s.pending_writes for s in states):
        return False
    stores = {
        tuple(sorted((key, version)
                     for key, (version, _value) in s.store.items()))
        for s in states}
    return len(stores) == 1


#: Bounded liveness (opt-in): once the workload quiesces, the reconciler
#: must drive every replica to the same versioned store.
EVENTUALLY_CONSISTENT = eventually(
    "kvstore.eventually_consistent", _stores_agree, within=180.0,
    description="All replicas converge to identical versioned stores (no "
                "repairs outstanding) within 180 s of the run start.",
    tags=("kv", "convergence"))

ALL_PROPERTIES: list[SafetyProperty] = [
    READ_YOUR_WRITES,
    MONOTONIC_READS,
    QUORUM_INTERSECTION,
]

register_properties(ALL_PROPERTIES + [EVENTUALLY_CONSISTENT])
