"""Quorum-replicated key-value store with optimistic execution.

The second replicated-data system: R/W-quorum replication whose optimistic
mode acks writes before the quorum confirms, trading session-guarantee
staleness under partitions for latency — the staleness CrystalBall's
consequence prediction forecasts and execution steering avoids (see
``examples/kv_optimistic_steering.py``).
"""

from .properties import (
    ALL_PROPERTIES,
    EVENTUALLY_CONSISTENT,
    MONOTONIC_READS,
    QUORUM_INTERSECTION,
    READ_YOUR_WRITES,
)
from .protocol import (
    CLIENT_TIMER,
    READ_REPLY,
    READ_REQ,
    RECONCILE_TIMER,
    REPL_ACK,
    REPLICATE,
    KvConfig,
    KvStore,
)
from .scenarios import StaleReadScenario
from .state import NO_VERSION, KvState, Version

__all__ = [
    "ALL_PROPERTIES",
    "EVENTUALLY_CONSISTENT",
    "MONOTONIC_READS",
    "QUORUM_INTERSECTION",
    "READ_YOUR_WRITES",
    "CLIENT_TIMER",
    "READ_REPLY",
    "READ_REQ",
    "RECONCILE_TIMER",
    "REPL_ACK",
    "REPLICATE",
    "KvConfig",
    "KvStore",
    "StaleReadScenario",
    "NO_VERSION",
    "KvState",
    "Version",
]
