"""KV store registration with the unified experiment API."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...api.experiment import (
    make_fault_scenario_runner,
    make_search_scenario_runner,
)
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import READ_REPLY, KvConfig, KvStore
from .scenarios import StaleReadScenario

#: KvConfig fields accepted as experiment options.
_CONFIG_OPTIONS = ("read_quorum", "write_quorum", "optimistic",
                   "op_period", "reconcile_period", "keys", "ops_per_node")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("kvstore", options, _CONFIG_OPTIONS + ("fixed",))
    majority = len(addresses) // 2 + 1
    optimistic = bool(options.get("optimistic", False)) \
        and not options.get("fixed")
    config = KvConfig(
        peers=tuple(addresses),
        read_quorum=int(options.get("read_quorum", majority)),
        write_quorum=int(options.get("write_quorum", majority)),
        optimistic=optimistic,
        op_period=float(options.get("op_period", 10.0)),
        reconcile_period=float(options.get("reconcile_period", 20.0)),
        keys=int(options.get("keys", 2)),
        ops_per_node=int(options.get("ops_per_node", 8)),
    )
    return lambda: KvStore(config)


def _collect(sim) -> dict:
    stale = {"read_your_writes": 0, "monotonic_reads": 0}
    reads = writes = 0
    stores: set = set()
    per_node: dict[str, dict] = {}
    for addr, node in sorted(sim.nodes.items()):
        state = node.state
        for kind, *_rest in state.stale_reads:
            stale[kind] = stale.get(kind, 0) + 1
        reads += state.reads_done
        writes += state.writes_done
        stores.add(tuple(sorted(
            (key, version)
            for key, (version, _value) in state.store.items())))
        per_node[str(addr)] = {"reads": state.reads_done,
                               "writes": state.writes_done,
                               "stale": len(state.stale_reads)}
    return {"reads_done": reads,
            "writes_committed": writes,
            "stale_reads": stale,
            "stale_total": sum(stale.values()),
            "replicas_converged": len(stores) <= 1,
            "per_node": per_node}


def _make_get_put(rng, key, addresses):
    """70/30 get/put mix against a random coordinator."""
    coordinator = addresses[int(rng.random() * len(addresses))
                            % len(addresses)]
    if rng.random() < 0.7:
        return coordinator, "get", {"key": f"k{key}"}
    return coordinator, "put", {"key": f"k{key}",
                                "value": f"w{key}.{rng.randrange(1 << 16)}"}


def _prepare_stale_read(fixed: bool):
    scenario = StaleReadScenario.build(fixed=fixed)
    return scenario.protocol, scenario.global_state()


SPEC = register_system(SystemSpec(
    name="kvstore",
    summary="Quorum-replicated KV store with optimistic execution: "
            "session-guarantee staleness under partitions",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    property_namespace="kvstore",
    transition_factory=lambda: TransitionConfig(enable_resets=False),
    scenarios={
        "stale-read": ScenarioSpec(
            name="stale-read",
            description="Consequence prediction from an under-replicated "
                        "optimistic commit: the client's read-back "
                        "violates read-your-writes (run with fixed=True "
                        "for the quorum-read variant)",
            run=make_search_scenario_runner(
                system="kvstore", scenario="stale-read",
                properties=ALL_PROPERTIES,
                prepare=_prepare_stale_read,
                default_max_states=4000, default_max_depth=8,
                resets=False),
            build=StaleReadScenario.build,
        ),
        "optimistic-staleness": ScenarioSpec(
            name="optimistic-staleness",
            description="Live optimistic-execution run under recurring "
                        "healed partitions: reads after a heal race the "
                        "reconciler and go stale (the steering demo "
                        "scenario)",
            run=make_fault_scenario_runner(
                system="kvstore", faults=("partition",),
                default_nodes=5, default_duration=240.0,
                options={"optimistic": True, "ops_per_node": 18,
                         "reconcile_period": 45.0}),
        ),
        "quorum-partition": ScenarioSpec(
            name="quorum-partition",
            description="Control run: the same partition schedule with "
                        "quorum reads and writes stays staleness-free",
            run=make_fault_scenario_runner(
                system="kvstore", faults=("partition",),
                default_nodes=5, default_duration=240.0,
                options={"ops_per_node": 18, "reconcile_period": 45.0}),
        ),
    },
    workloads={
        "get-put": WorkloadSpec(
            name="get-put",
            description="Open-loop 70/30 get/put mix against random "
                        "coordinators (quorum or optimistic reads per "
                        "the experiment's options)",
            make_request=_make_get_put,
            traffic=TrafficSpec(rate=100.0, burst=10, keys=64,
                                key_distribution="hotspot", start=20.0),
            completion_mtypes=frozenset({READ_REPLY}),
        ),
    },
    default_nodes=5,
    default_duration=200.0,
    join_call=None,
    supports_churn=False,
    default_churn_interval=None,
    search_budget_factory=lambda: SearchBudget(max_states=400, max_depth=6),
    collect=_collect,
))
