"""Scripted KV-store snapshot for offline search.

The stale-read scenario captures the signature optimistic-execution state:
coordinator A optimistically committed a write of ``k0`` whose replication
to B and C was cut off by a partition (the pending-write entry still shows
only A's own ack), and A's client script is about to read ``k0`` back.
Consequence prediction fires the armed client timer: in optimistic mode
the read is served by one rotated replica that still holds the old
version, violating read-your-writes within three transitions.  Built with
``fixed=True`` the same history is quorum-committed (B acked before the
cut) and the read collects ``R = 2`` replies — the read quorum intersects
the write quorum, so every path stays clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ...mc.global_state import GlobalState
from ...runtime.address import Address, make_addresses
from .protocol import CLIENT_TIMER, KvConfig, KvStore
from .state import KvState


@dataclass
class StaleReadScenario:
    """Three replicas; A reads back an under-replicated optimistic write."""

    protocol: KvStore
    states: Mapping[Address, KvState]
    timers: Mapping[Address, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, *, fixed: bool = False, **_ignored) -> "StaleReadScenario":
        """``fixed=False`` builds the optimistic mode the search falsifies."""
        addresses = make_addresses(3, start=1)
        a, b, c = addresses
        protocol = KvStore(KvConfig(peers=tuple(addresses),
                                    read_quorum=2, write_quorum=2,
                                    optimistic=not fixed))
        states = {addr: protocol.initial_state(addr) for addr in addresses}

        base_version = (1, b.host)
        fresh_version = (2, a.host)

        # Established history: everyone once held k0@base; A then wrote
        # k0@fresh and committed it (optimistically, or — in the fixed
        # variant — after B's quorum ack).  The partition cut the rest of
        # the replication, so the pending entry still awaits acks.
        for state in states.values():
            state.store["k0"] = (base_version, "base")
            state.observe_version(base_version)
        coordinator = states[a]
        coordinator.store["k0"] = (fresh_version, "fresh")
        coordinator.observe_version(fresh_version)
        coordinator.committed["k0"] = (fresh_version, "fresh")
        coordinator.last_written["k0"] = fresh_version
        coordinator.writes_done = 1
        acks = {a, b} if fixed else {a}
        coordinator.pending_writes["k0"] = {
            "version": fresh_version, "value": "fresh",
            "acks": acks, "committed": True}
        if fixed:
            states[b].store["k0"] = (fresh_version, "fresh")
            states[b].observe_version(fresh_version)

        # A's client script is about to read k0 back; the client timer is
        # armed, so the model checker can fire the read.  The other nodes'
        # scripts are cleared (their client timers are not armed anyway).
        coordinator.workload = (("get", "k0", None),)
        coordinator.next_op = 0
        for addr, state in states.items():
            if addr != a:
                state.workload = ()

        timers = {a: (CLIENT_TIMER,)}
        return cls(protocol=protocol, states=states, timers=timers)

    def global_state(self) -> GlobalState:
        return GlobalState.from_snapshot(self.states, timers=self.timers)
