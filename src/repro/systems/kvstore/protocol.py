"""Quorum-replicated key-value store with an optimistic-execution mode.

Every node is a replica and the coordinator for its own client, whose
deterministic put/get script is embedded in the node state and driven by
the ``client`` timer (so the model checker sees the upcoming operations in
every checkpoint).  A put stores locally, replicates to all peers and —
depending on the mode — acks the client either immediately (*optimistic
execution*, after Nguyen et al.'s optimistic KV store) or once ``W``
replicas acked.  A background reconciler keeps re-sending unacked
replications until every replica converges.

Reads are the observable difference between the modes: the quorum mode
collects ``R`` versioned replies (``R + W > N``, so a read quorum always
intersects the write quorum and sees the newest committed write), while
the optimistic mode serves a read from one rotated replica — fast, but
under a partition that replica may still miss this client's own committed
write, producing the read-your-writes/monotonic-reads staleness the
CrystalBall steering demo predicts and avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message
from ...runtime.protocol import Protocol
from .state import NO_VERSION, KvState, Version

REPLICATE = "Replicate"
REPL_ACK = "ReplAck"
READ_REQ = "ReadReq"
READ_REPLY = "ReadReply"

CLIENT_TIMER = "client"
RECONCILE_TIMER = "reconcile"


@dataclass
class KvConfig:
    """Replica-group membership, quorum sizes and workload knobs."""

    peers: tuple[Address, ...] = ()
    read_quorum: int = 2
    write_quorum: int = 2
    #: ack writes to the client before the write quorum confirms.
    optimistic: bool = False
    #: period of the client script timer (one op per firing).
    op_period: float = 10.0
    #: period of the background repair timer.
    reconcile_period: float = 20.0
    #: number of distinct keys the generated workload touches.
    keys: int = 2
    #: length of each node's generated put/get script.
    ops_per_node: int = 8

    def workload_for(self, addr: Address) -> tuple[tuple, ...]:
        """Deterministic per-node client script: put/get pairs per key.

        Each pair writes a key and reads it back one period later, so the
        read-your-writes floor is exercised on every other operation; the
        key rotates per pair (and per host) so nodes contend.
        """
        key_names = [f"k{i}" for i in range(max(1, self.keys))]
        ops: list[tuple] = []
        for n in range(self.ops_per_node):
            key = key_names[(addr.host + n // 2) % len(key_names)]
            if n % 2 == 0:
                ops.append(("put", key, f"v{addr.host}.{n}"))
            else:
                ops.append(("get", key, None))
        return tuple(ops)


class KvStore(Protocol):
    """One node of the quorum-replicated KV store."""

    name = "KvStore"

    def __init__(self, config: Optional[KvConfig] = None) -> None:
        self.config = config or KvConfig()

    # -- state -------------------------------------------------------------------

    def initial_state(self, addr: Address) -> KvState:
        return KvState(addr=addr, peers=tuple(self.config.peers),
                       optimistic=self.config.optimistic,
                       read_quorum=self.config.read_quorum,
                       write_quorum=self.config.write_quorum,
                       workload=self.config.workload_for(addr))

    def timer_specs(self) -> Mapping[str, float]:
        return {CLIENT_TIMER: self.config.op_period,
                RECONCILE_TIMER: self.config.reconcile_period}

    def neighbors(self, state: KvState) -> list[Address]:
        return self._others(state)

    def on_start(self, ctx: HandlerContext, state: KvState) -> None:
        # Stagger the first client op per host so coordinators do not act
        # in lockstep (deterministically: no randomness involved).
        ctx.set_timer(CLIENT_TIMER, 1.0 + state.addr.host % 5)
        ctx.set_timer(RECONCILE_TIMER, self.config.reconcile_period)

    def _others(self, state: KvState) -> list[Address]:
        return sorted(a for a in state.peers if a != state.addr)

    # -- client script -----------------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: KvState, call: str,
                   payload: Mapping[str, Any]) -> None:
        """External client operations (the "get-put" workload): the same
        coordinator paths the embedded client script drives."""
        if call == "put":
            self._do_put(ctx, state, str(payload.get("key", "k0")),
                         payload.get("value"))
        elif call == "get":
            self._do_get(ctx, state, str(payload.get("key", "k0")))

    def handle_timer(self, ctx: HandlerContext, state: KvState,
                     timer: str) -> None:
        if timer == CLIENT_TIMER:
            if state.workload_done():
                return  # script finished: let the system quiesce
            op, key, value = state.workload[state.next_op]
            state.next_op += 1
            if op == "put":
                self._do_put(ctx, state, key, value)
            else:
                self._do_get(ctx, state, key)
            if not state.workload_done():
                ctx.set_timer(CLIENT_TIMER, self.config.op_period)
        elif timer == RECONCILE_TIMER:
            self._reconcile(ctx, state)
            ctx.set_timer(RECONCILE_TIMER, self.config.reconcile_period)

    # -- writes ------------------------------------------------------------------

    def _do_put(self, ctx: HandlerContext, state: KvState, key: str,
                value: Any) -> None:
        version = state.next_version()
        state.store[key] = (version, value)
        entry = {"version": version, "value": value, "acks": {state.addr},
                 "committed": False}
        state.pending_writes[key] = entry
        for peer in self._others(state):
            ctx.send(peer, REPLICATE,
                     {"key": key, "version": version, "value": value})
        if state.optimistic or state.write_quorum <= 1:
            # Optimistic execution: ack the client now; the reconciler
            # repairs replicas in the background.
            self._commit_write(state, entry, key)

    def _commit_write(self, state: KvState, entry: dict, key: str) -> None:
        if entry["committed"]:
            return
        entry["committed"] = True
        version, value = entry["version"], entry["value"]
        state.committed[key] = (version, value)
        if version > state.last_written.get(key, NO_VERSION):
            state.last_written[key] = version
        state.writes_done += 1

    def _reconcile(self, ctx: HandlerContext, state: KvState) -> None:
        for key in sorted(state.pending_writes):
            entry = state.pending_writes[key]
            for peer in self._others(state):
                if peer not in entry["acks"]:
                    ctx.send(peer, REPLICATE,
                             {"key": key, "version": entry["version"],
                              "value": entry["value"]})

    # -- reads -------------------------------------------------------------------

    def _do_get(self, ctx: HandlerContext, state: KvState, key: str) -> None:
        state.read_counter += 1
        rid = state.read_counter
        if state.optimistic:
            others = self._others(state)
            if not others:
                self._record_read(state, key, state.stored_version(key))
                return
            target = others[state.read_rotation % len(others)]
            state.read_rotation += 1
            state.pending_reads[rid] = {"key": key, "expect": 1,
                                        "replies": {}}
            ctx.send(target, READ_REQ, {"key": key, "rid": rid})
            return
        expect = min(state.read_quorum, state.replica_count())
        local_version, local_value = state.store.get(key, (NO_VERSION, None))
        replies = {state.addr: (local_version, local_value)}
        state.pending_reads[rid] = {"key": key, "expect": expect,
                                    "replies": replies}
        if len(replies) >= expect:
            self._finish_read(state, rid)
            return
        for peer in self._others(state):
            ctx.send(peer, READ_REQ, {"key": key, "rid": rid})

    def _finish_read(self, state: KvState, rid: int) -> None:
        request = state.pending_reads.pop(rid)
        version = max(v for v, _value in request["replies"].values())
        self._record_read(state, request["key"], version)

    def _record_read(self, state: KvState, key: str,
                     version: Version) -> None:
        state.observe_version(version)
        write_floor = state.last_written.get(key, NO_VERSION)
        if version < write_floor:
            state.stale_reads.append(
                ("read_your_writes", key, write_floor, version))
        read_floor = state.last_read.get(key, NO_VERSION)
        if version < read_floor:
            state.stale_reads.append(
                ("monotonic_reads", key, read_floor, version))
        if version > read_floor:
            state.last_read[key] = version
        state.reads_done += 1

    # -- replica role ------------------------------------------------------------

    def handle_message(self, ctx: HandlerContext, state: KvState,
                       message: Message) -> None:
        handlers = {
            REPLICATE: self._on_replicate,
            REPL_ACK: self._on_repl_ack,
            READ_REQ: self._on_read_req,
            READ_REPLY: self._on_read_reply,
        }
        handler = handlers.get(message.mtype)
        if handler is not None:
            handler(ctx, state, message)

    def _on_replicate(self, ctx: HandlerContext, state: KvState,
                      message: Message) -> None:
        key = message.get("key")
        version: Version = tuple(message.get("version"))
        state.observe_version(version)
        if version > state.stored_version(key):
            state.store[key] = (version, message.get("value"))
        # Ack unconditionally (also for duplicates and stale retries) so
        # the coordinator's reconciler converges.
        ctx.send(message.src, REPL_ACK, {"key": key, "version": version})

    def _on_repl_ack(self, ctx: HandlerContext, state: KvState,
                     message: Message) -> None:
        key = message.get("key")
        version: Version = tuple(message.get("version"))
        entry = state.pending_writes.get(key)
        if entry is None or tuple(entry["version"]) != version:
            return  # superseded by a newer local write
        entry["acks"].add(message.src)
        if not entry["committed"] and len(entry["acks"]) >= state.write_quorum:
            self._commit_write(state, entry, key)
        if len(entry["acks"]) >= state.replica_count():
            del state.pending_writes[key]  # fully replicated

    def _on_read_req(self, ctx: HandlerContext, state: KvState,
                     message: Message) -> None:
        key = message.get("key")
        version, value = state.store.get(key, (NO_VERSION, None))
        ctx.send(message.src, READ_REPLY,
                 {"key": key, "rid": message.get("rid"),
                  "version": version, "value": value})

    def _on_read_reply(self, ctx: HandlerContext, state: KvState,
                       message: Message) -> None:
        request = state.pending_reads.get(message.get("rid"))
        if request is None:
            return
        request["replies"][message.src] = \
            (tuple(message.get("version")), message.get("value"))
        if len(request["replies"]) >= request["expect"]:
            self._finish_read(state, message.get("rid"))

    # -- failures ----------------------------------------------------------------

    def handle_connection_error(self, ctx: HandlerContext, state: KvState,
                                peer: Address) -> None:
        # Replication retries go through the reconciler; an unreachable
        # read target simply leaves the read outstanding.
        pass
