"""Quorum-replicated KV store node state.

Every node is both a replica (it stores versioned values) and a
coordinator for its own clients (it drives a deterministic workload script
of puts and gets).  Versions are ``(counter, host)`` pairs ordered
lexicographically — a Lamport-style counter makes concurrent writes
totally ordered and unique per coordinator.

The session-guarantee bookkeeping is the part the properties read: each
completed read is checked against the client's *read-your-writes* floor
(versions this node itself committed) and *monotonic-reads* floor
(versions it previously read); violations are appended to the
``stale_reads`` log, mirroring how the Paxos state records learned values
for the agreement property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ...runtime.address import Address
from ...runtime.state import NodeState

#: Totally ordered write version: ``(counter, coordinator host)``.
Version = tuple[int, int]

#: Sentinel for "no version"; smaller than every real version.
NO_VERSION: Version = (0, 0)


@dataclass
class KvState(NodeState):
    """Local state of one KV replica/coordinator."""

    addr: Address
    peers: tuple[Address, ...] = ()
    #: optimistic execution: writes commit before the write quorum acks.
    optimistic: bool = False
    read_quorum: int = 1
    write_quorum: int = 1

    # -- replica role -----------------------------------------------------------
    #: key -> (version, value); versions only ever move forward.
    store: dict[str, tuple[Version, Any]] = field(default_factory=dict)
    #: Lamport-style counter: max write-version counter seen or minted.
    version_counter: int = 0

    # -- coordinator role -------------------------------------------------------
    #: deterministic client script: tuple of ("put"|"get", key, value) ops.
    workload: tuple[tuple, ...] = ()
    next_op: int = 0
    #: unacked replications: key -> {"version", "value", "acks": set[Address]};
    #: the reconciler keeps re-sending until every replica acked.
    pending_writes: dict[str, dict] = field(default_factory=dict)
    #: outstanding reads: read id -> {"key", "expect", "replies": {addr: (v, val)}}.
    pending_reads: dict[int, dict] = field(default_factory=dict)
    read_counter: int = 0
    #: rotation index over peers for optimistic read-one target choice
    #: (deterministic, so live runs and model predictions agree).
    read_rotation: int = 0

    # -- session guarantees -----------------------------------------------------
    #: read-your-writes floor: key -> highest version this node committed.
    last_written: dict[str, Version] = field(default_factory=dict)
    #: monotonic-reads floor: key -> highest version this node read.
    last_read: dict[str, Version] = field(default_factory=dict)
    #: writes acked to the local client: key -> (version, value).
    committed: dict[str, tuple[Version, Any]] = field(default_factory=dict)
    #: observed staleness: (kind, key, floor version, version actually read).
    stale_reads: list[tuple[str, str, Version, Version]] = \
        field(default_factory=list)

    reads_done: int = 0
    writes_done: int = 0

    def replica_count(self) -> int:
        return len(self.peers) or 1

    def next_version(self) -> Version:
        """Mint a fresh version above everything this node has seen."""
        self.version_counter += 1
        return (self.version_counter, self.addr.host)

    def observe_version(self, version: Version) -> None:
        self.version_counter = max(self.version_counter, version[0])

    def stored_version(self, key: str) -> Version:
        entry = self.store.get(key)
        return entry[0] if entry else NO_VERSION

    def workload_done(self) -> bool:
        return self.next_op >= len(self.workload)
