"""Bullet': a high-throughput file-distribution mesh (Section 5.2.3)."""

from .properties import ALL_PROPERTIES, FILE_MAP_CONSISTENCY, VIEW_SUBSET_OF_HAVE
from .protocol import (
    BLOCK,
    DIFF,
    DIFF_TIMER,
    DRAIN_TIMER,
    REQUEST_BLOCK,
    REQUEST_TIMER,
    BulletConfig,
    BulletPrime,
)
from .scenarios import DownloadResult, DownloadScenario, build_mesh
from .state import BulletState

__all__ = [
    "ALL_PROPERTIES",
    "FILE_MAP_CONSISTENCY",
    "VIEW_SUBSET_OF_HAVE",
    "BLOCK",
    "DIFF",
    "DIFF_TIMER",
    "DRAIN_TIMER",
    "REQUEST_BLOCK",
    "REQUEST_TIMER",
    "BulletConfig",
    "BulletPrime",
    "DownloadResult",
    "DownloadScenario",
    "build_mesh",
    "BulletState",
]
