"""Bullet' workloads: mesh construction and the Figure 17 download scenario."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ...core.controller import CrystalBallConfig, Mode, attach_crystalball
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address, make_addresses
from ...runtime.network import NetworkModel
from ...runtime.simulator import Simulator
from .properties import ALL_PROPERTIES
from .protocol import BulletConfig, BulletPrime


def build_mesh(addresses: Sequence[Address], *, degree: int = 4,
               seed: int = 0) -> dict[Address, tuple[Address, ...]]:
    """Build a random symmetric mesh of the given target degree.

    Stands in for the peering decisions Bullet' makes on top of the RandTree
    discovery protocol: every node peers with a small set of other nodes and
    the mesh is connected through the source.
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    rng = random.Random(seed)
    peers: dict[Address, set[Address]] = {addr: set() for addr in addresses}
    ordered = list(addresses)
    # Ring backbone guarantees connectivity.
    for i, addr in enumerate(ordered):
        other = ordered[(i + 1) % len(ordered)]
        if other != addr:
            peers[addr].add(other)
            peers[other].add(addr)
    # Random extra links up to the target degree.
    for addr in ordered:
        candidates = [a for a in ordered if a != addr and a not in peers[addr]]
        rng.shuffle(candidates)
        for other in candidates:
            if len(peers[addr]) >= degree:
                break
            if len(peers[other]) >= degree + 1:
                continue
            peers[addr].add(other)
            peers[other].add(addr)
    return {addr: tuple(sorted(members)) for addr, members in peers.items()}


@dataclass
class DownloadResult:
    """Outcome of one Bullet' download run (one CDF series of Figure 17)."""

    completion_times: dict[Address, float]
    duration: float
    nodes_completed: int
    total_nodes: int
    checkpoint_bytes: int
    service_bytes: int

    def completion_fraction(self) -> float:
        if self.total_nodes == 0:
            return 0.0
        return self.nodes_completed / self.total_nodes

    def sorted_times(self) -> list[float]:
        return sorted(self.completion_times.values())


@dataclass
class DownloadScenario:
    """The Figure 17 experiment: N nodes download a file from one source."""

    node_count: int = 16
    block_count: int = 64
    block_size: int = 4096
    mesh_degree: int = 4
    crystalball_mode: Mode = Mode.OFF
    fix_shadow_map: bool = True
    seed: int = 0
    max_time: float = 400.0

    def run(self) -> DownloadResult:
        _, _, result = self._execute()
        return result

    def run_report(self):
        """Run the download and return a :class:`repro.api.RunReport`."""
        import time

        from ...api.experiment import build_run_report

        started = time.perf_counter()
        sim, pieces, result = self._execute()
        return build_run_report(
            system="bulletprime",
            scenario="download",
            mode=self.crystalball_mode,
            seed=self.seed,
            sim=sim,
            controllers=pieces["controllers"],
            monitor=pieces["monitor"],
            wall_clock_seconds=time.perf_counter() - started,
            outcome={
                "nodes_completed": result.nodes_completed,
                "total_nodes": result.total_nodes,
                "completion_fraction": result.completion_fraction(),
                "completion_times": {str(addr): when for addr, when
                                     in result.completion_times.items()},
                "duration": result.duration,
                "checkpoint_bytes": result.checkpoint_bytes,
                "service_bytes": result.service_bytes,
            },
        )

    def _execute(self):
        addresses = make_addresses(self.node_count, start=1)
        source = addresses[0]
        mesh = build_mesh(addresses, degree=self.mesh_degree, seed=self.seed)
        config = BulletConfig(source=source, mesh=mesh,
                              block_count=self.block_count,
                              block_size=self.block_size,
                              fix_shadow_map=self.fix_shadow_map)
        network = NetworkModel(default_rtt=0.13)
        sim = Simulator(lambda: BulletPrime(config), network, seed=self.seed,
                        tick_interval=10.0)
        for addr in addresses:
            sim.add_node(addr)

        controllers = {}
        if self.crystalball_mode is not Mode.OFF:
            cb_config = CrystalBallConfig(
                mode=self.crystalball_mode,
                search_budget=SearchBudget(max_states=200, max_depth=4),
                transition=TransitionConfig(enable_resets=False),
                immediate_check=False,
            )
            controllers = attach_crystalball(sim, ALL_PROPERTIES, config=cb_config)

        sim.run(until=self.max_time, max_events=400_000)

        completion: dict[Address, float] = {}
        for addr in addresses:
            state = sim.nodes[addr].state
            if state.completed_at is not None:
                completion[addr] = state.completed_at
            elif state.is_source:
                completion[addr] = 0.0
        checkpoint_bytes = sum(ctrl.stats.checkpoint_bytes_sent
                               for ctrl in controllers.values())
        result = DownloadResult(
            completion_times=completion,
            duration=sim.now,
            nodes_completed=len(completion),
            total_nodes=len(addresses),
            checkpoint_bytes=checkpoint_bytes,
            service_bytes=sim.total_service_bytes(),
        )
        return sim, {"controllers": controllers, "monitor": None}, result
