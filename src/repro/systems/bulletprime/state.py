"""Bullet' node state (Section 5.2.3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...runtime.address import Address
from ...runtime.state import NodeState


@dataclass
class BulletState(NodeState):
    """Local state of one Bullet' participant.

    Every node is both a sender and a receiver on its mesh links.  As a
    sender it keeps a per-receiver *shadow file map* — the blocks it has not
    yet told that receiver about.  As a receiver it keeps, per sender, its
    view of the sender's file map, which drives the block request logic.
    """

    addr: Address
    source: Optional[Address] = None
    peers: tuple[Address, ...] = ()
    block_count: int = 0
    is_source: bool = False

    #: blocks this node currently has.
    have: set[int] = field(default_factory=set)
    #: sender side: peer -> blocks not yet announced to that peer.
    shadow: dict[Address, set[int]] = field(default_factory=dict)
    #: receiver side: peer -> blocks we believe that peer has.
    view: dict[Address, set[int]] = field(default_factory=dict)
    #: blocks requested from some sender but not yet received.
    requested: set[int] = field(default_factory=set)
    #: bytes queued in the (bounded, non-blocking) transport per peer.
    queue_bytes: dict[Address, int] = field(default_factory=dict)
    #: simulated time at which the download completed (None = in progress).
    completed_at: Optional[float] = None

    def told(self, peer: Address) -> set[int]:
        """Blocks this node believes it has announced to ``peer``."""
        return self.have - self.shadow.get(peer, set())

    def acquire(self, block: int) -> None:
        """Record a newly obtained block and mark it for announcement."""
        if block in self.have:
            return
        self.have.add(block)
        self.requested.discard(block)
        for peer in self.peers:
            self.shadow.setdefault(peer, set()).add(block)

    @property
    def complete(self) -> bool:
        return self.block_count > 0 and len(self.have) >= self.block_count
