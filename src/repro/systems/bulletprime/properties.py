"""Safety properties for Bullet' (Section 5.2.3).

Registered under the ``bullet.`` namespace in the global property registry
(the historical ids predate the ``bulletprime`` system name and are kept
stable); ``ALL_PROPERTIES`` keeps the historical check order.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...mc.global_state import GlobalState
from ...properties import (
    SafetyProperty,
    eventually,
    register_properties,
    typed_states,
)
from ...runtime.address import Address
from .protocol import DIFF
from .state import BulletState


def _file_map_consistency(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
    """Sender's file map and the receiver's view of it must agree.

    A sender believes it has announced ``have - shadow[receiver]`` to each
    receiver.  Every such block must either already be in the receiver's
    view of the sender or still be carried by an in-flight Diff message from
    the sender to the receiver; otherwise the receiver will never learn
    about the block (the consequence of the cleared shadow file map).
    """
    inflight_blocks: dict[tuple[Address, Address], set[int]] = {}
    for message in state.inflight:
        if message.mtype == DIFF:
            key = (message.src, message.dst)
            inflight_blocks.setdefault(key, set()).update(message.get("blocks", ()))

    receivers = dict(typed_states(state, BulletState))
    for sender_addr, sender in typed_states(state, BulletState):
        for receiver_addr in sender.peers:
            receiver = receivers.get(receiver_addr)
            if receiver is None:
                continue
            announced = sender.told(receiver_addr)
            known = receiver.view.get(sender_addr, set())
            pending = inflight_blocks.get((sender_addr, receiver_addr), set())
            missing = announced - known - pending
            if missing:
                yield sender_addr, (
                    f"sender believes receiver {receiver_addr} knows about "
                    f"blocks {sorted(missing)} but no Diff carrying them was "
                    f"delivered or is in flight")


def _view_is_subset_of_have(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
    """A receiver never believes a sender has blocks the sender lacks."""
    senders = dict(typed_states(state, BulletState))
    for receiver_addr, receiver in typed_states(state, BulletState):
        for sender_addr, view in receiver.view.items():
            sender = senders.get(sender_addr)
            if sender is None:
                continue
            phantom = view - sender.have
            if phantom:
                yield receiver_addr, (
                    f"receiver believes sender {sender_addr} has blocks "
                    f"{sorted(phantom)} which the sender does not have")


FILE_MAP_CONSISTENCY = SafetyProperty(
    "bullet.file_map_consistency", _file_map_consistency,
    "Sender's file map and the receiver's view of it must be identical "
    "(modulo in-flight Diffs).",
    severity="critical", tags=("dissemination", "cross-node"))

VIEW_SUBSET_OF_HAVE = SafetyProperty(
    "bullet.view_subset_of_have", _view_is_subset_of_have,
    "A receiver's view of a sender never contains blocks the sender lacks.",
    severity="error", tags=("dissemination", "cross-node"))


def _all_downloads_complete(gs: GlobalState) -> bool:
    receivers = [s for _, s in typed_states(gs, BulletState) if not s.is_source]
    return bool(receivers) and all(s.completed_at is not None for s in receivers)


#: Bounded liveness (opt-in): every receiver finishes the download.
EVENTUALLY_ALL_COMPLETE = eventually(
    "bullet.eventually_all_complete", _all_downloads_complete, within=300.0,
    description="Every non-source node completes its download within 300 s "
                "of the run start.",
    tags=("dissemination",))

ALL_PROPERTIES: list[SafetyProperty] = [
    FILE_MAP_CONSISTENCY,
    VIEW_SUBSET_OF_HAVE,
]

register_properties(ALL_PROPERTIES + [EVENTUALLY_ALL_COMPLETE])
