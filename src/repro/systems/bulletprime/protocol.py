"""Bullet' protocol implementation (Section 5.2.3).

Bullet' distributes a file from a source to every mesh participant: the
source pushes blocks to a subset of nodes, every node periodically announces
newly obtained blocks to its mesh peers with Diff messages, and receivers
explicitly request missing blocks.  Senders and receivers communicate over a
bounded non-blocking transport that refuses new data when its queue is full.

The inconsistency the paper found is reproduced faithfully: when a Diff
cannot be accepted by the transport, the implementation clears the
receiver's shadow file map anyway, so the affected blocks are never
announced again (the attempted Mace fix retried the send but still cleared
the map).  ``fix_shadow_map`` applies the paper's correction: keep the
shadow entries when the transport refuses the message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message
from ...runtime.protocol import Protocol
from .state import BulletState

DIFF = "Diff"
REQUEST_BLOCK = "RequestBlock"
BLOCK = "Block"

DIFF_TIMER = "diff"
REQUEST_TIMER = "request"
DRAIN_TIMER = "drain"

#: Approximate wire overhead of a Diff entry and a block payload, used for
#: send-queue accounting.
DIFF_ENTRY_BYTES = 4
DIFF_HEADER_BYTES = 32


@dataclass
class BulletConfig:
    """Bullet' parameters and the shadow-file-map bug switch."""

    source: Optional[Address] = None
    #: mesh: node -> its peers (must be symmetric for a sensible overlay).
    mesh: dict[Address, tuple[Address, ...]] = field(default_factory=dict)
    block_count: int = 64
    block_size: int = 4096
    diff_period: float = 2.0
    request_period: float = 1.0
    drain_period: float = 1.0
    #: bytes drained from each per-peer send queue per drain period.
    drain_rate: int = 16384
    #: capacity of the bounded non-blocking send queue (MaceTcpTransport).
    send_queue_capacity: int = 32768
    #: apply the paper's fix: do not clear the shadow map on a refused send.
    fix_shadow_map: bool = False


class BulletPrime(Protocol):
    """The Bullet' file-distribution mesh."""

    name = "BulletPrime"

    def __init__(self, config: Optional[BulletConfig] = None) -> None:
        self.config = config or BulletConfig()

    # -- state ------------------------------------------------------------------

    def initial_state(self, addr: Address) -> BulletState:
        peers = tuple(self.config.mesh.get(addr, ()))
        state = BulletState(addr=addr,
                            source=self.config.source,
                            peers=peers,
                            block_count=self.config.block_count,
                            is_source=addr == self.config.source)
        if state.is_source:
            for block in range(self.config.block_count):
                state.acquire(block)
        return state

    def on_start(self, ctx: HandlerContext, state: BulletState) -> None:
        ctx.set_timer(DIFF_TIMER, self.config.diff_period)
        ctx.set_timer(REQUEST_TIMER, self.config.request_period)
        ctx.set_timer(DRAIN_TIMER, self.config.drain_period)

    def timer_specs(self) -> Mapping[str, float]:
        return {DIFF_TIMER: self.config.diff_period,
                REQUEST_TIMER: self.config.request_period,
                DRAIN_TIMER: self.config.drain_period}

    def neighbors(self, state: BulletState) -> list[Address]:
        return sorted(state.peers)

    # -- timers -------------------------------------------------------------------

    def handle_timer(self, ctx: HandlerContext, state: BulletState, timer: str) -> None:
        if timer == DIFF_TIMER:
            self._send_diffs(ctx, state)
            ctx.set_timer(DIFF_TIMER, self.config.diff_period)
        elif timer == REQUEST_TIMER:
            self._request_blocks(ctx, state)
            ctx.set_timer(REQUEST_TIMER, self.config.request_period)
        elif timer == DRAIN_TIMER:
            for peer in state.peers:
                queued = state.queue_bytes.get(peer, 0)
                state.queue_bytes[peer] = max(0, queued - self.config.drain_rate)
            ctx.set_timer(DRAIN_TIMER, self.config.drain_period)

    def _send_diffs(self, ctx: HandlerContext, state: BulletState) -> None:
        """Announce newly obtained blocks to every peer (the buggy handler)."""
        for peer in state.peers:
            pending = state.shadow.get(peer, set())
            if not pending:
                continue
            size = DIFF_HEADER_BYTES + DIFF_ENTRY_BYTES * len(pending)
            queued = state.queue_bytes.get(peer, 0)
            if queued + size <= self.config.send_queue_capacity:
                ctx.send(peer, DIFF, {"blocks": tuple(sorted(pending))})
                state.queue_bytes[peer] = queued + size
                state.shadow[peer] = set()
            else:
                # The transport refused the diff.  BUG: the shadow file map
                # is cleared anyway, so these blocks will never be included
                # in a later diff and the receiver never learns about them.
                if not self.config.fix_shadow_map:
                    state.shadow[peer] = set()

    def _request_blocks(self, ctx: HandlerContext, state: BulletState) -> None:
        """Request one missing block from each peer that advertises one."""
        if state.complete:
            return
        for peer in state.peers:
            available = state.view.get(peer, set()) - state.have - state.requested
            if not available:
                continue
            # Rarest-random policy approximated by a random pick among the
            # candidate blocks (rarity information is per-peer here).
            block = ctx.rng.choice(sorted(available))
            state.requested.add(block)
            ctx.send(peer, REQUEST_BLOCK, {"block": block})

    # -- application requests ----------------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: BulletState, call: str,
                   payload: Mapping) -> None:
        if call == "fetch":
            # On-demand block fetch (the workload generator's request
            # type): ask the source — or an explicit target — for one
            # block, bypassing the periodic rarest-random request cycle.
            target = payload.get("target", state.source)
            if target is None or target == state.addr:
                return
            block = int(payload.get("key", 0)) % max(1, state.block_count)
            if block in state.have:
                return
            state.requested.add(block)
            ctx.send(target, REQUEST_BLOCK, {"block": block})

    # -- message handlers ------------------------------------------------------------

    def handle_message(self, ctx: HandlerContext, state: BulletState,
                       message: Message) -> None:
        if message.mtype == DIFF:
            blocks = set(message.get("blocks", ()))
            state.view.setdefault(message.src, set()).update(blocks)
        elif message.mtype == REQUEST_BLOCK:
            block = message.get("block")
            if block in state.have:
                state.queue_bytes[message.src] = (
                    state.queue_bytes.get(message.src, 0) + self.config.block_size)
                ctx.send(message.src, BLOCK, {"block": block})
        elif message.mtype == BLOCK:
            block = message.get("block")
            state.acquire(block)
            if state.complete and state.completed_at is None:
                state.completed_at = ctx.now
                ctx.deliver_upcall("download_complete", {"at": ctx.now})

    # -- failures ----------------------------------------------------------------------

    def handle_connection_error(self, ctx: HandlerContext, state: BulletState,
                                peer: Address) -> None:
        state.queue_bytes[peer] = 0
        state.view.pop(peer, None)
