"""Bullet' registration with the unified experiment API."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...api.experiment import (
    make_fault_scenario_runner,
    make_search_scenario_runner,
    parse_mode,
)
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...faults.types import Partition
from ...mc.global_state import GlobalState
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import (
    BLOCK,
    DIFF_TIMER,
    DRAIN_TIMER,
    REQUEST_TIMER,
    BulletConfig,
    BulletPrime,
)
from .scenarios import DownloadScenario, build_mesh


#: Options accepted by generic (non-scenario) Bullet' live runs.
_LIVE_OPTIONS = ("mesh_degree", "mesh_seed", "block_count", "block_size",
                 "fix_shadow_map")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("bulletprime", options, _LIVE_OPTIONS)
    mesh = build_mesh(addresses,
                      degree=int(options.get("mesh_degree", 4)),
                      seed=int(options.get("mesh_seed", 0)))
    config = BulletConfig(
        source=addresses[0],
        mesh=mesh,
        block_count=int(options.get("block_count", 16)),
        block_size=int(options.get("block_size", 4096)),
        fix_shadow_map=bool(options.get("fix_shadow_map", True)),
    )
    return lambda: BulletPrime(config)


def _make_fetch(rng, key, addresses):
    """One on-demand block fetch from a random non-source member.

    The keyed block index is resolved against the configured block count
    inside the protocol's ``fetch`` handler, so one workload definition
    works for any ``block_count`` option.
    """
    requesters = addresses[1:] or addresses
    origin = requesters[int(rng.random() * len(requesters)) % len(requesters)]
    return origin, "fetch", {"key": key}


def _collect(sim) -> dict:
    # The source starts complete (time 0.0), matching DownloadScenario.
    completed = {str(addr): (0.0 if node.state.is_source
                             else node.state.completed_at)
                 for addr, node in sim.nodes.items()
                 if node.state.completed_at is not None or node.state.is_source}
    return {"nodes_completed": len(completed),
            "total_nodes": len(sim.nodes),
            "completion_times": completed,
            "service_bytes": sim.total_service_bytes()}


def _run_download(*, mode=None, seed: int = 0, node_count: int = 8,
                  block_count: int = 16, block_size: int = 4096,
                  mesh_degree: int = 4, fix_shadow_map: bool = True,
                  max_time: float = 400.0, **_ignored):
    scenario = DownloadScenario(
        node_count=node_count, block_count=block_count,
        block_size=block_size, mesh_degree=mesh_degree,
        crystalball_mode=parse_mode(mode), fix_shadow_map=fix_shadow_map,
        seed=seed, max_time=max_time)
    return scenario.run_report()


def congested_snapshot(*, fix_shadow_map: bool = False):
    """Two-node sender/receiver snapshot with an almost-full send queue —
    the state from which the shadow-file-map inconsistency is predictable."""
    sender, receiver = Address(1), Address(2)
    config = BulletConfig(source=sender,
                          mesh={sender: (receiver,), receiver: (sender,)},
                          block_count=8, send_queue_capacity=64,
                          fix_shadow_map=fix_shadow_map)
    protocol = BulletPrime(config)
    sender_state = protocol.initial_state(sender)
    receiver_state = protocol.initial_state(receiver)
    sender_state.queue_bytes[receiver] = 60
    snapshot = GlobalState.from_snapshot(
        {sender: sender_state, receiver: receiver_state},
        timers={sender: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER},
                receiver: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER}})
    return protocol, snapshot


_run_shadow_map = make_search_scenario_runner(
    system="bulletprime", scenario="shadow-map", properties=ALL_PROPERTIES,
    prepare=lambda fixed: congested_snapshot(fix_shadow_map=fixed),
    default_max_states=4000, default_max_depth=6, resets=False)


SPEC = register_system(SystemSpec(
    name="bulletprime",
    summary="Bullet' file-distribution mesh (Section 5.2.3)",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    # The historical property ids predate the "bulletprime" system name.
    property_namespace="bullet",
    transition_factory=lambda: TransitionConfig(enable_resets=False),
    scenarios={
        "download": ScenarioSpec(
            name="download",
            description="Figure 17 download experiment (completion CDF, "
                        "checkpoint overhead)",
            run=_run_download,
            build=lambda **kw: DownloadScenario(**kw),
        ),
        "shadow-map": ScenarioSpec(
            name="shadow-map",
            description="Consequence prediction of the shadow-file-map "
                        "inconsistency from a congested two-node snapshot",
            run=_run_shadow_map,
            build=congested_snapshot,
        ),
        "mesh-partition": ScenarioSpec(
            name="mesh-partition",
            description="Live download under recurring healed partitions of "
                        "the distribution mesh (the source is spared)",
            run=make_fault_scenario_runner(
                system="bulletprime",
                faults_factory=lambda duration, addrs: [
                    # spare=1 keeps the source on the majority side.
                    Partition(every=duration / 4, duration=duration / 8,
                              spare=1),
                ],
                default_nodes=8, default_duration=300.0,
                options={"block_count": 8}),
        ),
        "slow-links": ScenarioSpec(
            name="slow-links",
            description="Live download through latency-spike windows and "
                        "duplicated blocks",
            run=make_fault_scenario_runner(
                system="bulletprime", faults=("delay", "duplicate"),
                default_nodes=8, default_duration=300.0,
                options={"block_count": 8}),
        ),
    },
    workloads={
        "fetch": WorkloadSpec(
            name="fetch",
            description="On-demand block fetches from random mesh members "
                        "(explicit RequestBlock to the source, answered "
                        "with the Block transfer)",
            make_request=_make_fetch,
            traffic=TrafficSpec(rate=20.0, burst=4, keys=16,
                                key_distribution="uniform", start=10.0),
            completion_mtypes=frozenset({BLOCK}),
        ),
    },
    default_nodes=8,
    default_duration=300.0,
    join_call=None,
    supports_churn=False,
    default_churn_interval=None,
    search_budget_factory=lambda: SearchBudget(max_states=200, max_depth=4),
    collect=_collect,
))
