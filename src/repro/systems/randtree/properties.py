"""Safety properties for RandTree (Sections 1.2 and 5.2.1).

Every property self-registers into the global property registry
(:mod:`repro.properties.registry`) under the ``randtree.`` namespace, so it
is selectable from experiments, the CLI and campaigns.  ``ALL_PROPERTIES``
keeps the historical check order the experiments install.
"""

from __future__ import annotations

from typing import Iterable

from ...mc.global_state import GlobalState
from ...properties import (
    SafetyProperty,
    eventually,
    leads_to,
    node_property,
    register_properties,
    typed_check,
    typed_states,
)
from ...runtime.address import Address
from .protocol import RECOVERY_TIMER
from .state import RandTreeState


@typed_check(RandTreeState)
def _children_siblings_disjoint(addr: Address, state: RandTreeState,
                                timers: frozenset[str],
                                gs: GlobalState) -> Iterable[str]:
    overlap = set(state.children) & set(state.siblings)
    if overlap:
        yield (f"children and siblings are not disjoint: "
               f"{sorted(str(a) for a in overlap)}")


@typed_check(RandTreeState)
def _no_self_reference(addr: Address, state: RandTreeState,
                       timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if addr in state.children:
        yield "node lists itself as a child"
    if addr in state.siblings:
        yield "node lists itself as a sibling"
    if state.parent == addr:
        yield "node is its own parent"


@typed_check(RandTreeState)
def _parent_not_child(addr: Address, state: RandTreeState,
                      timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if state.parent is not None and state.parent in state.children:
        yield f"parent {state.parent} also appears in the children list"


@typed_check(RandTreeState)
def _root_not_child_or_sibling(addr: Address, state: RandTreeState,
                               timers: frozenset[str],
                               gs: GlobalState) -> Iterable[str]:
    if not state.is_root():
        return
    for other_addr, other in typed_states(gs, RandTreeState):
        if other_addr == addr:
            continue
        if addr in other.children:
            yield f"root {addr} appears as a child of {other_addr}"
        if addr in other.siblings:
            yield f"root {addr} appears as a sibling of {other_addr}"


@typed_check(RandTreeState)
def _root_has_no_siblings(addr: Address, state: RandTreeState,
                          timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if state.is_root() and state.siblings:
        yield (f"root keeps a non-empty sibling list: "
               f"{sorted(str(a) for a in state.siblings)}")


@typed_check(RandTreeState)
def _recovery_timer_running(addr: Address, state: RandTreeState,
                            timers: frozenset[str], gs: GlobalState) -> Iterable[str]:
    if state.joined and state.peers and RECOVERY_TIMER not in timers:
        yield "node is joined with a non-empty peer list but no recovery timer"


CHILDREN_SIBLINGS_DISJOINT = node_property(
    "randtree.children_siblings_disjoint", _children_siblings_disjoint,
    "Children and sibling lists must be disjoint (Figure 2).",
    severity="critical", tags=("tree", "figure2"))

NO_SELF_REFERENCE = node_property(
    "randtree.no_self_reference", _no_self_reference,
    "A node never appears in its own children/sibling lists or as its own parent.",
    severity="error", tags=("tree",))

PARENT_NOT_CHILD = node_property(
    "randtree.parent_not_child", _parent_not_child,
    "The parent pointer never refers to one of the node's children.",
    severity="error", tags=("tree",))

ROOT_NOT_CHILD_OR_SIBLING = node_property(
    "randtree.root_not_child_or_sibling", _root_not_child_or_sibling,
    "A node that considers itself root must not appear as a child or sibling "
    "of any other node (Figure 9).",
    severity="critical", tags=("tree", "cross-node", "figure9"),
    # Reads other nodes' membership lists: not incrementally re-checkable.
    local_only=False)

ROOT_HAS_NO_SIBLINGS = node_property(
    "randtree.root_has_no_siblings", _root_has_no_siblings,
    "The root keeps no sibling pointers.",
    severity="error", tags=("tree",))

RECOVERY_TIMER_RUNNING = node_property(
    "randtree.recovery_timer_running", _recovery_timer_running,
    "The recovery timer must be scheduled whenever the node is joined and "
    "has peers.",
    severity="warning", tags=("tree", "timer"))


def _some_node_unjoined(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, RandTreeState)]
    return bool(states) and any(not s.joined for s in states)


def _all_nodes_joined(gs: GlobalState) -> bool:
    states = [s for _, s in typed_states(gs, RandTreeState)]
    return bool(states) and all(s.joined for s in states)


#: Bounded liveness (opt-in, not part of ALL_PROPERTIES): after any node
#: drops out of the tree, every node must be joined again within a window.
REJOINS_WITHIN_WINDOW = leads_to(
    "randtree.rejoins_within_window",
    _some_node_unjoined, _all_nodes_joined, within=120.0,
    description="After a disturbance leaves some node unjoined, the whole "
                "tree must be joined again within 120 s of simulated time.",
    tags=("tree",))

#: Bounded liveness (opt-in): the initial join phase completes in a window.
EVENTUALLY_ALL_JOINED = eventually(
    "randtree.eventually_all_joined", _all_nodes_joined, within=150.0,
    description="Every node joins the tree within 150 s of the run start.",
    tags=("tree",))

#: The property set installed in the CrystalBall experiments.
ALL_PROPERTIES: list[SafetyProperty] = [
    CHILDREN_SIBLINGS_DISJOINT,
    NO_SELF_REFERENCE,
    PARENT_NOT_CHILD,
    ROOT_NOT_CHILD_OR_SIBLING,
    ROOT_HAS_NO_SIBLINGS,
    RECOVERY_TIMER_RUNNING,
]

register_properties(
    ALL_PROPERTIES + [REJOINS_WITHIN_WINDOW, EVENTUALLY_ALL_JOINED])
