"""Scripted RandTree scenarios from the paper.

These helpers build the concrete system states used in Figures 2, 3 and 9 so
that tests, examples and benchmarks can start from exactly the situations
the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...mc.global_state import GlobalState
from ...runtime.address import Address
from .protocol import RECOVERY_TIMER, RandTree, RandTreeConfig
from .state import RandTreeState


@dataclass
class Figure2Scenario:
    """The three-node state at the top of Figure 2.

    ``n1`` is the root with ``n9`` as its only child; ``n13`` is the only
    child of ``n9``.  A silent reset of ``n13`` followed by a re-join through
    the root leads to ``n13`` appearing in both the children and the sibling
    lists of ``n9``.
    """

    n1: Address
    n9: Address
    n13: Address
    protocol: RandTree

    @classmethod
    def build(cls, *, fixed: bool = False) -> "Figure2Scenario":
        n1, n9, n13 = Address(1), Address(9), Address(13)
        config = RandTreeConfig(bootstrap=(n9,), max_children=2,
                                fix_update_sibling=fixed,
                                fix_new_root_check=fixed,
                                fix_clear_siblings=fixed,
                                fix_recovery_timer=fixed)
        return cls(n1=n1, n9=n9, n13=n13, protocol=RandTree(config))

    def node_states(self) -> dict[Address, RandTreeState]:
        """The local states in the first row of Figure 2."""
        s1 = self.protocol.initial_state(self.n1)
        s1.joined = True
        s1.root = self.n1
        s1.children = {self.n9}
        s1.refresh_peers()

        s9 = self.protocol.initial_state(self.n9)
        s9.joined = True
        s9.root = self.n1
        s9.parent = self.n1
        s9.children = {self.n13}
        s9.refresh_peers()

        s13 = self.protocol.initial_state(self.n13)
        s13.joined = True
        s13.root = self.n1
        s13.parent = self.n9
        s13.refresh_peers()
        return {self.n1: s1, self.n9: s9, self.n13: s13}

    def global_state(self) -> GlobalState:
        """Model-checking start state corresponding to the live snapshot."""
        states = self.node_states()
        timers = {addr: frozenset({RECOVERY_TIMER}) for addr in states}
        return GlobalState.from_snapshot(states, timers=timers)


@dataclass
class Figure9Scenario:
    """The five-node state preceding the "root appears as a child" bug.

    Node 61 is the root with children 5, 65 and 69; node 9 is a child of 69.
    Node 9 silently resets (its RST to 69 is lost) and re-joins through 61,
    which hands over the root role; 69 still lists 9 as a child.
    """

    n5: Address
    n9: Address
    n61: Address
    n65: Address
    n69: Address
    protocol: RandTree

    @classmethod
    def build(cls, *, fixed: bool = False) -> "Figure9Scenario":
        n5, n9, n61, n65, n69 = (Address(5), Address(9), Address(61),
                                 Address(65), Address(69))
        config = RandTreeConfig(bootstrap=(n61,), max_children=3,
                                fix_update_sibling=fixed,
                                fix_new_root_check=fixed,
                                fix_clear_siblings=fixed,
                                fix_recovery_timer=fixed)
        return cls(n5=n5, n9=n9, n61=n61, n65=n65, n69=n69,
                   protocol=RandTree(config))

    def node_states(self) -> dict[Address, RandTreeState]:
        s61 = self.protocol.initial_state(self.n61)
        s61.joined = True
        s61.root = self.n61
        s61.children = {self.n5, self.n65, self.n69}
        s61.refresh_peers()

        children_of_root = {self.n5, self.n65, self.n69}
        states = {self.n61: s61}
        for child in children_of_root:
            s = self.protocol.initial_state(child)
            s.joined = True
            s.root = self.n61
            s.parent = self.n61
            s.siblings = children_of_root - {child}
            s.refresh_peers()
            states[child] = s

        states[self.n69].children = {self.n9}
        states[self.n69].refresh_peers()

        s9 = self.protocol.initial_state(self.n9)
        s9.joined = True
        s9.root = self.n61
        s9.parent = self.n69
        s9.refresh_peers()
        states[self.n9] = s9
        return states

    def global_state(self) -> GlobalState:
        states = self.node_states()
        timers = {addr: frozenset({RECOVERY_TIMER}) for addr in states}
        return GlobalState.from_snapshot(states, timers=timers)
