"""RandTree registration with the unified experiment API."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...api.experiment import (
    make_fault_scenario_runner,
    make_search_scenario_runner,
)
from ...api.registry import (
    ScenarioSpec,
    SystemSpec,
    check_options,
    register_system,
)
from ...mc.search import SearchBudget
from ...mc.transition import TransitionConfig
from ...runtime.address import Address
from ...workload import TrafficSpec, WorkloadSpec
from .properties import ALL_PROPERTIES
from .protocol import PROBE_REPLY, RandTree, RandTreeConfig
from .scenarios import Figure2Scenario, Figure9Scenario

#: RandTreeConfig fields accepted as experiment options.
_CONFIG_OPTIONS = ("max_children", "join_retry_period", "recovery_period",
                   "fix_update_sibling", "fix_new_root_check",
                   "fix_clear_siblings", "fix_recovery_timer")


def _protocol_factory(addresses: Sequence[Address],
                      options: Mapping[str, Any]):
    check_options("randtree", options,
                  _CONFIG_OPTIONS + ("fixed", "bootstrap_index"))
    kwargs = {name: options[name] for name in _CONFIG_OPTIONS
              if name in options}
    if options.get("fixed"):
        kwargs.update(fix_update_sibling=True, fix_new_root_check=True,
                      fix_clear_siblings=True, fix_recovery_timer=True)
    bootstrap_index = int(options.get("bootstrap_index", 0))
    config = RandTreeConfig(bootstrap=(addresses[bootstrap_index],), **kwargs)
    return lambda: RandTree(config)


def _make_probe(rng, key, addresses):
    """One liveness probe of a keyed member issued from a random member."""
    origin = addresses[int(rng.random() * len(addresses)) % len(addresses)]
    target = addresses[key % len(addresses)]
    if target == origin:
        target = addresses[(key + 1) % len(addresses)]
    return origin, "probe", {"target": target}


def _run_figure(scenario_cls, name: str):
    def prepare(fixed: bool):
        scenario = scenario_cls.build(fixed=fixed)
        return scenario.protocol, scenario.global_state()

    return make_search_scenario_runner(
        system="randtree", scenario=name, properties=ALL_PROPERTIES,
        prepare=prepare, default_max_states=6000, default_max_depth=9)


SPEC = register_system(SystemSpec(
    name="randtree",
    summary="Random overlay tree (Section 1.2): the paper's running example",
    protocol_factory=_protocol_factory,
    properties=tuple(ALL_PROPERTIES),
    property_namespace="randtree",
    transition_factory=lambda: TransitionConfig(enable_resets=True,
                                                max_resets_per_node=1),
    scenarios={
        "figure2": ScenarioSpec(
            name="figure2",
            description="Consequence prediction from the three-node Figure 2 "
                        "state (children/siblings inconsistency)",
            run=_run_figure(Figure2Scenario, "figure2"),
            build=Figure2Scenario.build,
        ),
        "figure9": ScenarioSpec(
            name="figure9",
            description="Consequence prediction from the five-node Figure 9 "
                        "state (root appears as a child)",
            run=_run_figure(Figure9Scenario, "figure9"),
            build=Figure9Scenario.build,
        ),
        "partition-recovery": ScenarioSpec(
            name="partition-recovery",
            description="Live run under recurring healed partitions: the "
                        "tree splits, elects spurious roots and must "
                        "re-merge (Figure 2 conditions at scale)",
            run=make_fault_scenario_runner(
                system="randtree", faults=("partition",),
                default_nodes=6, default_duration=240.0,
                options={"bootstrap_index": 1, "max_children": 2}),
        ),
        "flaky-network": ScenarioSpec(
            name="flaky-network",
            description="Live run under latency spikes, duplicated service "
                        "messages and a flapping link",
            run=make_fault_scenario_runner(
                system="randtree", faults=("delay", "duplicate", "link-flap"),
                default_nodes=6, default_duration=240.0),
        ),
    },
    workloads={
        "probes": WorkloadSpec(
            name="probes",
            description="Open-loop liveness probes between random members "
                        "(answered with the recovery path's ProbeReply)",
            make_request=_make_probe,
            traffic=TrafficSpec(rate=100.0, burst=10, keys=1024,
                                key_distribution="uniform", start=60.0),
            completion_mtypes=frozenset({PROBE_REPLY}),
        ),
    },
    default_nodes=6,
    default_duration=200.0,
    search_budget_factory=lambda: SearchBudget(max_states=400, max_depth=6),
))
