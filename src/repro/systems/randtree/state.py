"""RandTree node state.

RandTree builds a random, degree-constrained overlay tree (Section 1.2):
every node knows the root, its parent, its children and — for children of
the root — its siblings.  The node with the numerically smallest address is
the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...runtime.address import Address
from ...runtime.state import NodeState


@dataclass
class RandTreeState(NodeState):
    """Local state of one RandTree participant."""

    addr: Address
    #: designated nodes a joining node may contact (bootstrap list).
    bootstrap: tuple[Address, ...] = ()
    max_children: int = 2

    joined: bool = False
    root: Optional[Address] = None
    parent: Optional[Address] = None
    children: set[Address] = field(default_factory=set)
    siblings: set[Address] = field(default_factory=set)
    #: peer list used by the recovery timer (root, parent, children, siblings).
    peers: set[Address] = field(default_factory=set)

    def is_root(self) -> bool:
        """True when this node currently considers itself the tree root."""
        return self.joined and self.root == self.addr

    def refresh_peers(self) -> None:
        """Recompute the peer list from the current topology pointers."""
        peers = set(self.children) | set(self.siblings)
        if self.parent is not None:
            peers.add(self.parent)
        if self.root is not None:
            peers.add(self.root)
        peers.discard(self.addr)
        self.peers = peers

    def forget(self, peer: Address) -> None:
        """Remove every reference to ``peer`` (used on transport errors)."""
        self.children.discard(peer)
        self.siblings.discard(peer)
        self.peers.discard(peer)
        if self.parent == peer:
            self.parent = None
        if self.root == peer:
            self.root = None
