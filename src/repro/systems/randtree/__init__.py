"""RandTree: a random, degree-constrained overlay tree (Section 1.2)."""

from .protocol import (
    JOIN,
    JOIN_REPLY,
    JOIN_TIMER,
    NEW_ROOT,
    PROBE,
    PROBE_REPLY,
    RECOVERY_TIMER,
    UPDATE_SIBLING,
    RandTree,
    RandTreeConfig,
)
from .properties import (
    ALL_PROPERTIES,
    CHILDREN_SIBLINGS_DISJOINT,
    NO_SELF_REFERENCE,
    PARENT_NOT_CHILD,
    RECOVERY_TIMER_RUNNING,
    ROOT_HAS_NO_SIBLINGS,
    ROOT_NOT_CHILD_OR_SIBLING,
)
from .scenarios import Figure2Scenario, Figure9Scenario
from .state import RandTreeState

__all__ = [
    "JOIN",
    "JOIN_REPLY",
    "JOIN_TIMER",
    "NEW_ROOT",
    "PROBE",
    "PROBE_REPLY",
    "RECOVERY_TIMER",
    "UPDATE_SIBLING",
    "RandTree",
    "RandTreeConfig",
    "ALL_PROPERTIES",
    "CHILDREN_SIBLINGS_DISJOINT",
    "NO_SELF_REFERENCE",
    "PARENT_NOT_CHILD",
    "RECOVERY_TIMER_RUNNING",
    "ROOT_HAS_NO_SIBLINGS",
    "ROOT_NOT_CHILD_OR_SIBLING",
    "Figure2Scenario",
    "Figure9Scenario",
    "RandTreeState",
]
