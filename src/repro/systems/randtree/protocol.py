"""RandTree protocol implementation.

The implementation follows the behaviour described in Sections 1.2 and
5.2.1, *including the inconsistencies the paper found*:

``children_siblings`` (Figure 2)
    The UpdateSibling handler inserts the new sibling without removing stale
    entries from the children list.
``root_as_child`` (Figure 9)
    Installing a new root (NewRoot handler) does not check the children and
    sibling lists for the new root's address.
``stale_siblings`` (root has no siblings)
    A node that promotes itself to root after losing its parent keeps its
    stale sibling list.
``recovery_timer``
    A node that joins as the initial root marks itself joined without
    scheduling the recovery timer; when it later hands the root role to a
    smaller node it has a non-empty peer list and no running timer.

Each bug is controlled by a flag in :class:`RandTreeConfig`; setting the
corresponding ``fix_*`` flag applies the correction the paper suggests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ...runtime.address import Address
from ...runtime.context import HandlerContext
from ...runtime.messages import Message, Transport
from ...runtime.protocol import Protocol
from .state import RandTreeState

# Message type names.
JOIN = "Join"
JOIN_REPLY = "JoinReply"
UPDATE_SIBLING = "UpdateSibling"
NEW_ROOT = "NewRoot"
PROBE = "Probe"
PROBE_REPLY = "ProbeReply"

# Timer names.
JOIN_TIMER = "join_retry"
RECOVERY_TIMER = "recovery"


@dataclass
class RandTreeConfig:
    """RandTree parameters and bug-fix switches."""

    bootstrap: tuple[Address, ...] = ()
    max_children: int = 2
    join_retry_period: float = 5.0
    recovery_period: float = 10.0

    #: Remove the new sibling from the children list in the UpdateSibling
    #: handler (fix for the Figure 2 inconsistency).
    fix_update_sibling: bool = False
    #: Check children/sibling lists when installing a new root (Figure 9 fix).
    fix_new_root_check: bool = False
    #: Clear the sibling list when a node assumes or relinquishes the root
    #: role ("root has no siblings" fix).
    fix_clear_siblings: bool = False
    #: Always keep the recovery timer scheduled while the node is joined
    #: ("recovery timer should always run" fix).
    fix_recovery_timer: bool = False


class RandTree(Protocol):
    """The RandTree overlay tree service."""

    name = "RandTree"

    def __init__(self, config: RandTreeConfig | None = None) -> None:
        self.config = config or RandTreeConfig()

    # -- state ------------------------------------------------------------------

    def initial_state(self, addr: Address) -> RandTreeState:
        return RandTreeState(addr=addr,
                             bootstrap=tuple(self.config.bootstrap),
                             max_children=self.config.max_children)

    def on_start(self, ctx: HandlerContext, state: RandTreeState) -> None:
        ctx.set_timer(JOIN_TIMER, self.config.join_retry_period)

    def timer_specs(self) -> Mapping[str, float]:
        return {JOIN_TIMER: self.config.join_retry_period,
                RECOVERY_TIMER: self.config.recovery_period}

    def neighbors(self, state: RandTreeState) -> list[Address]:
        neighbors = set(state.children) | set(state.siblings)
        if state.parent is not None:
            neighbors.add(state.parent)
        if state.root is not None:
            neighbors.add(state.root)
        neighbors.discard(state.addr)
        return sorted(neighbors)

    def app_calls(self, state: RandTreeState) -> Sequence[tuple[str, Mapping[str, Any]]]:
        if not state.joined:
            return [("join", {})]
        return []

    # -- joining -----------------------------------------------------------------

    def handle_app(self, ctx: HandlerContext, state: RandTreeState, call: str,
                   payload: Mapping[str, Any]) -> None:
        if call == "join":
            self._try_join(ctx, state)
        elif call == "probe":
            # Application-driven liveness probe of an arbitrary member
            # (the workload generator's request type); the target answers
            # with the same ProbeReply the recovery path uses.
            target = payload.get("target")
            if target is not None and target != state.addr:
                ctx.send(target, PROBE, {}, transport=Transport.UDP)

    def handle_timer(self, ctx: HandlerContext, state: RandTreeState, timer: str) -> None:
        if timer == JOIN_TIMER:
            if not state.joined:
                self._try_join(ctx, state)
                ctx.set_timer(JOIN_TIMER, self.config.join_retry_period)
        elif timer == RECOVERY_TIMER:
            self._run_recovery(ctx, state)

    def _try_join(self, ctx: HandlerContext, state: RandTreeState) -> None:
        """Issue a Join request, or bootstrap a new tree if we are designated."""
        targets = [a for a in state.bootstrap if a != state.addr]
        if not targets or state.addr == min(state.bootstrap, default=state.addr):
            # This node is the designated first node: it joins itself and
            # becomes the root.  The buggy implementation marks itself joined
            # without scheduling the recovery timer ("Recovery Timer Should
            # Always Run", Section 5.2.1).
            state.joined = True
            state.root = state.addr
            state.parent = None
            state.refresh_peers()
            if self.config.fix_recovery_timer:
                ctx.set_timer(RECOVERY_TIMER, self.config.recovery_period)
            return
        ctx.send(targets[0], JOIN, {"origin": state.addr})

    # -- message handlers ----------------------------------------------------------

    def handle_message(self, ctx: HandlerContext, state: RandTreeState,
                       message: Message) -> None:
        handlers = {
            JOIN: self._on_join,
            JOIN_REPLY: self._on_join_reply,
            UPDATE_SIBLING: self._on_update_sibling,
            NEW_ROOT: self._on_new_root,
            PROBE: self._on_probe,
            PROBE_REPLY: self._on_probe_reply,
        }
        handler = handlers.get(message.mtype)
        if handler is not None:
            handler(ctx, state, message)

    def _on_join(self, ctx: HandlerContext, state: RandTreeState, message: Message) -> None:
        origin: Address = message.get("origin")
        hops: int = message.get("hops", 0)
        if origin == state.addr:
            return
        if hops > 8:
            # Stale root pointers can otherwise forward a Join around a cycle
            # forever; real deployments bound join forwarding the same way.
            return

        if not state.joined:
            # A fresh node receiving a Join: the sender is handing over the
            # root role (its address is larger), so this node assumes the
            # root position and adopts the sender as its first child.
            if origin > state.addr:
                state.joined = True
                state.root = state.addr
                state.parent = None
                for child in sorted(state.children):
                    if child != origin:
                        ctx.send(child, UPDATE_SIBLING, {"sibling": origin})
                state.children.add(origin)
                state.refresh_peers()
                ctx.send(origin, JOIN_REPLY,
                         {"root": state.addr,
                          "siblings": sorted(c for c in state.children if c != origin)})
                if self.config.fix_recovery_timer:
                    ctx.set_timer(RECOVERY_TIMER, self.config.recovery_period)
            return

        if not state.is_root():
            # Forward the request towards the root.
            if state.root is not None and state.root != state.addr:
                ctx.send(state.root, JOIN, {"origin": origin, "hops": hops + 1})
            return

        # We are the root.
        if origin < state.addr:
            # The joining node is more eligible: hand over the root role by
            # issuing a Join towards it (Figure 9 scenario).
            state.root = origin
            if self.config.fix_clear_siblings:
                state.siblings.clear()
            state.refresh_peers()
            ctx.send(origin, JOIN, {"origin": state.addr})
            return

        if origin in state.children:
            # Duplicate join (e.g. after a silent reset we did not observe);
            # re-acknowledge.
            ctx.send(origin, JOIN_REPLY,
                     {"root": state.addr,
                      "siblings": sorted(c for c in state.children if c != origin)})
            return

        if len(state.children) < state.max_children:
            existing = sorted(state.children)
            state.children.add(origin)
            state.refresh_peers()
            ctx.send(origin, JOIN_REPLY, {"root": state.addr, "siblings": existing})
            for child in existing:
                ctx.send(child, UPDATE_SIBLING, {"sibling": origin})
        else:
            # Degree constrained: delegate to one of the children.
            delegate = min(state.children)
            ctx.send(delegate, JOIN, {"origin": origin, "hops": hops + 1})

    def _on_join_reply(self, ctx: HandlerContext, state: RandTreeState,
                       message: Message) -> None:
        new_root: Address = message.get("root")
        siblings = set(message.get("siblings", ()))

        state.parent = message.src
        state.root = new_root
        state.joined = True
        state.siblings = set(siblings)
        if self.config.fix_update_sibling or self.config.fix_new_root_check:
            state.children -= state.siblings
            state.children.discard(new_root)
        state.refresh_peers()
        ctx.set_timer(RECOVERY_TIMER, self.config.recovery_period)

        if new_root != state.addr:
            # We (possibly) relinquished the root role: tell our children who
            # the new root is (Figure 9: node 61 sends NewRoot to 5, 65, 69).
            for child in sorted(state.children):
                if child != new_root:
                    ctx.send(child, NEW_ROOT, {"root": new_root})

    def _on_update_sibling(self, ctx: HandlerContext, state: RandTreeState,
                           message: Message) -> None:
        sibling: Address = message.get("sibling")
        if sibling == state.addr:
            return
        # BUG (Figure 2): the new sibling is inserted without removing stale
        # information from the children list, so a node that re-joined
        # through the root can appear in both lists at once.
        state.siblings.add(sibling)
        if self.config.fix_update_sibling:
            state.children.discard(sibling)
        state.refresh_peers()

    def _on_new_root(self, ctx: HandlerContext, state: RandTreeState,
                     message: Message) -> None:
        new_root: Address = message.get("root")
        # BUG (Figure 9): the children list is not checked when installing
        # information about the new root, so a node that still (stale-ly)
        # lists the new root as its child becomes inconsistent.
        state.root = new_root
        if self.config.fix_new_root_check:
            state.children.discard(new_root)
            state.siblings.discard(new_root)
        state.refresh_peers()

    def _on_probe(self, ctx: HandlerContext, state: RandTreeState,
                  message: Message) -> None:
        ctx.send(message.src, PROBE_REPLY,
                 {"root": state.root, "parent": state.parent,
                  "joined": state.joined},
                 transport=Transport.UDP)

    def _on_probe_reply(self, ctx: HandlerContext, state: RandTreeState,
                        message: Message) -> None:
        # A child whose parent pointer no longer points at us is stale.
        if message.src in state.children and message.get("parent") != state.addr:
            state.children.discard(message.src)
            state.refresh_peers()

    # -- failures --------------------------------------------------------------------

    def handle_connection_error(self, ctx: HandlerContext, state: RandTreeState,
                                peer: Address) -> None:
        lost_parent = state.parent == peer
        state.forget(peer)
        if lost_parent and state.joined:
            # Promote ourselves to root until we re-learn the topology.
            state.root = state.addr
            state.parent = None
            # BUG ("Root Has No Siblings"): the stale sibling list is kept
            # when the node promotes itself to the root position.
            if self.config.fix_clear_siblings:
                state.siblings.clear()
        state.refresh_peers()

    # -- recovery ---------------------------------------------------------------------

    def _run_recovery(self, ctx: HandlerContext, state: RandTreeState) -> None:
        for peer in sorted(state.peers):
            ctx.send(peer, PROBE, {}, transport=Transport.UDP)
        if state.joined:
            ctx.set_timer(RECOVERY_TIMER, self.config.recovery_period)
