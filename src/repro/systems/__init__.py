"""The distributed services CrystalBall is pointed at.

The first four subpackages are from-scratch implementations of the paper's
own evaluation services, each with the inconsistencies the paper reports
(behind ``fix_*`` flags) and scripted scenarios corresponding to the
paper's figures.  ``crdtset`` and ``kvstore`` extend the catalogue beyond
the paper: replicated-data systems (an op-based CRDT group and a
quorum-replicated KV store with optimistic execution) whose convergence
and session-guarantee properties exercise the same prediction/steering
pipeline.
"""

from . import bulletprime, chord, crdtset, kvstore, paxos, randtree

__all__ = ["bulletprime", "chord", "crdtset", "kvstore", "paxos", "randtree"]
