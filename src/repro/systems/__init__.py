"""The distributed services evaluated in the paper.

Each subpackage contains a from-scratch implementation of one service with
the inconsistencies the paper reports (behind ``fix_*`` flags), its safety
properties, and scripted scenarios corresponding to the paper's figures.
"""

from . import bulletprime, chord, paxos, randtree

__all__ = ["bulletprime", "chord", "paxos", "randtree"]
