"""First-class workload/traffic API (the heavy-traffic scale axis).

Public surface:

* :class:`TrafficSpec` — rate / burst / key-distribution / duration shape
  of an open-loop request stream;
* :class:`WorkloadSpec` — a named, registrable workload binding a traffic
  shape to a system-specific request factory;
* :class:`OpenLoopDriver` — the generator that runs one workload against a
  live simulation (one scheduler wakeup per burst);
* :class:`KeySampler` — seeded key-popularity sampling shared by drivers.

Named workloads are registered per system on
:class:`~repro.api.registry.SystemSpec` and selected with
``Experiment.workload(...)``, ``python -m repro run --workload`` or the
campaign ``workloads=`` axis.
"""

from .driver import OpenLoopDriver
from .spec import (
    KEY_DISTRIBUTIONS,
    KeySampler,
    RequestFactory,
    TrafficSpec,
    WorkloadSpec,
)

__all__ = [
    "KEY_DISTRIBUTIONS",
    "KeySampler",
    "OpenLoopDriver",
    "RequestFactory",
    "TrafficSpec",
    "WorkloadSpec",
]
