"""First-class workload descriptions: traffic shape and request synthesis.

The heavy-traffic axis of the scale story (ROADMAP: "millions of simulated
requests").  A :class:`TrafficSpec` describes the *shape* of an open-loop
request stream — rate, burstiness, key popularity, start offset and
duration — and a :class:`WorkloadSpec` binds a shape to a system-specific
request factory plus the message types that mark request completion.
Systems register named workloads on their
:class:`~repro.api.registry.SystemSpec` exactly the way scenarios are
registered, and experiments select them end to end::

    report = (Experiment("chord")
              .nodes(1000)
              .workload("lookups", rate=2000, burst=50)
              .run())

The old ad-hoc driver (``repro.sim.workload.OverlayWorkload``) remains as a
deprecation shim; this package is its replacement.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from ..runtime.address import Address

#: ``make_request(rng, key, addresses) -> (target, app call, payload)`` —
#: synthesize one request for ``key`` against the deployment's members.
RequestFactory = Callable[
    [random.Random, int, Sequence[Address]],
    tuple[Address, str, Mapping[str, Any]]]

#: Key-popularity models an open-loop generator can draw from.
KEY_DISTRIBUTIONS = ("uniform", "zipf", "hotspot", "sequential")


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of an open-loop request stream.

    Parameters
    ----------
    rate:
        Target request rate in requests per simulated second.
    burst:
        Requests injected per generator wakeup.  The wakeup interval is
        ``burst / rate``, so a larger burst trades scheduling overhead
        (one heap entry per burst, not per request) for coarser pacing.
    key_distribution:
        ``uniform`` | ``zipf`` | ``hotspot`` | ``sequential`` popularity
        over the key space.
    keys:
        Size of the key space.
    zipf_s:
        Skew exponent of the ``zipf`` distribution.
    hotspot_fraction:
        Fraction of the key space receiving 90% of ``hotspot`` traffic.
    start:
        Offset in simulated seconds before the stream opens (lets the
        overlay finish joining first).
    duration:
        Length of the stream in simulated seconds; ``None`` runs until the
        end of the experiment.
    """

    rate: float = 100.0
    burst: int = 10
    key_distribution: str = "uniform"
    keys: int = 1024
    zipf_s: float = 1.1
    hotspot_fraction: float = 0.1
    start: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("TrafficSpec.rate must be positive")
        if self.burst < 1:
            raise ValueError("TrafficSpec.burst must be >= 1")
        if self.keys < 1:
            raise ValueError("TrafficSpec.keys must be >= 1")
        if self.key_distribution not in KEY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown key distribution {self.key_distribution!r} "
                f"(one of: {', '.join(KEY_DISTRIBUTIONS)})")

    @property
    def interval(self) -> float:
        """Seconds between generator wakeups."""
        return self.burst / self.rate

    def with_overrides(self, **overrides: Any) -> "TrafficSpec":
        """Copy with the non-``None`` overrides applied."""
        changes = {key: value for key, value in overrides.items()
                   if value is not None}
        return replace(self, **changes) if changes else self

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "key_distribution": self.key_distribution,
            "keys": self.keys,
            "start": self.start,
            "duration": self.duration,
        }


class KeySampler:
    """Seedable key-popularity sampler for one traffic spec.

    All distributions consume exactly one RNG draw per key (``sequential``
    consumes none), so changing the distribution never shifts the RNG
    stream consumed by the request factories.
    """

    def __init__(self, traffic: TrafficSpec) -> None:
        self.traffic = traffic
        self._index = 0
        self._zipf_cdf: Optional[list[float]] = None
        if traffic.key_distribution == "zipf":
            weights = [1.0 / (rank + 1) ** traffic.zipf_s
                       for rank in range(traffic.keys)]
            total = sum(weights)
            cumulative, running = [], 0.0
            for weight in weights:
                running += weight / total
                cumulative.append(running)
            self._zipf_cdf = cumulative

    def sample(self, rng: random.Random) -> int:
        traffic = self.traffic
        distribution = traffic.key_distribution
        if distribution == "sequential":
            key = self._index % traffic.keys
            self._index += 1
            return key
        draw = rng.random()
        if distribution == "uniform":
            return int(draw * traffic.keys) % traffic.keys
        if distribution == "zipf":
            assert self._zipf_cdf is not None
            return min(bisect.bisect_left(self._zipf_cdf, draw),
                       traffic.keys - 1)
        # hotspot: 90% of requests hit the hot prefix of the key space.
        hot = max(1, int(traffic.keys * traffic.hotspot_fraction))
        if draw < 0.9:
            return int(draw / 0.9 * hot) % traffic.keys
        return (hot + int((draw - 0.9) / 0.1 * max(1, traffic.keys - hot))) \
            % traffic.keys


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload of a registered system.

    Binds a :class:`TrafficSpec` shape to the system-specific request
    factory and names the message types whose delivery marks a request as
    completed (empty for workloads whose operations complete locally).
    """

    name: str
    description: str
    make_request: RequestFactory
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    completion_mtypes: frozenset[str] = frozenset()

    def with_traffic(self, **overrides: Any) -> "WorkloadSpec":
        """Copy with traffic-shape overrides applied."""
        return replace(self, traffic=self.traffic.with_overrides(**overrides))
