"""Open-loop request generation against a live simulation.

:class:`OpenLoopDriver` injects requests at the configured rate whether or
not the system keeps up — the open-loop discipline load generators use to
avoid coordinated omission.  One self-re-arming wakeup per burst keeps the
scheduler cost O(bursts), not O(requests): each wakeup injects ``burst``
application calls inline (no heap entry per request) and re-arms a single
callback for the next batch.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..runtime.address import Address
from ..runtime.events import Event, MessageEvent
from ..runtime.simulator import SimNode, Simulator
from .spec import KeySampler, WorkloadSpec


class OpenLoopDriver:
    """Drives one workload's request stream through a simulator."""

    def __init__(
        self,
        spec: WorkloadSpec,
        addresses: Sequence[Address],
        *,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.traffic = spec.traffic
        self.addresses = list(addresses)
        # String seeding is deterministic (hashed with SHA-512 internally),
        # unlike hash()-based seeding which varies with PYTHONHASHSEED.
        self.rng = random.Random(f"{seed}:workload:{spec.name}")
        self.sampler = KeySampler(spec.traffic)

        self.requests_injected = 0
        self.requests_completed = 0
        self.requests_skipped = 0
        self._end_time: Optional[float] = None

    # ------------------------------------------------------------- wiring

    def install(self, sim: Simulator) -> "OpenLoopDriver":
        """Arm the generator; the stream opens ``traffic.start`` seconds
        from now and closes after ``traffic.duration`` (when set)."""
        if self.traffic.duration is not None:
            self._end_time = (sim.now + self.traffic.start
                              + self.traffic.duration)
        if self.spec.completion_mtypes:
            sim.add_observer(self._observe)
        sim.schedule_at(sim.now + self.traffic.start + self.traffic.interval,
                        self._burst)
        return self

    # ------------------------------------------------------------ driving

    def _burst(self, sim: Simulator) -> None:
        if self._end_time is not None and sim.now > self._end_time:
            return  # stream closed: stop re-arming
        for _ in range(self.traffic.burst):
            key = self.sampler.sample(self.rng)
            target, call, payload = self.spec.make_request(
                self.rng, key, self.addresses)
            node = sim.nodes.get(target)
            if node is None or not node.alive:
                self.requests_skipped += 1
                continue
            sim.inject_app(target, call, payload)
            self.requests_injected += 1
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("workload.requests_injected",
                                self.traffic.burst)
        sim.schedule_at(sim.now + self.traffic.interval, self._burst)

    def _observe(self, sim: Simulator, node: SimNode, event: Event) -> None:
        if (isinstance(event, MessageEvent)
                and event.message.mtype in self.spec.completion_mtypes):
            self.requests_completed += 1

    # ---------------------------------------------------------- reporting

    def report(self) -> dict:
        """JSON-ready summary merged into ``RunReport.workload``."""
        return {
            "name": self.spec.name,
            "requests_injected": self.requests_injected,
            "requests_completed": self.requests_completed,
            "requests_skipped": self.requests_skipped,
            "traffic": self.traffic.to_dict(),
        }
