"""Declarative sweeps over system × scenario × faults × seeds × modes.

The campaign subsystem is the batch layer over the unified experiment API:

* :class:`CampaignSpec` expands axes into a matrix of :class:`RunSpec`
  cells, validated against the system/scenario/fault-preset registries;
* :class:`CampaignRunner` executes the matrix across a ``multiprocessing``
  worker pool (serial fallback for single-CPU environments), streaming
  every finished run into a JSONL :class:`ResultStore` so interrupted
  campaigns resume from partial results;
* :class:`CampaignReport` aggregates deterministic per-axis rollups, and
  :func:`render_campaign_report` renders them as a terminal table or
  GitHub-flavored markdown.

Entry points: ``Experiment(...).sweep(...)`` and ``python -m repro
campaign`` — the nightly fault matrix is one campaign invocation.
"""

from .report import (
    CampaignReport,
    build_campaign_report,
    render_campaign_report,
)
from .runner import (
    CampaignRunner,
    execute_run,
    run_campaign,
    run_one,
    summarize_report,
)
from .spec import (
    CampaignSpec,
    RunSpec,
    parse_axes,
    parse_seed_values,
)
from .store import ResultStore, make_record

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "RunSpec",
    "build_campaign_report",
    "execute_run",
    "make_record",
    "parse_axes",
    "parse_seed_values",
    "render_campaign_report",
    "run_campaign",
    "run_one",
    "summarize_report",
]
