"""Declarative campaign specifications: axes expanded into a run matrix.

A :class:`CampaignSpec` names the axes of a sweep — systems × scenarios ×
fault presets × seeds × steering modes — plus the settings shared by every
cell (durations, deployment size, churn, options).  :meth:`CampaignSpec.expand`
validates every axis value against the live registries (systems, scenarios,
fault presets, modes) and produces the full cross product as a list of
:class:`RunSpec` cells, each with a stable ``run_id`` so a partially
completed campaign can be resumed from its JSONL result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ..api.experiment import parse_mode
from ..api.registry import get_system, list_systems
from ..faults.presets import list_presets
from ..properties import select_properties

#: The combo separator inside one axis value: the faults-axis value
#: ``"partition+delay"`` is a single cell injecting both presets at once,
#: and the properties-axis value ``"randtree.*+chord.*"`` is a single cell
#: checking both selections.
COMBO_SEPARATOR = "+"

#: Axis value meaning "a generic live run, no scripted scenario".
LIVE_SCENARIO = "live"

#: Properties-axis value meaning "the system's default property set".
DEFAULT_PROPERTIES = "default"

#: Modes-axis value dispatching the cell to the falsification pipeline
#: (:mod:`repro.attack`: hunt → minimize → replay) instead of a single
#: live run.  Not a controller mode — attack cells run the controller off.
ATTACK_MODE = "attack"


def _preset_combo(value: Union[str, Sequence[str], None]) -> tuple[str, ...]:
    """Normalize one faults-axis value into a tuple of preset names."""
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(name for name in value.split(COMBO_SEPARATOR) if name)
    return tuple(value)


def _property_combo(
    value: Union[str, Sequence[str], None],
) -> Optional[tuple[str, ...]]:
    """Normalize one properties-axis value into selection patterns.

    ``None`` / ``"default"`` keep the system's default property set;
    ``"none"`` (or an empty sequence) checks nothing; a ``+``-joined
    string or a sequence is a multi-pattern selection for one cell.
    """
    if value is None or value == DEFAULT_PROPERTIES:
        return None
    if isinstance(value, str):
        if value == "none":
            return ()
        return tuple(name for name in value.split(COMBO_SEPARATOR) if name)
    return tuple(value)


def properties_label(selection: Optional[Sequence[str]]) -> str:
    """Canonical axis label of one property selection (rollup/run_id key)."""
    if selection is None:
        return DEFAULT_PROPERTIES
    return COMBO_SEPARATOR.join(selection) or "none"


@dataclass(frozen=True)
class RunSpec:
    """One cell of the campaign matrix: everything needed to run it.

    ``RunSpec`` is picklable and JSON-round-trippable (``to_dict`` /
    ``from_dict``) so cells can cross process boundaries into pool workers
    and be re-identified in a result store across campaign invocations.
    """

    system: str
    scenario: Optional[str] = None
    mode: str = "off"
    seed: int = 0
    faults: tuple[str, ...] = ()
    fault_seed: Optional[int] = None
    fault_start_after: Optional[float] = None
    #: property-selection patterns; None keeps the system's default set,
    #: an empty tuple checks nothing.
    properties: Optional[tuple[str, ...]] = None
    #: exclusion patterns applied after a non-default selection.
    properties_exclude: tuple[str, ...] = ()
    nodes: Optional[int] = None
    duration: Optional[float] = None
    churn: bool = False
    churn_interval: Optional[float] = None
    #: simple network scalars (rtt/loss/jitter/rst_loss) for live runs.
    network: tuple[tuple[str, float], ...] = ()
    options: tuple[tuple[str, Any], ...] = ()
    #: registered workload name driven through the live run; None = none.
    workload: Optional[str] = None
    #: traffic-shape overrides (rate/burst/keys/...) applied to it.
    workload_overrides: tuple[tuple[str, Any], ...] = ()
    #: execution backend of the cell ("sim" or "tcp"; see repro.backends).
    backend: str = "sim"

    @property
    def properties_label(self) -> str:
        """Axis label of this cell's property selection (rollup key)."""
        return properties_label(self.properties)

    @property
    def run_id(self) -> str:
        """Stable identity of this cell, independent of execution order.

        The ``props=`` / ``wl=`` / ``backend=`` segments are only present
        for a non-default property selection / a workload-driven cell / a
        non-sim backend, so result stores written before those axes
        existed keep matching their run ids.
        """
        parts = [
            self.system,
            self.scenario or LIVE_SCENARIO,
            COMBO_SEPARATOR.join(self.faults) or "none",
            self.mode,
            f"seed={self.seed}",
        ]
        if self.properties is not None:
            parts.append(f"props={self.properties_label}")
        if self.workload is not None:
            parts.append(f"wl={self.workload}")
        if self.backend != "sim":
            parts.append(f"backend={self.backend}")
        return ":".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "system": self.system,
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "faults": list(self.faults),
            "fault_seed": self.fault_seed,
            "fault_start_after": self.fault_start_after,
            "properties": (list(self.properties)
                           if self.properties is not None else None),
            "properties_exclude": list(self.properties_exclude),
            "nodes": self.nodes,
            "duration": self.duration,
            "churn": self.churn,
            "churn_interval": self.churn_interval,
            "network": dict(self.network),
            "options": dict(self.options),
            "workload": self.workload,
            "workload_overrides": dict(self.workload_overrides),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        raw_properties = data.get("properties")
        return cls(
            system=data["system"],
            scenario=data.get("scenario"),
            mode=data.get("mode", "off"),
            seed=int(data.get("seed", 0)),
            faults=tuple(data.get("faults") or ()),
            fault_seed=data.get("fault_seed"),
            fault_start_after=data.get("fault_start_after"),
            properties=(tuple(raw_properties)
                        if raw_properties is not None else None),
            properties_exclude=tuple(data.get("properties_exclude") or ()),
            nodes=data.get("nodes"),
            duration=data.get("duration"),
            churn=bool(data.get("churn", False)),
            churn_interval=data.get("churn_interval"),
            network=tuple(sorted((data.get("network") or {}).items())),
            options=tuple(sorted((data.get("options") or {}).items())),
            workload=data.get("workload"),
            workload_overrides=tuple(sorted(
                (data.get("workload_overrides") or {}).items())),
            backend=data.get("backend", "sim"),
        )


@dataclass
class CampaignSpec:
    """Axes and shared settings of one sweep.

    Axes (each a sequence; the cross product is the run matrix):

    * ``systems`` — registered system names (default: every system);
    * ``scenarios`` — scripted scenario names, ``None`` / ``"live"`` for a
      generic live run (default: live only);
    * ``fault_presets`` — fault-preset combos per cell: a name, a
      ``"name+name"`` combo string, a sequence of names, or ``None`` for a
      fault-free cell (default: fault-free only);
    * ``seeds`` — run seeds (default: seed 0);
    * ``modes`` — CrystalBall modes (default: ``off``);
    * ``properties`` — property selections per cell: a glob pattern over
      registered property ids, a ``"pattern+pattern"`` combo string, a
      sequence of patterns, ``"none"`` for a property-free cell, or
      ``None`` / ``"default"`` for the system's default set (default:
      default set only).  ``properties_exclude`` patterns apply to every
      non-default selection;
    * ``workloads`` — registered workload names driven through live cells,
      ``None`` / ``"none"`` for a workload-free cell (default: none).
      ``workload_overrides`` (rate/burst/keys/distribution/start/duration)
      apply to every workload-driven cell;
    * ``backends`` — execution backends for live cells (``"sim"`` /
      ``"tcp"``, see :mod:`repro.backends`; default: sim only).

    Shared settings: ``nodes``, ``duration`` (scalar, or per-system via
    ``durations``), ``churn`` (off by default so the named faults are the
    only adversary), ``network`` (simple scalars: rtt/loss/jitter/
    rst_loss), ``options``, ``fault_seed``.
    """

    systems: Optional[Sequence[str]] = None
    scenarios: Sequence[Optional[str]] = (None,)
    fault_presets: Sequence[Union[str, Sequence[str], None]] = (None,)
    seeds: Sequence[int] = (0,)
    modes: Sequence[str] = ("off",)
    properties: Sequence[Union[str, Sequence[str], None]] = (None,)
    properties_exclude: Sequence[str] = ()
    workloads: Sequence[Optional[str]] = (None,)
    workload_overrides: Mapping[str, Any] = field(default_factory=dict)
    backends: Sequence[str] = ("sim",)
    nodes: Optional[int] = None
    duration: Optional[float] = None
    durations: Mapping[str, float] = field(default_factory=dict)
    churn: bool = False
    churn_interval: Optional[float] = None
    network: Mapping[str, float] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    fault_seed: Optional[int] = None
    fault_start_after: Optional[float] = None

    def axes_dict(self) -> dict[str, Any]:
        """The axes as plain JSON data (for reports and result stores)."""
        return {
            "systems": list(self._system_names()),
            "scenarios": [scenario or LIVE_SCENARIO for scenario in self.scenarios],
            "fault_presets": [
                COMBO_SEPARATOR.join(_preset_combo(combo)) or "none"
                for combo in self.fault_presets
            ],
            "seeds": [int(seed) for seed in self.seeds],
            "modes": list(self.modes),
            "properties": [
                properties_label(_property_combo(value))
                for value in self.properties
            ],
            "workloads": [workload or "none" for workload in self.workloads],
            "backends": list(self.backends),
        }

    def _system_names(self) -> list[str]:
        if self.systems is None:
            return [spec.name for spec in list_systems()]
        return list(self.systems)

    def _duration_for(self, system: str) -> Optional[float]:
        if system in self.durations:
            return float(self.durations[system])
        return self.duration

    def expand(self) -> list[RunSpec]:
        """Validate every axis value and return the full run matrix.

        Raises ``ValueError`` on an unknown system, scenario, fault preset
        or mode — before any run starts, so a typo fails the whole campaign
        fast instead of 30 runs in.
        """
        systems = self._system_names()
        if not systems:
            raise ValueError("campaign has no systems to run")
        specs = {}
        for name in systems:
            try:
                specs[name] = get_system(name)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None

        known_presets = set(list_presets())
        combos = [_preset_combo(combo) for combo in self.fault_presets]
        for combo in combos:
            for preset in combo:
                if preset not in known_presets:
                    raise ValueError(
                        f"unknown fault preset {preset!r} "
                        f"(known presets: {', '.join(sorted(known_presets))})"
                    )

        modes = [
            ATTACK_MODE if str(mode).lower() == ATTACK_MODE
            else parse_mode(mode).value
            for mode in self.modes
        ]

        property_combos = [_property_combo(value) for value in self.properties]
        for combo in property_combos:
            if not combo:
                continue  # default set or explicitly property-free
            # Validate every pattern against the registry up front: a
            # typo'd selector fails the whole campaign before any run.
            select_properties(*combo)

        scenarios = [
            None if name in (None, LIVE_SCENARIO) else name for name in self.scenarios
        ]
        for name in scenarios:
            if name is None:
                continue
            for system in systems:
                try:
                    specs[system].scenario(name)
                except KeyError as exc:
                    raise ValueError(exc.args[0]) from None
        if any(name is not None for name in scenarios) and any(combos):
            # A scripted scenario runs its own scripted adversary; a
            # fault-preset axis crossed with it would be silently ignored
            # while still labelling the records — refuse the ambiguity.
            raise ValueError(
                "fault presets cannot be combined with scripted scenarios "
                "(scenarios script their own faults); sweep scenarios with "
                "presets=none, or sweep presets over live runs"
            )
        if any(name is not None for name in scenarios) and any(
            combo is not None for combo in property_combos
        ):
            # Scenario runners install their own property sets; a property
            # selection crossed with them would be silently ignored while
            # still labelling the records — refuse the same ambiguity.
            raise ValueError(
                "property selections cannot be combined with scripted "
                "scenarios (scenarios install their own property sets); "
                "sweep properties over live runs"
            )

        workloads = [None if name in (None, "none") else name
                     for name in self.workloads]
        for name in workloads:
            if name is None:
                continue
            for system in systems:
                try:
                    specs[system].workload(name)
                except KeyError as exc:
                    raise ValueError(exc.args[0]) from None
        if any(name is not None for name in scenarios) and any(
            name is not None for name in workloads
        ):
            # Scenario runners script their own deployment and request
            # schedule; a workload crossed with them would be silently
            # ignored while still labelling the records.
            raise ValueError(
                "workloads cannot be combined with scripted scenarios "
                "(scenarios script their own request schedules); sweep "
                "workloads over live runs"
            )
        from ..backends import backend_names

        known_backends = set(backend_names())
        for backend in self.backends:
            if backend not in known_backends:
                raise ValueError(
                    f"unknown backend {backend!r} (registered backends: "
                    f"{', '.join(sorted(known_backends))})"
                )
        if any(name is not None for name in scenarios) and any(
            backend != "sim" for backend in self.backends
        ):
            # Scenario runners script their own simulators; a backend axis
            # crossed with them would be silently ignored while still
            # labelling the records — refuse like the other live-only axes.
            raise ValueError(
                "non-sim backends cannot be combined with scripted "
                "scenarios (scenarios build their own runtime); sweep "
                "backends over live runs"
            )

        if ATTACK_MODE in modes:
            # Attack cells are whole falsification pipelines (many seeded
            # re-executions), not single live runs — refuse every axis the
            # pipeline would silently ignore, exactly like the scenario
            # refusals above.
            if any(name is not None for name in scenarios):
                raise ValueError(
                    "attack mode cannot be combined with scripted "
                    "scenarios; hunt counterexamples over live cells"
                )
            if any(backend != "sim" for backend in self.backends):
                raise ValueError(
                    "attack mode requires the sim backend (the "
                    "falsification search re-executes seeded simulator "
                    "runs bit-reproducibly)"
                )
            if any(name is not None for name in workloads):
                raise ValueError(
                    "attack mode cannot be combined with workloads; "
                    "attack cells drive only the system's own traffic"
                )
            if not all(combos):
                raise ValueError(
                    "attack mode needs a fault-preset axis on every cell "
                    "(the attack schedule is concretized from the cell's "
                    "presets); set faults=byzantine, faults=equivocation, "
                    "..."
                )
            for combo in property_combos:
                selection = combo or ()
                if (len(selection) != 1
                        or len(select_properties(*selection)) != 1):
                    raise ValueError(
                        "attack mode falsifies one named property per "
                        "cell; set properties=<property-id> (exactly one "
                        "id, no globs or combos)"
                    )

        known_overrides = {"rate", "burst", "keys", "distribution",
                           "start", "duration"}
        unknown_overrides = set(self.workload_overrides) - known_overrides
        if unknown_overrides:
            raise ValueError(
                f"unknown workload override(s) {sorted(unknown_overrides)} "
                f"(accepted: {sorted(known_overrides)})"
            )

        # Durations may name any registered system (a narrowed campaign can
        # reuse the full matrix's duration table) — but a typo'd name that
        # matches nothing registered would silently fall back to defaults.
        registered = {spec.name for spec in list_systems()} | set(systems)
        unknown_durations = set(self.durations) - registered
        if unknown_durations:
            raise ValueError(
                f"per-system duration(s) for unknown system(s) "
                f"{sorted(unknown_durations)} (registered systems: "
                f"{', '.join(sorted(registered))})"
            )

        known_network = {"rtt", "loss", "jitter", "rst_loss"}
        unknown_network = set(self.network) - known_network
        if unknown_network:
            raise ValueError(
                f"unknown network setting(s) {sorted(unknown_network)} "
                f"(accepted: {sorted(known_network)})"
            )

        network = tuple(sorted(self.network.items()))
        options = tuple(sorted(self.options.items()))
        exclude = tuple(self.properties_exclude)
        overrides = tuple(sorted(self.workload_overrides.items()))
        runs = []
        for system in systems:
            for scenario in scenarios:
                for combo in combos:
                    for mode in modes:
                        for property_combo in property_combos:
                            for workload in workloads:
                                for backend in self.backends:
                                    for seed in self.seeds:
                                        runs.append(
                                            RunSpec(
                                                system=system,
                                                scenario=scenario,
                                                mode=mode,
                                                seed=int(seed),
                                                faults=combo,
                                                fault_seed=self.fault_seed,
                                                fault_start_after=self.fault_start_after,
                                                properties=property_combo,
                                                properties_exclude=(
                                                    exclude
                                                    if property_combo is not None
                                                    else ()
                                                ),
                                                nodes=self.nodes,
                                                duration=self._duration_for(system),
                                                churn=self.churn,
                                                churn_interval=self.churn_interval,
                                                network=network,
                                                options=options,
                                                workload=workload,
                                                workload_overrides=(
                                                    overrides
                                                    if workload is not None
                                                    else ()
                                                ),
                                                backend=backend,
                                            )
                                        )
        return runs


def parse_seed_values(raw: str) -> list[int]:
    """Parse a seeds-axis string: ``"3"``, ``"1,5,9"``, ``"0-7"`` or a mix."""
    seeds = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        low, sep, high = chunk.partition("-")
        if sep and low and high:
            start, stop = int(low), int(high)
            if stop < start:
                raise ValueError(f"empty seed range {chunk!r}")
            seeds.extend(range(start, stop + 1))
        else:
            seeds.append(int(chunk))
    if not seeds:
        raise ValueError(f"no seeds in {raw!r}")
    return seeds


def parse_axes(pairs: Mapping[str, str]) -> dict[str, Any]:
    """Turn CLI ``--axes key=values`` pairs into CampaignSpec axis kwargs.

    Keys: ``systems``, ``scenarios``, ``presets`` (alias ``faults``),
    ``seeds``, ``modes``, ``properties``, ``workloads``, ``backends``.
    Values are comma-separated;
    ``all`` expands to every registered system / fault preset; ``none``
    gives a fault-free or live-only axis value; combos use ``+``
    (``partition+delay``, ``randtree.*+chord.*``).  Properties values are
    glob patterns over registered property ids, plus ``default`` (the
    system's default set) and ``none`` (check nothing).
    """
    kwargs: dict[str, Any] = {}
    for key, raw in pairs.items():
        values = [value for value in raw.split(",") if value]
        if not values:
            raise ValueError(f"axis {key!r} has no values")
        if key == "systems":
            # "all" may arrive mixed with named systems when repeated
            # --axes flags were merged; it subsumes every other value.
            if "all" in values:
                kwargs["systems"] = None
            else:
                kwargs["systems"] = values
        elif key == "scenarios":
            kwargs["scenarios"] = [
                None if value in ("none", LIVE_SCENARIO) else value for value in values
            ]
        elif key in ("presets", "faults"):
            if "all" in values:
                # "all" subsumes every named preset but not the fault-free
                # cell, which stays an explicit extra axis value.
                kwargs["fault_presets"] = list(list_presets())
                if "none" in values:
                    kwargs["fault_presets"].append(None)
            else:
                kwargs["fault_presets"] = [
                    None if value == "none" else value for value in values
                ]
        elif key == "seeds":
            kwargs["seeds"] = parse_seed_values(raw)
        elif key == "modes":
            kwargs["modes"] = values
        elif key == "properties":
            kwargs["properties"] = [
                None if value == DEFAULT_PROPERTIES else value
                for value in values
            ]
        elif key == "workloads":
            kwargs["workloads"] = [
                None if value == "none" else value for value in values
            ]
        elif key == "backends":
            kwargs["backends"] = values
        else:
            raise ValueError(
                f"unknown campaign axis {key!r} (axes: systems, scenarios, "
                f"presets, seeds, modes, properties, workloads, backends)"
            )
    return kwargs
