"""Declarative campaign specifications: axes expanded into a run matrix.

A :class:`CampaignSpec` names the axes of a sweep — systems × scenarios ×
fault presets × seeds × steering modes — plus the settings shared by every
cell (durations, deployment size, churn, options).  :meth:`CampaignSpec.expand`
validates every axis value against the live registries (systems, scenarios,
fault presets, modes) and produces the full cross product as a list of
:class:`RunSpec` cells, each with a stable ``run_id`` so a partially
completed campaign can be resumed from its JSONL result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ..api.experiment import parse_mode
from ..api.registry import get_system, list_systems
from ..faults.presets import list_presets

#: The fault-preset combo separator inside one axis value: the axis value
#: ``"partition+delay"`` is a single cell injecting both presets at once.
COMBO_SEPARATOR = "+"

#: Axis value meaning "a generic live run, no scripted scenario".
LIVE_SCENARIO = "live"


def _preset_combo(value: Union[str, Sequence[str], None]) -> tuple[str, ...]:
    """Normalize one faults-axis value into a tuple of preset names."""
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(name for name in value.split(COMBO_SEPARATOR) if name)
    return tuple(value)


@dataclass(frozen=True)
class RunSpec:
    """One cell of the campaign matrix: everything needed to run it.

    ``RunSpec`` is picklable and JSON-round-trippable (``to_dict`` /
    ``from_dict``) so cells can cross process boundaries into pool workers
    and be re-identified in a result store across campaign invocations.
    """

    system: str
    scenario: Optional[str] = None
    mode: str = "off"
    seed: int = 0
    faults: tuple[str, ...] = ()
    fault_seed: Optional[int] = None
    fault_start_after: Optional[float] = None
    nodes: Optional[int] = None
    duration: Optional[float] = None
    churn: bool = False
    churn_interval: Optional[float] = None
    #: simple network scalars (rtt/loss/jitter/rst_loss) for live runs.
    network: tuple[tuple[str, float], ...] = ()
    options: tuple[tuple[str, Any], ...] = ()

    @property
    def run_id(self) -> str:
        """Stable identity of this cell, independent of execution order."""
        return ":".join(
            (
                self.system,
                self.scenario or LIVE_SCENARIO,
                COMBO_SEPARATOR.join(self.faults) or "none",
                self.mode,
                f"seed={self.seed}",
            )
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "system": self.system,
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "faults": list(self.faults),
            "fault_seed": self.fault_seed,
            "fault_start_after": self.fault_start_after,
            "nodes": self.nodes,
            "duration": self.duration,
            "churn": self.churn,
            "churn_interval": self.churn_interval,
            "network": dict(self.network),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(
            system=data["system"],
            scenario=data.get("scenario"),
            mode=data.get("mode", "off"),
            seed=int(data.get("seed", 0)),
            faults=tuple(data.get("faults") or ()),
            fault_seed=data.get("fault_seed"),
            fault_start_after=data.get("fault_start_after"),
            nodes=data.get("nodes"),
            duration=data.get("duration"),
            churn=bool(data.get("churn", False)),
            churn_interval=data.get("churn_interval"),
            network=tuple(sorted((data.get("network") or {}).items())),
            options=tuple(sorted((data.get("options") or {}).items())),
        )


@dataclass
class CampaignSpec:
    """Axes and shared settings of one sweep.

    Axes (each a sequence; the cross product is the run matrix):

    * ``systems`` — registered system names (default: every system);
    * ``scenarios`` — scripted scenario names, ``None`` / ``"live"`` for a
      generic live run (default: live only);
    * ``fault_presets`` — fault-preset combos per cell: a name, a
      ``"name+name"`` combo string, a sequence of names, or ``None`` for a
      fault-free cell (default: fault-free only);
    * ``seeds`` — run seeds (default: seed 0);
    * ``modes`` — CrystalBall modes (default: ``off``).

    Shared settings: ``nodes``, ``duration`` (scalar, or per-system via
    ``durations``), ``churn`` (off by default so the named faults are the
    only adversary), ``network`` (simple scalars: rtt/loss/jitter/
    rst_loss), ``options``, ``fault_seed``.
    """

    systems: Optional[Sequence[str]] = None
    scenarios: Sequence[Optional[str]] = (None,)
    fault_presets: Sequence[Union[str, Sequence[str], None]] = (None,)
    seeds: Sequence[int] = (0,)
    modes: Sequence[str] = ("off",)
    nodes: Optional[int] = None
    duration: Optional[float] = None
    durations: Mapping[str, float] = field(default_factory=dict)
    churn: bool = False
    churn_interval: Optional[float] = None
    network: Mapping[str, float] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    fault_seed: Optional[int] = None
    fault_start_after: Optional[float] = None

    def axes_dict(self) -> dict[str, Any]:
        """The axes as plain JSON data (for reports and result stores)."""
        return {
            "systems": list(self._system_names()),
            "scenarios": [scenario or LIVE_SCENARIO for scenario in self.scenarios],
            "fault_presets": [
                COMBO_SEPARATOR.join(_preset_combo(combo)) or "none"
                for combo in self.fault_presets
            ],
            "seeds": [int(seed) for seed in self.seeds],
            "modes": list(self.modes),
        }

    def _system_names(self) -> list[str]:
        if self.systems is None:
            return [spec.name for spec in list_systems()]
        return list(self.systems)

    def _duration_for(self, system: str) -> Optional[float]:
        if system in self.durations:
            return float(self.durations[system])
        return self.duration

    def expand(self) -> list[RunSpec]:
        """Validate every axis value and return the full run matrix.

        Raises ``ValueError`` on an unknown system, scenario, fault preset
        or mode — before any run starts, so a typo fails the whole campaign
        fast instead of 30 runs in.
        """
        systems = self._system_names()
        if not systems:
            raise ValueError("campaign has no systems to run")
        specs = {}
        for name in systems:
            try:
                specs[name] = get_system(name)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None

        known_presets = set(list_presets())
        combos = [_preset_combo(combo) for combo in self.fault_presets]
        for combo in combos:
            for preset in combo:
                if preset not in known_presets:
                    raise ValueError(
                        f"unknown fault preset {preset!r} "
                        f"(known presets: {', '.join(sorted(known_presets))})"
                    )

        modes = [parse_mode(mode).value for mode in self.modes]

        scenarios = [
            None if name in (None, LIVE_SCENARIO) else name for name in self.scenarios
        ]
        for name in scenarios:
            if name is None:
                continue
            for system in systems:
                try:
                    specs[system].scenario(name)
                except KeyError as exc:
                    raise ValueError(exc.args[0]) from None
        if any(name is not None for name in scenarios) and any(combos):
            # A scripted scenario runs its own scripted adversary; a
            # fault-preset axis crossed with it would be silently ignored
            # while still labelling the records — refuse the ambiguity.
            raise ValueError(
                "fault presets cannot be combined with scripted scenarios "
                "(scenarios script their own faults); sweep scenarios with "
                "presets=none, or sweep presets over live runs"
            )

        # Durations may name any registered system (a narrowed campaign can
        # reuse the full matrix's duration table) — but a typo'd name that
        # matches nothing registered would silently fall back to defaults.
        registered = {spec.name for spec in list_systems()} | set(systems)
        unknown_durations = set(self.durations) - registered
        if unknown_durations:
            raise ValueError(
                f"per-system duration(s) for unknown system(s) "
                f"{sorted(unknown_durations)} (registered systems: "
                f"{', '.join(sorted(registered))})"
            )

        known_network = {"rtt", "loss", "jitter", "rst_loss"}
        unknown_network = set(self.network) - known_network
        if unknown_network:
            raise ValueError(
                f"unknown network setting(s) {sorted(unknown_network)} "
                f"(accepted: {sorted(known_network)})"
            )

        network = tuple(sorted(self.network.items()))
        options = tuple(sorted(self.options.items()))
        runs = []
        for system in systems:
            for scenario in scenarios:
                for combo in combos:
                    for mode in modes:
                        for seed in self.seeds:
                            runs.append(
                                RunSpec(
                                    system=system,
                                    scenario=scenario,
                                    mode=mode,
                                    seed=int(seed),
                                    faults=combo,
                                    fault_seed=self.fault_seed,
                                    fault_start_after=self.fault_start_after,
                                    nodes=self.nodes,
                                    duration=self._duration_for(system),
                                    churn=self.churn,
                                    churn_interval=self.churn_interval,
                                    network=network,
                                    options=options,
                                )
                            )
        return runs


def parse_seed_values(raw: str) -> list[int]:
    """Parse a seeds-axis string: ``"3"``, ``"1,5,9"``, ``"0-7"`` or a mix."""
    seeds = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        low, sep, high = chunk.partition("-")
        if sep and low and high:
            start, stop = int(low), int(high)
            if stop < start:
                raise ValueError(f"empty seed range {chunk!r}")
            seeds.extend(range(start, stop + 1))
        else:
            seeds.append(int(chunk))
    if not seeds:
        raise ValueError(f"no seeds in {raw!r}")
    return seeds


def parse_axes(pairs: Mapping[str, str]) -> dict[str, Any]:
    """Turn CLI ``--axes key=values`` pairs into CampaignSpec axis kwargs.

    Keys: ``systems``, ``scenarios``, ``presets`` (alias ``faults``),
    ``seeds``, ``modes``.  Values are comma-separated; ``all`` expands to
    every registered system / fault preset; ``none`` gives a fault-free or
    live-only axis value; preset combos use ``+`` (``partition+delay``).
    """
    kwargs: dict[str, Any] = {}
    for key, raw in pairs.items():
        values = [value for value in raw.split(",") if value]
        if not values:
            raise ValueError(f"axis {key!r} has no values")
        if key == "systems":
            # "all" may arrive mixed with named systems when repeated
            # --axes flags were merged; it subsumes every other value.
            if "all" in values:
                kwargs["systems"] = None
            else:
                kwargs["systems"] = values
        elif key == "scenarios":
            kwargs["scenarios"] = [
                None if value in ("none", LIVE_SCENARIO) else value for value in values
            ]
        elif key in ("presets", "faults"):
            if "all" in values:
                # "all" subsumes every named preset but not the fault-free
                # cell, which stays an explicit extra axis value.
                kwargs["fault_presets"] = list(list_presets())
                if "none" in values:
                    kwargs["fault_presets"].append(None)
            else:
                kwargs["fault_presets"] = [
                    None if value == "none" else value for value in values
                ]
        elif key == "seeds":
            kwargs["seeds"] = parse_seed_values(raw)
        elif key == "modes":
            kwargs["modes"] = values
        else:
            raise ValueError(
                f"unknown campaign axis {key!r} (axes: systems, scenarios, "
                f"presets, seeds, modes)"
            )
    return kwargs
