"""Parallel campaign execution: a worker pool over the expanded run matrix.

One interpreter amortizes startup across every cell of the matrix (the old
nightly path paid a cold ``python -m repro`` subprocess per combination);
cells are distributed over a ``multiprocessing`` pool sized from
``os.cpu_count()``, with a serial in-process fallback for single-CPU
environments and ``jobs=1``.  Each finished run is streamed to the JSONL
:class:`~repro.campaign.store.ResultStore` immediately, so an interrupted
campaign is resumable from its partial results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Any, Callable, Optional, Union

from ..api.experiment import Experiment
from ..api.report import RunReport
from .report import CampaignReport, build_campaign_report
from .spec import CampaignSpec, RunSpec
from .store import ResultStore, make_record

#: ``progress(record)`` hook invoked in the parent as each run completes.
ProgressHook = Callable[[dict[str, Any]], None]


def run_attack_cell(run: RunSpec) -> RunReport:
    """Execute one ``modes=attack`` cell: hunt → minimize → replay.

    The cell's fault presets become the attack surface and its single
    named property the falsification target (``CampaignSpec.expand``
    enforces both).  The returned report is the minimized violating run
    (or the last seeded run of a failed hunt) with the attack artifact
    attached under ``outcome["attack"]`` — so rollups aggregate attack
    cells exactly like live cells, plus the attack verdict.
    """
    from ..attack import AttackConfig, find_attack

    config = AttackConfig(
        system=run.system,
        property_id=run.properties[0],
        faults=run.faults,
        nodes=run.nodes,
        duration=run.duration,
        seed=run.seed,
        options=dict(run.options),
    )
    result = find_attack(config)
    report = result.run_report
    if report is None:
        # The hunt never completed a single run (attempt budget 0);
        # synthesize an empty report so the record still aggregates.
        report = RunReport(system=run.system, seed=run.seed)
    summary = result.report.to_dict()
    # The full metrics snapshot and the pre-minimization trace stay in the
    # standalone artifact; campaign records carry the actionable core.
    summary.pop("metrics", None)
    summary.pop("original_trace", None)
    report.outcome["attack"] = summary
    return report


def run_one(run: RunSpec) -> RunReport:
    """Execute one campaign cell through the fluent experiment API."""
    if run.mode == "attack":
        return run_attack_cell(run)
    experiment = Experiment(run.system).seed(run.seed).mode(run.mode)
    if run.scenario is not None:
        experiment.scenario(run.scenario)
    # Deployment settings go through the builder for scenario cells too:
    # Experiment.run() forwards what the scenario runner accepts
    # (node_count / max_time) and warns about what it cannot honor, so a
    # sweep never silently measures something else than .run() would.
    if run.nodes is not None:
        experiment.nodes(run.nodes)
    if run.duration is not None:
        experiment.duration(run.duration)
    if run.scenario is None:
        if run.churn:
            experiment.churn(True, interval=run.churn_interval)
        else:
            experiment.churn(False)
    elif run.churn:
        # Scenarios script their own adversary; only an explicitly
        # requested churn is worth the builder's "ignored" warning.
        experiment.churn(True, interval=run.churn_interval)
    if run.network:
        experiment.network(**dict(run.network))
    if run.faults:
        experiment.faults(*run.faults, seed=run.fault_seed,
                          start_after=run.fault_start_after)
    elif run.fault_seed is not None:
        experiment.faults(seed=run.fault_seed)
    if run.properties is not None:
        # Patterns resolve against the worker's registry (the bundled
        # property modules self-register on import, so the registry is
        # identical in every worker).
        experiment.properties(*run.properties,
                              exclude=run.properties_exclude)
    if run.options:
        experiment.options(**dict(run.options))
    if run.workload is not None:
        experiment.workload(run.workload, **dict(run.workload_overrides))
    if run.backend != "sim":
        experiment.backend(run.backend)
    # Metrics are always on for live cells: counters are deterministic and
    # feed the aggregate's metrics rollup (cheap — no tracing).  Scripted
    # scenarios build their own simulators and cannot honor the setting.
    if run.scenario is None:
        experiment.metrics(True)
    return experiment.run()


def summarize_report(report: RunReport) -> dict[str, Any]:
    """The deterministic per-run counters campaign rollups aggregate.

    Wall-clock time is deliberately absent: everything here reproduces
    bit-for-bit from the seeds, which is what makes two runs of the same
    campaign yield identical aggregate JSON.
    """
    accounting = report.accounting()
    # Of the obs metrics, only counters reproduce bit-for-bit from the
    # seed, and parallel.* counters depend on worker scheduling — the
    # rollup takes exactly the deterministic remainder (the same subset
    # MetricsRegistry.counters() exposes).
    counters = (report.metrics or {}).get("counters", {})
    summary: dict[str, Any] = {
        "node_count": report.node_count,
        "metrics": {name: int(value)
                    for name, value in sorted(counters.items())
                    if not name.startswith("parallel.")},
        "simulated_seconds": report.simulated_seconds,
        "churn_events": report.churn_events,
        "faults_injected": report.faults_injected(),
        "fault_types": sorted(report.fault_breakdown()),
        "violations_predicted": accounting["violations_predicted"],
        "violations_avoided": accounting["violations_avoided"],
        "live_inconsistent_states": accounting["live_inconsistent_states"],
        "violations_observed": report.violations_observed(),
        "violation_episodes": int(
            report.monitor.get("distinct_violation_episodes", 0)),
        "violations_by_property": report.violations_by_property(),
        "requests_injected": report.requests_injected(),
        "requests_completed": report.requests_completed(),
    }
    attack = (report.outcome or {}).get("attack")
    if attack:
        # Attack cells surface their verdict in the summary row (all of it
        # reproduces from the seeds); the full artifact stays in the
        # record's report dict.
        summary["attack"] = {
            "found": bool(attack.get("found")),
            "attempts": int(attack.get("attempts", 0)),
            "executions": int(attack.get("executions", 0)),
            "original_steps": int(attack.get("original_steps", 0)),
            "minimized_steps": int(attack.get("minimized_steps", 0)),
            "reductions": list(attack.get("reductions") or ()),
            "replay_verified": bool(
                (attack.get("replay") or {}).get("verified")
            ),
        }
    return summary


def execute_run(run_dict: dict[str, Any]) -> dict[str, Any]:
    """Pool worker entry point: run one cell, never raise.

    Takes and returns plain dicts so the pool only ever pickles JSON-shaped
    data; a failing run becomes an ``"error"`` record carrying the
    traceback, and the campaign carries on (the nightly log should show the
    full matrix, not just the first casualty).
    """
    run = RunSpec.from_dict(run_dict)
    started = time.perf_counter()
    try:
        report = run_one(run)
    except Exception:
        return make_record(
            run.to_dict(),
            status="error",
            wall_clock_seconds=time.perf_counter() - started,
            error=traceback.format_exc(),
        )
    return make_record(
        run.to_dict(),
        status="ok",
        wall_clock_seconds=time.perf_counter() - started,
        summary=summarize_report(report),
        report=report.to_dict(),
    )


def default_jobs() -> int:
    return os.cpu_count() or 1


class CampaignRunner:
    """Execute a :class:`CampaignSpec` and aggregate the results.

    ``jobs=None`` sizes the pool from ``os.cpu_count()``; ``jobs<=1`` (or a
    single pending run) executes serially in-process.  ``out`` names the
    JSONL result store; without it, results stay in memory only and
    ``resume`` has nothing to resume from.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        jobs: Optional[int] = None,
        out: Optional[Union[str, os.PathLike]] = None,
        progress: Optional[ProgressHook] = None,
    ) -> None:
        self.spec = spec
        self.jobs = jobs
        self.store = ResultStore(out) if out is not None else None
        self.progress = progress

    def run(self, *, resume: bool = False) -> CampaignReport:
        started = time.perf_counter()
        runs = self.spec.expand()

        completed: dict[str, dict[str, Any]] = {}
        if resume:
            if self.store is None:
                raise ValueError("resume needs a result store (out=...)")
            # A record only counts as done when its *entire* run dict
            # matches the current cell — same run_id with a different
            # duration/nodes/network/options must re-execute, not sneak
            # stale numbers into the aggregate.  Stored dicts are
            # normalized through RunSpec so records written before a new
            # RunSpec field existed still match when the new field holds
            # its default (from_dict fills defaults for absent keys).
            wanted = {run.run_id: run.to_dict() for run in runs}

            def normalized(run_dict: Any) -> Optional[dict[str, Any]]:
                try:
                    return RunSpec.from_dict(run_dict).to_dict()
                except Exception:
                    return None  # torn/foreign record: not resumable

            completed = {
                run_id: record
                for run_id, record in self.store.completed().items()
                if run_id in wanted
                and normalized(record.get("run")) == wanted[run_id]
            }

        pending = [run for run in runs if run.run_id not in completed]
        records = list(completed.values())

        jobs = self.jobs if self.jobs is not None else default_jobs()
        jobs = max(1, min(jobs, len(pending) or 1))

        def collect(record: dict[str, Any]) -> None:
            if self.store is not None:
                self.store.append(record)
            if self.progress is not None:
                self.progress(record)
            records.append(record)

        if jobs == 1:
            for run in pending:
                collect(execute_run(run.to_dict()))
        elif pending:
            with multiprocessing.Pool(processes=jobs) as pool:
                results = pool.imap_unordered(
                    execute_run,
                    [run.to_dict() for run in pending],
                )
                for record in results:
                    collect(record)

        return build_campaign_report(
            self.spec,
            runs,
            records,
            jobs=jobs,
            resumed=len(completed),
            wall_clock_seconds=time.perf_counter() - started,
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: Optional[int] = None,
    out: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    progress: Optional[ProgressHook] = None,
) -> CampaignReport:
    """One-call convenience over :class:`CampaignRunner`."""
    runner = CampaignRunner(spec, jobs=jobs, out=out, progress=progress)
    return runner.run(resume=resume)
