"""Campaign aggregation: per-axis rollups and rendered summaries.

:func:`build_campaign_report` folds the per-run records of a campaign into
a :class:`CampaignReport` — totals plus rollups along every axis (system,
fault preset, mode, scenario, seed).  The aggregate is deterministic for a
fixed seed set: records are re-sorted by ``run_id`` (worker count only
varies the on-disk order) and wall-clock timing lives in a separate
``timing`` section that :meth:`CampaignReport.deterministic_dict` drops.

:func:`render_campaign_report` renders the same aggregate as a plain-text
table for terminals or as GitHub-flavored markdown for job summaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..analysis.reporting import format_markdown_table, format_table
from .spec import (
    COMBO_SEPARATOR,
    LIVE_SCENARIO,
    CampaignSpec,
    RunSpec,
    properties_label,
)

#: Summary counters summed into totals and every rollup bucket.
ROLLUP_COUNTERS = (
    "faults_injected",
    "violations_predicted",
    "violations_avoided",
    "live_inconsistent_states",
    "violations_observed",
    "churn_events",
)


#: Rollup axes: name -> key extractor over the run dict of a record.
_AXES = {
    "system": lambda run: run["system"],
    "preset": lambda run: COMBO_SEPARATOR.join(run["faults"] or []) or "none",
    "mode": lambda run: run["mode"],
    "scenario": lambda run: run["scenario"] or LIVE_SCENARIO,
    "seed": lambda run: str(run["seed"]),
    "properties": lambda run: properties_label(run.get("properties")),
}


def _empty_bucket() -> dict[str, Any]:
    bucket: dict[str, Any] = {"runs": 0, "succeeded": 0, "failed": 0}
    for counter in ROLLUP_COUNTERS:
        bucket[counter] = 0
    return bucket


def _fold(bucket: dict[str, Any], record: dict[str, Any]) -> None:
    bucket["runs"] += 1
    if record["status"] == "ok":
        bucket["succeeded"] += 1
        summary = record.get("summary") or {}
        for counter in ROLLUP_COUNTERS:
            bucket[counter] += int(summary.get(counter, 0))
    else:
        bucket["failed"] += 1


@dataclass
class CampaignReport:
    """The aggregated result of one campaign execution."""

    axes: dict[str, Any]
    totals: dict[str, Any]
    rollups: dict[str, dict[str, dict[str, Any]]]
    failures: list[dict[str, Any]]
    runs: list[dict[str, Any]]
    #: per-property columns: property id -> {"violations", "runs_affected"},
    #: folded from every successful run's per-property violation counts.
    properties: dict[str, dict[str, int]] = field(default_factory=dict)
    #: deterministic obs counters summed over every successful run, sorted
    #: by name (parallel.* counters are already excluded per-run).
    metrics: dict[str, int] = field(default_factory=dict)
    timing: dict[str, Any] = field(default_factory=dict)

    @property
    def run_count(self) -> int:
        return int(self.totals["runs"])

    @property
    def succeeded(self) -> int:
        return int(self.totals["succeeded"])

    @property
    def failed(self) -> int:
        return int(self.totals["failed"])

    def violations_observed(self) -> int:
        return int(self.totals["violations_observed"])

    def faultless_runs(self) -> list[str]:
        """Run ids that requested fault presets but injected nothing."""
        missing = []
        for run in self.runs:
            if run["status"] != "ok" or not run["faults"]:
                continue
            if int((run.get("summary") or {}).get("faults_injected", 0)) <= 0:
                missing.append(run["run_id"])
        return missing

    def deterministic_dict(self) -> dict[str, Any]:
        """The seed-reproducible aggregate: identical across reruns and
        worker counts of the same campaign."""
        return {
            "axes": self.axes,
            "totals": self.totals,
            "rollups": self.rollups,
            "properties": self.properties,
            "metrics": self.metrics,
            "failures": self.failures,
            "runs": self.runs,
        }

    def to_dict(self) -> dict[str, Any]:
        data = self.deterministic_dict()
        data["timing"] = self.timing
        return data

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_campaign_report(
    spec: CampaignSpec,
    runs: Sequence[RunSpec],
    records: Sequence[dict[str, Any]],
    *,
    jobs: int,
    resumed: int = 0,
    wall_clock_seconds: float = 0.0,
) -> CampaignReport:
    """Fold run records into the deterministic campaign aggregate."""
    by_id = {record["run"]["run_id"]: record for record in records}
    ordered = [by_id[run.run_id] for run in runs if run.run_id in by_id]
    ordered.sort(key=lambda record: record["run"]["run_id"])

    totals = _empty_bucket()
    rollups: dict[str, dict[str, dict[str, Any]]] = {axis: {} for axis in _AXES}
    properties: dict[str, dict[str, int]] = {}
    metrics: dict[str, int] = {}
    failures = []
    run_rows = []
    for record in ordered:
        run = record["run"]
        _fold(totals, record)
        for axis, key_of in _AXES.items():
            bucket = rollups[axis].setdefault(key_of(run), _empty_bucket())
            _fold(bucket, record)
        if record["status"] == "ok":
            by_property = (record.get("summary") or {}).get(
                "violations_by_property"
            ) or {}
            for name, count in by_property.items():
                column = properties.setdefault(
                    name, {"violations": 0, "runs_affected": 0}
                )
                column["violations"] += int(count)
                column["runs_affected"] += 1
            for name, value in (
                (record.get("summary") or {}).get("metrics") or {}
            ).items():
                metrics[name] = metrics.get(name, 0) + int(value)
        if record["status"] != "ok":
            failures.append(
                {
                    "run_id": run["run_id"],
                    "error": (record.get("error") or "").strip(),
                }
            )
        run_rows.append(
            {
                "run_id": run["run_id"],
                "system": run["system"],
                "scenario": run["scenario"],
                "faults": list(run["faults"] or []),
                "mode": run["mode"],
                "seed": run["seed"],
                "properties": (list(run["properties"])
                               if run.get("properties") is not None else None),
                "status": record["status"],
                "summary": record.get("summary"),
            }
        )

    rollups = {
        axis: dict(sorted(buckets.items())) for axis, buckets in rollups.items()
    }
    properties = dict(sorted(properties.items()))
    metrics = dict(sorted(metrics.items()))
    run_wall_clock = sum(
        float(record.get("wall_clock_seconds") or 0.0) for record in ordered
    )
    timing = {
        "jobs": jobs,
        "resumed_runs": resumed,
        "wall_clock_seconds": wall_clock_seconds,
        "run_wall_clock_seconds": run_wall_clock,
    }
    return CampaignReport(
        axes=spec.axes_dict(),
        totals=totals,
        rollups=rollups,
        properties=properties,
        metrics=metrics,
        failures=failures,
        runs=run_rows,
        timing=timing,
    )


_TABLE_COLUMNS = (
    ("runs", "runs"),
    ("succeeded", "ok"),
    ("failed", "failed"),
    ("faults_injected", "faults"),
    ("violations_predicted", "predicted"),
    ("violations_avoided", "avoided"),
    ("live_inconsistent_states", "inconsistent"),
    ("violations_observed", "observed"),
)


def _property_rows(report: CampaignReport) -> list[list[Any]]:
    return [
        [name, column["violations"], column["runs_affected"]]
        for name, column in report.properties.items()
    ]


def _rollup_rows(report: CampaignReport) -> list[list[Any]]:
    rows = []
    for axis in ("system", "preset", "mode", "scenario", "properties"):
        buckets = report.rollups.get(axis, {})
        if len(buckets) < 2 and axis != "system":
            # A single-valued axis repeats the totals line; skip the noise.
            continue
        for value, bucket in buckets.items():
            rows.append(
                [f"{axis}={value}"] + [bucket[key] for key, _ in _TABLE_COLUMNS]
            )
    rows.append(["total"] + [report.totals[key] for key, _ in _TABLE_COLUMNS])
    return rows


def render_campaign_report(
    report: CampaignReport,
    *,
    markdown: bool = False,
) -> str:
    """Render the aggregate as a plain-text or GitHub-markdown summary."""
    timing = report.timing
    headline = (
        f"campaign: {report.run_count} runs "
        f"(ok {report.succeeded}, failed {report.failed}) · "
        f"jobs {timing.get('jobs', '?')} · "
        f"wall-clock {timing.get('wall_clock_seconds', 0.0):.1f}s"
    )
    if timing.get("resumed_runs"):
        headline += f" · resumed {timing['resumed_runs']}"

    headers = ["axis"] + [label for _, label in _TABLE_COLUMNS]
    rows = _rollup_rows(report)
    property_headers = ["property", "violations", "runs affected"]
    property_rows = _property_rows(report)
    lines = []
    if markdown:
        lines.append("### Campaign summary")
        lines.append("")
        lines.append(headline)
        lines.append("")
        lines.append(format_markdown_table(headers, rows))
        if property_rows:
            lines.append("")
            lines.append("#### Violations by property")
            lines.append("")
            lines.append(format_markdown_table(property_headers, property_rows))
        if report.failures:
            lines.append("")
            lines.append(f"#### Failures ({len(report.failures)})")
            lines.append("")
            for failure in report.failures:
                last_line = failure["error"].splitlines()[-1:] or [""]
                lines.append(f"- `{failure['run_id']}` — {last_line[0]}")
    else:
        lines.append(headline)
        lines.append(format_table(headers, rows, title="per-axis rollups"))
        if property_rows:
            lines.append(format_table(property_headers, property_rows,
                                      title="violations by property"))
        if report.failures:
            lines.append(f"failures ({len(report.failures)}):")
            for failure in report.failures:
                last_line = failure["error"].splitlines()[-1:] or [""]
                lines.append(f"  {failure['run_id']}: {last_line[0]}")
    return "\n".join(lines)
