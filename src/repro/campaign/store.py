"""Append-only JSONL result store: one line per completed campaign run.

Records are streamed to disk as the worker pool finishes them, so a
crashed or interrupted campaign keeps everything it already paid for;
``--resume`` loads the store and skips the cells that already succeeded.
The line order reflects completion order (worker count may vary it) —
aggregation always re-sorts by ``run_id``, so the on-disk order never
affects the campaign report.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Optional, Union

#: Bumped when the record layout changes incompatibly.
SCHEMA_VERSION = 1


class ResultStore:
    """JSONL store of campaign run records at ``path``.

    Each line is one JSON object::

        {"schema": 1, "run": {...RunSpec...}, "status": "ok"|"error",
         "error": null|str, "wall_clock_seconds": float,
         "summary": {...}|null, "report": {...}|null}
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: dict[str, Any]) -> None:
        """Write one record and flush, so a crash loses at most one line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield every parseable record; a torn trailing line is skipped."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one torn line; the
                    # corresponding run simply reruns on resume.
                    continue

    def load(self) -> list[dict[str, Any]]:
        return list(self)

    def completed(self) -> dict[str, dict[str, Any]]:
        """Latest successful record per ``run_id`` (what resume skips)."""
        done: dict[str, dict[str, Any]] = {}
        for record in self:
            run_id = (record.get("run") or {}).get("run_id")
            if run_id is None:
                continue
            if record.get("status") == "ok":
                done[run_id] = record
            else:
                # A later failure supersedes an earlier success (e.g. the
                # store was reused across code changes): rerun it.
                done.pop(run_id, None)
        return done


def make_record(
    run_dict: dict[str, Any],
    *,
    status: str,
    wall_clock_seconds: float,
    summary: Optional[dict[str, Any]] = None,
    report: Optional[dict[str, Any]] = None,
    error: Optional[str] = None,
) -> dict[str, Any]:
    """Assemble one store record in the canonical shape."""
    return {
        "schema": SCHEMA_VERSION,
        "run": run_dict,
        "status": status,
        "error": error,
        "wall_clock_seconds": wall_clock_seconds,
        "summary": summary,
        "report": report,
    }
