"""Concretized, minimizable attack schedules.

A fault preset is *implicit*: "equivocate every 20 s" only becomes
concrete firings once a run unfolds.  Delta debugging needs the opposite —
an explicit list of one-shot steps where removing one never changes the
others.  :func:`concretize` unrolls presets/instances into
:class:`AttackStep` entries at absolute simulated times, each carrying its
own pinned ``rng_key`` (so the equivocating node picked by step 3 does not
depend on whether step 2 still exists), and :func:`build_faults` turns a
schedule back into one-shot :class:`~repro.faults.base.Fault` instances
for a seeded re-execution.

Schedules serialize to JSON (``to_dict``/``from_dict``) — they are the
``trace`` section of the attack-report artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence, Type, Union

from ..faults.base import Fault
from ..faults.byzantine import EquivocatingNode, MessageTamper, SpoofSender
from ..faults.presets import resolve_preset
from ..faults.types import (
    ClockSkew,
    CrashRestart,
    LinkFlap,
    MessageDelay,
    MessageDup,
    MessageReorder,
    Partition,
)

__all__ = [
    "STEP_KINDS",
    "AttackStep",
    "AttackSchedule",
    "concretize",
    "build_faults",
]

#: Fault classes a schedule step can name, keyed by ``Fault.name``.
STEP_KINDS: dict[str, Type[Fault]] = {
    cls.name: cls
    for cls in (
        Partition,
        LinkFlap,
        CrashRestart,
        ClockSkew,
        MessageDelay,
        MessageReorder,
        MessageDup,
        MessageTamper,
        SpoofSender,
        EquivocatingNode,
    )
}

#: Fault constructor arguments owned by the step itself (timing + RNG) or
#: not serializable (the mutator hook is re-resolved from the system spec).
_RESERVED_PARAMS = frozenset({"at", "every", "duration", "rng_key", "mutator"})

#: Bound on concretized steps per schedule, so a short-period preset over a
#: long run cannot explode the trace artifact.
_MAX_STEPS = 64


def _jsonify(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def _fault_params(fault: Fault) -> dict[str, Any]:
    """Init fields that configure the fault beyond timing/RNG."""
    params: dict[str, Any] = {}
    for f in dataclasses.fields(fault):
        if not f.init or f.name in _RESERVED_PARAMS:
            continue
        params[f.name] = getattr(fault, f.name)
    return params


@dataclass(frozen=True)
class AttackStep:
    """One one-shot fault firing at an absolute simulated time.

    ``rng_key`` pins the step's private RNG: the same step replays the
    same draws (liar choice, tampered fields) no matter which other steps
    survive minimization.
    """

    kind: str
    at: float
    duration: Union[float, None] = None
    params: dict[str, Any] = field(default_factory=dict)
    rng_key: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "at": round(self.at, 6),
            "duration": self.duration,
            "params": {key: _jsonify(val) for key, val in self.params.items()},
            "rng_key": self.rng_key,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttackStep":
        params = dict(data.get("params", {}))
        # JSON round-trips tuples as lists; fault fields expect tuples.
        for key, value in params.items():
            if isinstance(value, list):
                params[key] = tuple(value)
        return cls(
            kind=data["kind"],
            at=float(data["at"]),
            duration=data.get("duration"),
            params=params,
            rng_key=data.get("rng_key", ""),
        )


@dataclass(frozen=True)
class AttackSchedule:
    """An explicit, replayable fault schedule for one attack attempt."""

    steps: tuple[AttackStep, ...]
    #: Attack seed the schedule was concretized with (names the attempt).
    seed: int = 0
    duration: float = 0.0

    def __len__(self) -> int:
        return len(self.steps)

    def replace_steps(self, steps: Sequence[AttackStep]) -> "AttackSchedule":
        return AttackSchedule(
            steps=tuple(steps), seed=self.seed, duration=self.duration
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttackSchedule":
        return cls(
            steps=tuple(AttackStep.from_dict(s) for s in data.get("steps", [])),
            seed=int(data.get("seed", 0)),
            duration=float(data.get("duration", 0.0)),
        )


def concretize(
    faults: Iterable[Union[str, Fault]],
    *,
    duration: float,
    seed: int = 0,
    start_after: float = 0.0,
    stop_after: Union[float, None] = None,
) -> AttackSchedule:
    """Unroll presets/instances into an explicit one-shot schedule.

    Firing times mirror the nemesis: the first firing lands at
    ``start_after + (at or every)``, periodic faults re-fire every
    ``every`` seconds, and nothing fires at or past ``stop_after``
    (default ``0.9 * duration``, the nemesis convention that leaves the
    run a tail to re-converge in).
    """
    if stop_after is None:
        stop_after = duration * 0.9
    expanded: list[Fault] = []
    for item in faults:
        if isinstance(item, Fault):
            expanded.append(item)
        else:
            expanded.extend(resolve_preset(item, duration))
    steps: list[AttackStep] = []
    for fault in expanded:
        if fault.name not in STEP_KINDS:
            raise ValueError(
                f"fault type {fault.name!r} has no schedule step kind "
                f"(known kinds: {', '.join(sorted(STEP_KINDS))})"
            )
        params = _fault_params(fault)
        first = fault.at if fault.at is not None else fault.every
        t = start_after + float(first)
        while t < stop_after and len(steps) < _MAX_STEPS:
            steps.append(
                AttackStep(
                    kind=fault.name,
                    at=t,
                    duration=fault.duration,
                    params=dict(params),
                    rng_key=f"attack/{seed}/{len(steps)}",
                )
            )
            if fault.every is None:
                break
            t += fault.every
    steps.sort(key=lambda step: (step.at, step.kind, step.rng_key))
    return AttackSchedule(steps=tuple(steps), seed=seed, duration=duration)


def build_faults(schedule: AttackSchedule) -> list[Fault]:
    """Reconstruct one-shot fault instances from a schedule.

    Steps carry absolute times, so callers must run the nemesis with
    ``start_after=0.0``.  ``MutatingFault`` steps come back with
    ``mutator=None`` — the live run fills in the system's registered
    mutator hook, exactly as for preset-built faults.
    """
    faults: list[Fault] = []
    for step in schedule.steps:
        try:
            cls = STEP_KINDS[step.kind]
        except KeyError:
            raise ValueError(
                f"unknown schedule step kind {step.kind!r} "
                f"(known kinds: {', '.join(sorted(STEP_KINDS))})"
            ) from None
        faults.append(
            cls(
                at=step.at,
                duration=step.duration,
                rng_key=step.rng_key or None,
                **step.params,
            )
        )
    return faults
