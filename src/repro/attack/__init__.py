"""Adversarial testing: byzantine attacks as first-class artifacts.

The rest of the harness asks "does the system stay consistent under
*benign* faults?".  This package asks the adversarial question: *can a
lying node drive a named safety property to violation* — and if so, what
is the smallest, replayable schedule that does it?

Three pieces, built on :mod:`repro.faults.byzantine` and
:mod:`repro.mc.falsify`:

:mod:`repro.attack.schedule`
    Concretizes fault presets into explicit one-shot
    :class:`~repro.attack.schedule.AttackStep` lists with pinned per-step
    RNG keys, so dropping one step never shifts the others' draws — the
    property delta debugging needs.

:mod:`repro.attack.runner`
    :func:`~repro.attack.runner.find_attack`: seeded counterexample hunt
    against one registered property, greedy trace minimization, and a
    deterministic replay check (same violation, same state digest).

:mod:`repro.attack.report`
    The :class:`~repro.attack.report.AttackReport` artifact — trace JSON
    plus rendered markdown, in the shape of a Tamarin falsified-lemma
    report.

Entry points: ``python -m repro attack <system> --property <id>`` and the
campaign ``modes=attack`` axis.
"""

from .report import AttackReport
from .runner import AttackConfig, AttackEvidence, AttackResult, find_attack
from .schedule import (
    STEP_KINDS,
    AttackSchedule,
    AttackStep,
    build_faults,
    concretize,
)

__all__ = [
    "AttackConfig",
    "AttackEvidence",
    "AttackReport",
    "AttackResult",
    "AttackSchedule",
    "AttackStep",
    "STEP_KINDS",
    "build_faults",
    "concretize",
    "find_attack",
]
