"""The attack-report artifact: trace JSON + rendered markdown.

Shaped after the Tamarin falsified-lemma reports in the related softsec
set (`RMAP_TAMARIN_REPORT.md`): a report states *which property* was
attacked, *whether* it was falsified, the exact *reproduction command*,
and the minimized counterexample trace with enough detail to interpret
the attack without re-running it.  The JSON side is the machine-readable
twin the CI smoke job and campaign aggregates consume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from .schedule import AttackSchedule

__all__ = ["AttackReport"]


def _fmt_time(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}s"


@dataclass
class AttackReport:
    """Structured outcome of one falsification hunt.

    Everything needed to re-run the attack is inside: the minimized
    schedule (absolute times + pinned RNG keys), the run seed, and the
    CLI invocation.  ``replay`` records the determinism check — the
    minimized schedule re-executed to the same violation and digests.
    """

    system: str
    property_id: str
    found: bool
    mode: str = "off"
    seed: int = 0
    #: Attack-candidate seed of the violating schedule (None = no attack).
    attack_seed: Optional[int] = None
    nodes: int = 0
    duration: float = 0.0
    attempts: int = 0
    #: Total seeded runs spent: search + minimization + replay check.
    executions: int = 0
    invocation: str = ""
    original_schedule: Optional[AttackSchedule] = None
    minimized_schedule: Optional[AttackSchedule] = None
    #: Accepted minimization reductions, in order.
    reductions: list[str] = field(default_factory=list)
    #: First violation record of the minimized run (ViolationRecord dict).
    violation: Optional[dict[str, Any]] = None
    #: Violations observed in the minimized run.
    violation_count: int = 0
    #: Whole-system protocol state digest at the end of the minimized run.
    final_state_digest: Optional[str] = None
    #: Determinism check: {"verified", "sim_time", "state_digest",
    #: "final_state_digest"} from re-executing the minimized schedule.
    replay: Optional[dict[str, Any]] = None
    metrics: dict[str, Any] = field(default_factory=dict)

    # -- sizes ----------------------------------------------------------------

    @property
    def original_steps(self) -> int:
        return len(self.original_schedule) if self.original_schedule else 0

    @property
    def minimized_steps(self) -> int:
        return len(self.minimized_schedule) if self.minimized_schedule else 0

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "property": self.property_id,
            "found": self.found,
            "mode": self.mode,
            "seed": self.seed,
            "attack_seed": self.attack_seed,
            "nodes": self.nodes,
            "duration": self.duration,
            "attempts": self.attempts,
            "executions": self.executions,
            "invocation": self.invocation,
            "original_steps": self.original_steps,
            "minimized_steps": self.minimized_steps,
            "reductions": list(self.reductions),
            "trace": (
                self.minimized_schedule.to_dict()
                if self.minimized_schedule is not None
                else None
            ),
            "original_trace": (
                self.original_schedule.to_dict()
                if self.original_schedule is not None
                else None
            ),
            "violation": self.violation,
            "violation_count": self.violation_count,
            "final_state_digest": self.final_state_digest,
            "replay": self.replay,
            "metrics": dict(self.metrics),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -- markdown rendering ----------------------------------------------------

    def to_markdown(self) -> str:
        lines: list[str] = []
        verdict = "FALSIFIED" if self.found else "no counterexample found"
        lines.append(f"# Attack Report — {self.system} · `{self.property_id}`")
        lines.append("")
        if self.found:
            lines.append(
                f"The byzantine adversary **falsified** `{self.property_id}` "
                f"on `{self.system}` (mode `{self.mode}`, {self.nodes} nodes, "
                f"{self.duration:g}s simulated). The violating schedule was "
                f"minimized from {self.original_steps} to "
                f"{self.minimized_steps} step(s); the minimized trace replays "
                f"deterministically to the same violation and state digest."
            )
        else:
            lines.append(
                f"No counterexample to `{self.property_id}` was found on "
                f"`{self.system}` within {self.attempts} seeded attempt(s) "
                f"(mode `{self.mode}`, {self.nodes} nodes, "
                f"{self.duration:g}s simulated)."
            )
        lines.append("")
        lines.append("## Reproduction")
        lines.append("")
        lines.append("```bash")
        lines.append(self.invocation)
        lines.append("```")
        lines.append("")
        lines.append("## High-level results")
        lines.append("")
        lines.append("| property | result | attempts | runs | trace | replay |")
        lines.append("|---|---|---|---|---|---|")
        replay_cell = "-"
        if self.replay is not None:
            replay_cell = "verified" if self.replay.get("verified") else "MISMATCH"
        trace_cell = (
            f"{self.original_steps} → {self.minimized_steps} steps"
            if self.found
            else "-"
        )
        lines.append(
            f"| `{self.property_id}` | **{verdict}** | {self.attempts} "
            f"| {self.executions} | {trace_cell} | {replay_cell} |"
        )
        lines.append("")
        if self.found and self.minimized_schedule is not None:
            lines.append("## Minimized attack trace")
            lines.append("")
            lines.append("| # | sim time | fault | window | parameters |")
            lines.append("|---|---|---|---|---|")
            for index, step in enumerate(self.minimized_schedule.steps):
                params = (
                    ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(step.params.items())
                        if value is not None
                    )
                    or "-"
                )
                lines.append(
                    f"| {index} | {_fmt_time(step.at)} | `{step.kind}` "
                    f"| {_fmt_time(step.duration)} | {params} |"
                )
            lines.append("")
            if self.violation is not None:
                lines.append("### Violation")
                lines.append("")
                node = self.violation.get("node") or "global"
                lines.append(
                    f"- **property:** `{self.violation.get('property_id')}` "
                    f"(severity {self.violation.get('severity')})"
                )
                lines.append(
                    f"- **at:** t={_fmt_time(self.violation.get('sim_time'))} "
                    f"on {node}"
                )
                lines.append(f"- **detail:** {self.violation.get('detail')}")
                lines.append(
                    f"- **state digest:** `{self.violation.get('state_digest')}`"
                )
                lines.append(
                    f"- **final protocol digest:** `{self.final_state_digest}`"
                )
                lines.append("")
            if self.reductions:
                lines.append(
                    f"Minimization accepted {len(self.reductions)} "
                    f"reduction(s): {', '.join(self.reductions)}."
                )
                lines.append("")
        lines.append("## Interpretation")
        lines.append("")
        if self.found:
            lines.append(
                "A falsified property means the trace above is a concrete "
                "byzantine execution — not an over-approximation — in which "
                "the system reaches a state violating the property. Every "
                "step that remains survived delta debugging: removing any "
                "one of them makes the violation disappear. Re-run the "
                "reproduction command to replay it; the pinned per-step RNG "
                "keys make the schedule bit-reproducible."
            )
        else:
            lines.append(
                "The search is falsification, not verification: exhausting "
                "the seeded attempts without a counterexample does not prove "
                "the property holds — it bounds the adversary tried. Raise "
                "`--attempts`, widen `--faults`, or lengthen `--duration` "
                "to strengthen the attack."
            )
        lines.append("")
        return "\n".join(lines)

    # -- artifacts -------------------------------------------------------------

    def artifact_stem(self) -> str:
        return f"attack_{self.system}_{self.property_id.replace('.', '_')}"

    def write(self, outdir: str) -> tuple[str, str]:
        """Write ``<stem>.json`` and ``<stem>.md`` under ``outdir``."""
        os.makedirs(outdir, exist_ok=True)
        stem = os.path.join(outdir, self.artifact_stem())
        json_path = f"{stem}.json"
        md_path = f"{stem}.md"
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(self.to_markdown())
        return json_path, md_path
