"""The attack runner: hunt, minimize, replay, report.

:func:`find_attack` is the engine behind ``python -m repro attack`` and
the campaign ``modes=attack`` axis:

1. **Hunt** — concretize the requested fault presets into explicit
   schedules under increasing attack seeds and hand them to
   :class:`~repro.mc.falsify.FalsificationEngine` until one seeded live
   run violates the named property (or the attempt budget runs out).
2. **Minimize** — greedy delta debugging
   (:func:`~repro.mc.falsify.greedy_minimize`) over the violating
   schedule: drop steps, shorten fault windows, narrow tampered message
   types; every proposal is confirmed by a full seeded re-execution.
3. **Replay** — re-execute the minimized schedule once more and check it
   reproduces the *same* violation (simulated time + per-violation state
   digest) and the same final whole-system protocol digest.
4. **Report** — package everything into an
   :class:`~repro.attack.report.AttackReport` artifact.

Every run is a plain :class:`~repro.api.experiment.Experiment` with the
schedule's one-shot faults installed at ``start_after=0.0`` (steps carry
absolute times) — so a reported trace replays through the public API with
no attack machinery involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ..api.experiment import Experiment
from ..api.registry import get_system
from ..api.report import RunReport
from ..backends.base import protocol_state_digest
from ..faults.base import Fault
from ..faults.byzantine import MutatingFault
from ..mc.falsify import (
    FalsificationEngine,
    greedy_minimize,
    seeded_candidates,
)
from ..obs import MetricsRegistry
from ..properties.violations import ViolationRecord
from .report import AttackReport
from .schedule import STEP_KINDS, AttackSchedule, AttackStep, build_faults, concretize

__all__ = ["AttackConfig", "AttackEvidence", "AttackResult", "find_attack"]

#: Fault windows are never shrunk below this (seconds); below it the
#: window covers no deliveries and the re-execution is wasted.
_MIN_WINDOW = 1.0


@dataclass
class AttackConfig:
    """Everything one attack hunt needs (CLI flags map 1:1 onto fields)."""

    system: str
    property_id: str
    faults: Sequence[Union[str, Fault]] = ("equivocation",)
    nodes: Optional[int] = None
    duration: Optional[float] = None
    #: Run seed of every seeded execution (the simulator's stream).
    seed: int = 0
    #: Seeded schedules tried before giving up.
    attempts: int = 8
    mode: str = "off"
    minimize: bool = True
    max_minimize_executions: int = 64
    #: Message types the minimizer may narrow ``mtypes=None`` byzantine
    #: steps down to (None disables that reducer direction).
    mtype_pool: Optional[tuple[str, ...]] = None
    #: System options forwarded to the experiment (e.g. paxos ``bug``).
    options: Mapping[str, Any] = field(default_factory=dict)
    #: Optional JSONL trace path for the final replay run (repro.obs).
    trace: Optional[str] = None


@dataclass
class AttackEvidence:
    """Proof that one schedule violates the target property."""

    record: ViolationRecord
    count: int
    final_digest: str
    run_report: RunReport


@dataclass
class AttackResult:
    """What :func:`find_attack` hands back to CLI/campaign/tests."""

    found: bool
    report: AttackReport
    schedule: Optional[AttackSchedule] = None
    evidence: Optional[AttackEvidence] = None
    run_report: Optional[RunReport] = None


def _invocation(
    config: AttackConfig, nodes: int, duration: float
) -> str:
    parts = ["python -m repro attack", config.system]
    parts += ["--property", config.property_id]
    for item in config.faults:
        parts += ["--faults", item if isinstance(item, str) else repr(item)]
    parts += ["--nodes", str(nodes)]
    parts += ["--duration", f"{duration:g}"]
    parts += ["--seed", str(config.seed)]
    parts += ["--attempts", str(config.attempts)]
    if config.mode != "off":
        parts += ["--mode", config.mode]
    if not config.minimize:
        parts.append("--no-minimize")
    return " ".join(parts)


class _AttackRunner:
    def __init__(self, config: AttackConfig) -> None:
        self.config = config
        spec = get_system(config.system)
        self.nodes = config.nodes if config.nodes is not None else spec.default_nodes
        self.duration = (
            config.duration if config.duration is not None else spec.default_duration
        )
        self.start_after = min(self.nodes * spec.join_spacing, self.duration * 0.1)
        self.metrics = MetricsRegistry()
        #: Most recent seeded run, violating or not — so a failed hunt
        #: still hands the campaign a real RunReport to aggregate.
        self.last_run_report: Optional[RunReport] = None

    # -- execution -------------------------------------------------------------

    def execute(
        self, schedule: AttackSchedule, trace: Optional[str] = None
    ) -> Optional[AttackEvidence]:
        """One seeded run of the schedule; evidence iff the property broke."""
        config = self.config
        self.metrics.inc("attack.executions")
        experiment = (
            Experiment(config.system)
            .mode(config.mode)
            .seed(config.seed)
            .nodes(self.nodes)
            .duration(self.duration)
            .properties(config.property_id)
            .faults(*build_faults(schedule), seed=0, start_after=0.0)
        )
        if config.options:
            experiment.options(**dict(config.options))
        if trace is not None:
            experiment.trace(trace)
        report = experiment.run()
        self.last_run_report = report
        records = [
            record
            for record in report.live_monitor.records
            if record.property_id == config.property_id
        ]
        if not records:
            return None
        self.metrics.inc("attack.violating_runs")
        return AttackEvidence(
            record=records[0],
            count=len(records),
            final_digest=protocol_state_digest(report.simulator),
            run_report=report,
        )

    # -- minimization reducers -------------------------------------------------

    def _drop_step(self, schedule: AttackSchedule):
        if len(schedule.steps) <= 1:
            return
        for index in range(len(schedule.steps)):
            steps = schedule.steps[:index] + schedule.steps[index + 1 :]
            yield schedule.replace_steps(steps)

    def _shrink_window(self, schedule: AttackSchedule):
        for index, step in enumerate(schedule.steps):
            if step.duration is None or step.duration / 2 < _MIN_WINDOW:
                continue
            shrunk = AttackStep(
                kind=step.kind,
                at=step.at,
                duration=step.duration / 2,
                params=step.params,
                rng_key=step.rng_key,
            )
            steps = (
                schedule.steps[:index] + (shrunk,) + schedule.steps[index + 1 :]
            )
            yield schedule.replace_steps(steps)

    def _narrow_mtypes(self, schedule: AttackSchedule):
        """Drop tampered message types one at a time (the "drop message
        perturbations" axis): a surviving narrowing proves the attack
        never needed to touch the removed type."""
        pool = self.config.mtype_pool
        for index, step in enumerate(schedule.steps):
            cls = STEP_KINDS.get(step.kind)
            if cls is None or not issubclass(cls, MutatingFault):
                continue
            mtypes = step.params.get("mtypes")
            candidates: list[tuple[str, ...]] = []
            if mtypes:
                if len(mtypes) > 1:
                    candidates = [
                        tuple(m for m in mtypes if m != dropped)
                        for dropped in mtypes
                    ]
            elif pool:
                candidates = [(mtype,) for mtype in pool]
            for narrowed in candidates:
                params = dict(step.params)
                params["mtypes"] = narrowed
                replaced = AttackStep(
                    kind=step.kind,
                    at=step.at,
                    duration=step.duration,
                    params=params,
                    rng_key=step.rng_key,
                )
                steps = (
                    schedule.steps[:index]
                    + (replaced,)
                    + schedule.steps[index + 1 :]
                )
                yield schedule.replace_steps(steps)

    def reducers(self):
        return [
            ("drop-step", self._drop_step),
            ("narrow-mtypes", self._narrow_mtypes),
            ("shrink-window", self._shrink_window),
        ]

    # -- the full pipeline -----------------------------------------------------

    def run(self) -> AttackResult:
        config = self.config
        invocation = _invocation(config, self.nodes, self.duration)

        def make(seed: int) -> AttackSchedule:
            return concretize(
                config.faults,
                duration=self.duration,
                seed=seed,
                start_after=self.start_after,
            )

        engine = FalsificationEngine(
            config.property_id,
            self.execute,
            seeded_candidates(make),
            max_attempts=config.attempts,
        )
        hunt = engine.falsify()
        self.metrics.inc("attack.attempts", hunt.attempts)

        if not hunt.found:
            report = AttackReport(
                system=config.system,
                property_id=config.property_id,
                found=False,
                mode=config.mode,
                seed=config.seed,
                nodes=self.nodes,
                duration=self.duration,
                attempts=hunt.attempts,
                executions=self._executions(),
                invocation=invocation,
                metrics=self.metrics.snapshot(),
            )
            return AttackResult(
                found=False, report=report, run_report=self.last_run_report
            )

        original: AttackSchedule = hunt.candidate
        evidence: AttackEvidence = hunt.evidence
        reductions: list[str] = []
        minimized = original
        if config.minimize:
            shrunk = greedy_minimize(
                original,
                evidence,
                self.reducers(),
                self.execute,
                max_executions=config.max_minimize_executions,
            )
            minimized = shrunk.candidate
            evidence = shrunk.evidence
            reductions = shrunk.reductions
            self.metrics.inc("attack.reductions_accepted", len(reductions))

        # Determinism check: the minimized schedule must replay to the
        # same violation (time + digest) and the same final system digest.
        replay_evidence = self.execute(minimized, trace=config.trace)
        replay = {
            "verified": (
                replay_evidence is not None
                and replay_evidence.record.sim_time == evidence.record.sim_time
                and replay_evidence.record.state_digest
                == evidence.record.state_digest
                and replay_evidence.final_digest == evidence.final_digest
            ),
            "sim_time": (
                replay_evidence.record.sim_time if replay_evidence else None
            ),
            "state_digest": (
                replay_evidence.record.state_digest if replay_evidence else None
            ),
            "final_state_digest": (
                replay_evidence.final_digest if replay_evidence else None
            ),
        }

        report = AttackReport(
            system=config.system,
            property_id=config.property_id,
            found=True,
            mode=config.mode,
            seed=config.seed,
            attack_seed=original.seed,
            nodes=self.nodes,
            duration=self.duration,
            attempts=hunt.attempts,
            executions=self._executions(),
            invocation=invocation,
            original_schedule=original,
            minimized_schedule=minimized,
            reductions=reductions,
            violation=evidence.record.to_dict(),
            violation_count=evidence.count,
            final_state_digest=evidence.final_digest,
            replay=replay,
            metrics=self.metrics.snapshot(),
        )
        return AttackResult(
            found=True,
            report=report,
            schedule=minimized,
            evidence=evidence,
            run_report=evidence.run_report,
        )

    def _executions(self) -> int:
        return self.metrics.counter("attack.executions").value


def find_attack(config: AttackConfig) -> AttackResult:
    """Run the full hunt → minimize → replay → report pipeline."""
    return _AttackRunner(config).run()
