"""Consequence prediction (Figure 8) — the paper's key algorithm.

Consequence prediction is a breadth-first search over global states, like
the exhaustive baseline of Figure 5, with one crucial difference: internal
actions (timers, application calls, resets — the ``HA`` handlers) of a node
are explored *only when the node's local state has not been seen before* in
this search (the ``localExplored`` test, Figure 8 line 17).  Message
handlers are always explored for matching in-flight messages.

The effect is that the search follows causally related chains of events —
an action that changes a node's state enables that node's local actions to
be explored once in the new state — while pruning the interleavings of
independent local actions that make exhaustive search intractable at
runtime.  Bugs it reports are real with respect to the explored model
(unlike over-approximating analyses) because every reported path is an
actual sequence of handler executions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Sequence

from ..mc.global_state import GlobalState
from ..properties import SafetyProperty, check_all
from ..mc.search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from ..mc.transition import TransitionSystem
from ..runtime.events import Event
from ..runtime.serialization import freeze
from ..runtime.simulator import FilterAction

#: Optional per-event steering hook used when vetting candidate event
#: filters: returns the filter action to apply to a matching event, or None
#: to execute the event normally.
EventFilterFn = Callable[[Event], Optional[FilterAction]]


def consequence_prediction(
    system: TransitionSystem,
    current_state: GlobalState,
    properties: Sequence[SafetyProperty],
    budget: Optional[SearchBudget] = None,
    *,
    event_filter: Optional[EventFilterFn] = None,
) -> SearchResult:
    """Run consequence prediction from ``current_state``.

    Parameters
    ----------
    system:
        Transition system for the protocol under test.
    current_state:
        The live state the search starts from — in deployment this is the
        consistent neighbourhood snapshot collected by the checkpoint
        manager, not the initial system state.
    properties:
        Safety properties whose future violations should be predicted.
    budget:
        Stop criterion; runtime deployments use small state budgets so the
        prediction completes in the time it takes the real system to take a
        few steps.
    event_filter:
        Optional steering hook: events for which it returns a drop action are
        consumed without running their handler (with an optional connection
        reset towards the sender).  This is how CrystalBall re-checks the
        consequences of a candidate event filter before installing it
        (Section 3.3, "Ensuring Safety of Event Filter Actions").

    Returns
    -------
    SearchResult
        Predicted violations, each with the event path that reaches it, plus
        search statistics (states visited, depth, memory — Figures 15/16).
    """
    budget = budget or SearchBudget()
    stats = SearchStats()
    violations: list[PredictedViolation] = []
    # Report each (property, node) combination once per search run: the
    # first (shallowest) state that exhibits it.  Without this, a violation
    # already present in the start state would be re-reported in every
    # explored state, drowning genuinely new predictions.
    reported: set[tuple] = set()

    explored: set[int] = set()
    # hash(n, s) entries: node-local states whose internal actions were
    # already expanded (Figure 8, ``localExplored``).
    local_explored: set[int] = set()
    # Hashes of states already sitting in the frontier: successors reachable
    # from several parents in one wave are enqueued only once.
    queued: set[int] = set()

    frontier: deque[tuple[GlobalState, int, tuple]] = deque()
    frontier.append((current_state, 0, ()))
    queued.add(current_state.state_hash())
    stats.frontier_bytes = current_state.size_bytes()
    stats.peak_memory_bytes = stats.frontier_bytes

    while frontier and not budget.exhausted(stats):
        state, depth, path = frontier.popleft()
        stats.frontier_bytes -= state.size_bytes()
        state_hash = state.state_hash()
        if state_hash in explored:
            stats.duplicate_states += 1
            continue
        explored.add(state_hash)
        if budget.record_visited_hashes:
            stats.note_visited_hash(state_hash)
        stats.explored_hash_bytes = 8 * len(explored)
        stats.record_visit(depth)

        for violation in check_all(properties, state):
            key = (violation.property_name, violation.node)
            if key in reported:
                continue
            reported.add(key)
            violations.append(
                PredictedViolation(violation=violation, path=path,
                                   depth=depth, state_hash=state_hash)
            )
        if violations and budget.stop_at_first_violation:
            break

        if not budget.depth_allowed(depth + 1):
            continue

        events = list(system.network_events(state))
        for addr in sorted(state.nodes):
            local_hash = hash((freeze(addr), state.nodes[addr].signature()))
            if local_hash in local_explored:
                stats.internal_actions_skipped += len(
                    system.internal_events(state, addr))
                continue
            events.extend(system.internal_events(state, addr))
            local_explored.add(local_hash)

        for event in events:
            action = event_filter(event) if event_filter is not None else None
            if action in (FilterAction.DROP, FilterAction.DROP_AND_RESET):
                next_state = system.apply_filtered(
                    state, event,
                    reset_connection=action is FilterAction.DROP_AND_RESET)
            else:
                next_state = system.apply(state, event)
            stats.transitions_applied += 1
            next_hash = next_state.state_hash()
            if next_hash in explored or next_hash in queued:
                stats.duplicate_states += 1
                continue
            queued.add(next_hash)
            frontier.append((next_state, depth + 1, path + (event,)))
            stats.states_enqueued += 1
            stats.frontier_bytes += next_state.size_bytes()
            stats.peak_memory_bytes = max(stats.peak_memory_bytes,
                                          stats.frontier_bytes + stats.explored_hash_bytes)

    stats.touch_clock()
    return SearchResult(violations=violations, stats=stats, start_state=current_state)
