"""The CrystalBall controller (Section 3, Figure 7).

One controller instance is attached to every CrystalBall-enabled node.  It
implements the runtime's :class:`~repro.runtime.simulator.NodeHook`
interface and ties together all the pieces:

* the **checkpoint manager**: periodic local checkpoints, forced checkpoints
  driven by the logical clock, neighbourhood snapshot gathering over
  control-plane messages, storage quotas and bandwidth accounting;
* the **model checker**: replaying previously discovered error paths, then
  running consequence prediction on the latest consistent snapshot;
* **deep online debugging**: recording predicted violations;
* **execution steering**: deriving event filters from predictions, vetting
  them, installing them into the runtime, and removing them after every
  model-checking run;
* the **immediate safety check** fallback.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..mc.global_state import GlobalState
from ..mc.parallel import SearchKind, make_engine, run_portfolio
from ..mc.search import PredictedViolation, SearchBudget, SearchResult
from ..properties import Property, SafetyProperty, safety_properties
from ..mc.transition import TransitionConfig, TransitionSystem
from ..runtime.address import Address
from ..runtime.events import Event
from ..runtime.messages import Message, Transport
from ..runtime.protocol import Protocol
from ..runtime.simulator import FilterAction, SimNode, Simulator
from .checkpoint import Checkpoint, CheckpointStore, PeerTransferCache
from .event_filter import EventFilter
from .immediate import ImmediateSafetyCheck
from .replay import replay_error_path
from .snapshot import NeighborhoodSnapshot, SnapshotGather
from .steering import evaluate_violation

#: Control-plane message types used by the checkpoint manager.
CHECKPOINT_REQUEST = "_cb_checkpoint_request"
CHECKPOINT_RESPONSE = "_cb_checkpoint_response"
CHECKPOINT_NEGATIVE = "_cb_checkpoint_negative"


class Mode(enum.Enum):
    """Operating modes of CrystalBall (Section 3 and the evaluation)."""

    OFF = "off"
    #: Only report predicted violations (deep online debugging).
    DEBUG = "debug"
    #: Predict violations and steer execution away from them.
    STEERING = "steering"
    #: Only the immediate safety check, no consequence prediction
    #: (the middle configuration of Section 5.4.1).
    ISC_ONLY = "isc-only"


@dataclass(frozen=True)
class CheckingPolicy:
    """Which rounds a node runs the full snapshot + model-check cycle.

    Sampled deep checking, straight from the paper's deployment story
    (Section 4): only a rotating subset of nodes runs the full CrystalBall
    checker each round while every node keeps the cheap incremental
    monitor.  With ``period == n`` each node deep-checks every n-th round;
    the seeded phase assignment spreads the duty so roughly ``1/n`` of the
    nodes check in any given round, and off-duty controllers schedule no
    wakeups at all (the O(active) property).  Rotation is derived from a
    stable digest of ``(seed, node address)``, so it is bit-reproducible
    per seed regardless of ``PYTHONHASHSEED`` or attach order.

    ``period == 1`` — the default — is the classic every-node-every-round
    behaviour and is bit-identical to the pre-policy runtime.
    """

    period: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("CheckingPolicy.period must be >= 1")

    def phase(self, addr: Address) -> int:
        """This node's deep-check round offset in ``[0, period)``."""
        if self.period <= 1:
            return 0
        digest = hashlib.sha1(
            f"{self.seed}:{addr}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.period

    def checks_in_round(self, addr: Address, round_index: int) -> bool:
        """Whether ``addr`` deep-checks in round ``round_index`` (0-based)."""
        return round_index % self.period == self.phase(addr)


@dataclass
class CrystalBallConfig:
    """Tunable parameters of one controller."""

    mode: Mode = Mode.DEBUG
    #: Budget for each consequence-prediction run.
    search_budget: SearchBudget = field(
        default_factory=lambda: SearchBudget(max_states=2000, max_depth=8))
    #: Budget for filter-safety re-checks.
    safety_budget: SearchBudget = field(
        default_factory=lambda: SearchBudget(max_states=300, max_depth=6,
                                             stop_at_first_violation=True))
    transition: TransitionConfig = field(default_factory=TransitionConfig)
    #: Search engine executing consequence prediction: ``"serial"`` (the
    #: default, inline single-threaded search), ``"parallel"`` (sharded
    #: frontier over one worker per CPU) or ``"parallel:N"``.  An already
    #: built :class:`~repro.mc.parallel.SearchEngine` is also accepted.
    engine: str = "serial"
    #: Race exhaustive search, consequence prediction and random walks from
    #: every snapshot instead of running consequence prediction alone.
    portfolio_mode: bool = False
    #: Number of seeded random walks in a portfolio run.
    portfolio_walks: int = 2
    #: Shared wall-clock deadline for one portfolio run (seconds).
    portfolio_wall_clock: Optional[float] = 5.0
    checkpoint_quota: int = 16
    #: Outbound bandwidth limit for checkpoint traffic, bytes per tick
    #: (None = unlimited; Section 3.1 "Managing Bandwidth Consumption").
    checkpoint_bandwidth_limit: Optional[int] = None
    #: Enable the immediate safety check fallback.
    immediate_check: bool = True
    #: Vet filters with a consequence-prediction run before installing them.
    check_filter_safety: bool = True
    #: Maximum error paths remembered for replay.
    max_remembered_paths: int = 32
    #: When a neighbour does not answer a checkpoint request (partition,
    #: failure), fall back to the most recent checkpoint previously received
    #: from it instead of dropping it from the snapshot.  Slightly stale
    #: state is preferable to a blind spot; the paper attributes its Paxos
    #: false negatives to exactly such missing checkpoints.
    reuse_cached_checkpoints: bool = True
    #: Sampled deep checking (see :class:`CheckingPolicy`).  The default
    #: every-round policy is bit-identical to the pre-policy runtime.
    checking: CheckingPolicy = field(default_factory=CheckingPolicy)
    #: Charge checkpoint responses at delta-encoded cost: a peer holding
    #: the previous checkpoint only pays for the changed state fields, so
    #: control-plane bytes stay flat as node count grows.  Off by default
    #: because it changes the byte accounting of existing runs.
    delta_checkpoints: bool = False
    #: Fan snapshot requests out as one batched UDP delivery plan instead
    #: of a TCP heap entry per neighbour.  Off by default: UDP requests may
    #: be lost (an incomplete snapshot rather than a retry), which is the
    #: scale trade-off, not the 24-node semantics.
    batched_control_plane: bool = False

    def copy(self) -> "CrystalBallConfig":
        """Per-controller copy: budgets and transition config are mutable
        and must never be shared between nodes (the engine may be)."""
        return replace(
            self,
            search_budget=replace(self.search_budget),
            safety_budget=replace(self.safety_budget),
            transition=replace(self.transition),
        )


@dataclass
class ControllerStats:
    """Counters reported in Sections 5.4 and 5.5."""

    ticks: int = 0
    model_checker_runs: int = 0
    snapshots_collected: int = 0
    incomplete_snapshots: int = 0
    checkpoints_taken: int = 0
    forced_checkpoints: int = 0
    checkpoint_bytes_sent: int = 0
    checkpoint_requests_sent: int = 0
    checkpoint_responses_sent: int = 0
    negative_responses_sent: int = 0
    violations_predicted: int = 0
    distinct_violations: set[str] = field(default_factory=set)
    steering_modified_behavior: int = 0
    steering_unhelpful: int = 0
    filters_installed: int = 0
    filters_triggered: int = 0
    isc_checks: int = 0
    isc_blocks: int = 0
    replayed_paths: int = 0
    replay_reproduced: int = 0

    def as_dict(self) -> dict:
        """The complete stats surface, JSON-ready (sets become sorted lists)."""
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        data["distinct_violations"] = sorted(data["distinct_violations"])
        return data


class CrystalBallController:
    """Per-node CrystalBall controller; implements the runtime NodeHook."""

    def __init__(
        self,
        addr: Address,
        protocol: Protocol,
        properties: Sequence[Property],
        config: Optional[CrystalBallConfig] = None,
    ) -> None:
        self.addr = addr
        self.protocol = protocol
        # The model checker and ISC evaluate predicates over single global
        # states; liveness properties only exist for the live monitor and
        # are dropped here.
        self.properties: list[SafetyProperty] = safety_properties(properties)
        self.config = config or CrystalBallConfig()
        self._severities = {p.name: p.severity for p in self.properties}

        self.system = TransitionSystem(protocol, self.config.transition)
        self.engine = make_engine(self.config.engine)
        #: wakeup spacing; set from the simulator's tick interval at attach.
        self._wakeup_interval = 10.0 * self.config.checking.period
        self.store = CheckpointStore(quota=self.config.checkpoint_quota)
        self.transfer_cache = PeerTransferCache()
        self.isc = ImmediateSafetyCheck(self.system, self.properties)

        self.stats = ControllerStats()
        self.filters: list[EventFilter] = []
        self.known_error_paths: list[tuple[Event, ...]] = []
        self.predicted: list[PredictedViolation] = []
        self.last_snapshot: Optional[NeighborhoodSnapshot] = None
        self.last_result: Optional[SearchResult] = None
        self._pending_gather: Optional[SnapshotGather] = None
        #: most recent checkpoint received from each peer (possibly stale),
        #: used to fill in snapshot members that did not answer in time.
        self.peer_checkpoints: dict[Address, Checkpoint] = {}

    # ------------------------------------------------------------------ NodeHook

    def on_attach(self, sim: Simulator, node: SimNode) -> None:
        """Arm this controller's own wakeup schedule (O(active) scheduling).

        With the default every-round :class:`CheckingPolicy` this
        reproduces the legacy polled tick bit for bit: the first wakeup
        fires one tick interval after attach and each round re-arms after
        its work, exactly where the old ``tick`` dispatch allocated its
        heap entries.  With a sampled policy the first wakeup is deferred
        to this node's phase and later wakeups skip the rounds the node is
        off duty — a sleeping controller holds no heap entry and costs no
        scheduler cycles, yet still answers peers' checkpoint requests on
        demand (delivery-driven, not tick-driven).
        """
        self._wakeup_interval = sim.tick_interval * self.config.checking.period
        phase = self.config.checking.phase(self.addr)
        sim.schedule_at(sim.now + sim.tick_interval * (phase + 1),
                        self._wakeup)

    def _wakeup(self, sim: Simulator) -> None:
        # Mirrors the legacy tick dispatch: a detached or superseded hook
        # stops running, a dead node skips the round but keeps its wakeup
        # armed so a revived node resumes checking.
        node = sim.nodes.get(self.addr)
        if node is None:
            return
        if node.alive and node.hook is self:
            self.on_tick(sim, node)
        if node.hook is self:
            sim.schedule_at(sim.now + self._wakeup_interval, self._wakeup)

    def on_tick(self, sim: Simulator, node: SimNode) -> None:
        """Periodic controller activity: finalise the previous snapshot
        round, run the model checker on it, and start a new round."""
        self.stats.ticks += 1
        tick_started = time.perf_counter()

        local = self._take_checkpoint(sim, node, node.clock.advance())

        if self._pending_gather is not None:
            self._finalize_gather(sim, node, local)

        self._start_gather(sim, node, local)
        if self.config.checking.period > 1:
            # Under sampling the next on-duty wakeup is a full period away
            # — far too late to close this round's gather.  Finalise it
            # one tick from now instead, once the responses are in.
            sim.schedule_at(sim.now + sim.tick_interval,
                            self._finalize_wakeup)
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("controller.ticks")
            sim.obs.metrics.observe(
                "controller.tick_seconds",
                time.perf_counter() - tick_started)

    def _finalize_wakeup(self, sim: Simulator) -> None:
        node = sim.nodes.get(self.addr)
        if (node is None or not node.alive or node.hook is not self
                or self._pending_gather is None):
            return
        self._finalize_gather(
            sim, node, self._take_checkpoint(sim, node, node.clock.advance()))

    def _finalize_gather(self, sim: Simulator, node: SimNode,
                         local: Checkpoint) -> None:
        """Close the pending gather into a snapshot and model-check it."""
        snapshot = NeighborhoodSnapshot.from_gather(
            self._pending_gather, local, at_time=sim.now)
        if self._pending_gather.missing or self._pending_gather.negative:
            self.stats.incomplete_snapshots += 1
        if self.config.reuse_cached_checkpoints:
            for missing in list(snapshot.missing):
                cached = self.peer_checkpoints.get(missing)
                if cached is not None:
                    snapshot.checkpoints[missing] = cached
            snapshot.missing = frozenset(
                snapshot.missing - set(snapshot.checkpoints))
        self.last_snapshot = snapshot
        self.stats.snapshots_collected += 1
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("controller.snapshots_collected")
            if snapshot.missing:
                sim.obs.metrics.inc("controller.incomplete_snapshots")
        if sim.obs.tracer is not None:
            sim.obs.tracer.snapshot(
                sim.now, node.addr, snapshot.checkpoint_number,
                len(snapshot.checkpoints), len(snapshot.missing))
        if self.config.mode in (Mode.DEBUG, Mode.STEERING):
            self._run_model_checker(sim, node, snapshot)
        self._pending_gather = None

    def filter_event(self, sim: Simulator, node: SimNode, event: Event) -> FilterAction:
        if self.config.mode is not Mode.STEERING:
            return FilterAction.ALLOW
        for event_filter in self.filters:
            if event_filter.matches(event):
                event_filter.times_triggered += 1
                self.stats.filters_triggered += 1
                action = event_filter.decision(event)
                if sim.obs.metrics is not None:
                    sim.obs.metrics.inc("controller.filters_triggered")
                if sim.obs.tracer is not None:
                    sim.obs.tracer.filter_trigger(
                        sim.now, node.addr, event_filter.describe(),
                        action.value, event.describe())
                return action
        return FilterAction.ALLOW

    def immediate_safety_check(self, sim: Simulator, node: SimNode, event: Event) -> bool:
        if self.config.mode is Mode.OFF or not self.config.immediate_check:
            return True
        if self.config.mode is Mode.DEBUG:
            return True
        self.stats.isc_checks += 1
        neighborhood = (self.last_snapshot.to_global_state()
                        if self.last_snapshot is not None else None)
        outcome = self.isc.check(node.addr, node.state, node.timer_names(),
                                 event, neighborhood=neighborhood)
        if not outcome.allowed:
            self.stats.isc_blocks += 1
        return outcome.allowed

    def handle_control_message(self, sim: Simulator, node: SimNode, message: Message) -> None:
        if message.mtype == CHECKPOINT_REQUEST:
            self._answer_checkpoint_request(sim, node, message)
        elif message.mtype == CHECKPOINT_RESPONSE:
            self._record_checkpoint_response(message)
        elif message.mtype == CHECKPOINT_NEGATIVE:
            self._record_negative_response(message)

    def on_event_executed(self, sim: Simulator, node: SimNode, event: Event) -> None:
        return None

    def on_forced_checkpoint(self, sim: Simulator, node: SimNode) -> None:
        self.stats.forced_checkpoints += 1
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("controller.forced_checkpoints")
        self._take_checkpoint(sim, node, node.clock.value, forced=True)

    # --------------------------------------------------------------- checkpointing

    def _take_checkpoint(self, sim: Simulator, node: SimNode,
                         checkpoint_number: int, *,
                         forced: bool = False) -> Checkpoint:
        checkpoint = Checkpoint(node=node.addr,
                                checkpoint_number=checkpoint_number,
                                state=node.state.clone(),
                                timers=node.timer_names())
        self.store.record(checkpoint)
        self.stats.checkpoints_taken += 1
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("controller.checkpoints_taken")
        if sim.obs.tracer is not None:
            sim.obs.tracer.checkpoint(sim.now, node.addr, checkpoint_number,
                                      forced=forced)
        return checkpoint

    def _start_gather(self, sim: Simulator, node: SimNode, local: Checkpoint) -> None:
        neighbors = [n for n in self.protocol.neighbors(node.state) if n != node.addr]
        gather = SnapshotGather(origin=node.addr,
                                checkpoint_number=local.checkpoint_number,
                                expected=frozenset(neighbors),
                                started_at=sim.now)
        self._pending_gather = gather
        transport = (Transport.UDP if self.config.batched_control_plane
                     else Transport.TCP)
        requests = [
            Message(
                mtype=CHECKPOINT_REQUEST,
                src=node.addr,
                dst=neighbor,
                payload={"cn": local.checkpoint_number},
                transport=transport,
                control=True,
            )
            for neighbor in neighbors
        ]
        if self.config.batched_control_plane:
            # One delivery plan for the whole fan-out: a single heap entry
            # regardless of neighbourhood size.
            sim.transmit_batch(node.addr, requests)
        else:
            for request in requests:
                sim.transmit(node.addr, request)
        self.stats.checkpoint_requests_sent += len(requests)

    def _answer_checkpoint_request(self, sim: Simulator, node: SimNode,
                                   message: Message) -> None:
        requested = int(message.get("cn", 0))
        requester = message.src

        if self.config.checkpoint_bandwidth_limit is not None:
            budget = self.config.checkpoint_bandwidth_limit * max(self.stats.ticks, 1)
            if self.stats.checkpoint_bytes_sent >= budget:
                self._send_negative(sim, node, requester)
                return

        if node.clock.observe_request(requested):
            checkpoint = self._take_checkpoint(sim, node, requested)
        else:
            checkpoint = self.store.respond(requested)
        if checkpoint is None:
            self._send_negative(sim, node, requester)
            return

        cost = self.transfer_cache.transfer_cost(
            requester, checkpoint, delta=self.config.delta_checkpoints)
        self.stats.checkpoint_bytes_sent += cost
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc("controller.checkpoint_bytes_sent", cost)
            sim.obs.metrics.observe("controller.checkpoint_response_bytes",
                                    cost)
        response = Message(
            mtype=CHECKPOINT_RESPONSE,
            src=node.addr,
            dst=requester,
            payload={
                "cn": checkpoint.checkpoint_number,
                "state": checkpoint.state.clone(),
                "timers": checkpoint.timers,
                "bytes": cost,
            },
            transport=Transport.TCP,
            control=True,
        )
        sim.transmit(node.addr, response)
        self.stats.checkpoint_responses_sent += 1

    def _send_negative(self, sim: Simulator, node: SimNode, requester: Address) -> None:
        response = Message(
            mtype=CHECKPOINT_NEGATIVE,
            src=node.addr,
            dst=requester,
            payload={"cn": node.clock.value},
            transport=Transport.TCP,
            control=True,
        )
        sim.transmit(node.addr, response)
        self.stats.negative_responses_sent += 1

    def _record_checkpoint_response(self, message: Message) -> None:
        if self._pending_gather is None:
            return
        checkpoint = Checkpoint(node=message.src,
                                checkpoint_number=int(message.get("cn", 0)),
                                state=message.get("state"),
                                timers=frozenset(message.get("timers", ())))
        self.peer_checkpoints[message.src] = checkpoint
        self._pending_gather.record_response(checkpoint)

    def _record_negative_response(self, message: Message) -> None:
        if self._pending_gather is None:
            return
        self._pending_gather.record_negative(message.src, int(message.get("cn", 0)))

    # -------------------------------------------------------------- model checking

    def _run_model_checker(self, sim: Simulator, node: SimNode,
                           snapshot: NeighborhoodSnapshot) -> None:
        self.stats.model_checker_runs += 1
        mc_started = time.perf_counter()
        start_state = snapshot.to_global_state()
        if sim.obs.metrics is not None:
            # Engines that profile themselves (ParallelEngine) report into
            # the run's registry; others simply ignore the attribute.
            setattr(self.engine, "metrics", sim.obs.metrics)

        # Filters are removed after every model-checking run (Section 3.3);
        # previously discovered error paths are replayed first and, if the
        # problem reappears, the filter is immediately reinstalled.
        self.filters = []
        reproduced: list[PredictedViolation] = []
        for path in list(self.known_error_paths):
            self.stats.replayed_paths += 1
            replay = replay_error_path(self.system, start_state, path, self.properties)
            if replay.reproduced:
                self.stats.replay_reproduced += 1
                reproduced.append(
                    PredictedViolation(violation=replay.violations[0], path=path,
                                       depth=replay.steps_executed,
                                       state_hash=replay.final_state.state_hash()))

        if self.config.portfolio_mode:
            portfolio = run_portfolio(
                self.system, start_state, self.properties,
                self.config.search_budget,
                wall_clock_seconds=self.config.portfolio_wall_clock,
                walks=self.config.portfolio_walks)
            result = portfolio.merged_result(start_state)
        else:
            result = self.engine.run(self.system, start_state, self.properties,
                                     self.config.search_budget,
                                     kind=SearchKind.CONSEQUENCE)
        self.last_result = result

        # Violations with an empty path are already present in the snapshot
        # itself — they are live inconsistencies, not predictions, and there
        # is no handler invocation left to steer around.
        future = [v for v in result.violations if v.path]
        all_violations = reproduced + future
        for violation in all_violations:
            self.stats.violations_predicted += 1
            self.stats.distinct_violations.add(violation.violation.property_name)
        self.predicted.extend(future)

        mc_wall = time.perf_counter() - mc_started
        if sim.obs.metrics is not None:
            metrics = sim.obs.metrics
            metrics.inc("mc.runs")
            metrics.inc("mc.states_visited", result.stats.states_visited)
            metrics.inc("mc.transitions_applied",
                        result.stats.transitions_applied)
            metrics.inc("mc.violations_predicted", len(all_violations))
            metrics.gauge("mc.max_depth_reached").update_max(
                result.stats.max_depth_reached)
            metrics.observe("controller.mc_run_seconds", mc_wall)
        if sim.obs.tracer is not None:
            engine_name = (self.config.engine
                           if isinstance(self.config.engine, str)
                           else type(self.engine).__name__)
            sim.obs.tracer.mc_run(
                sim.now, node.addr, engine=engine_name,
                states=result.stats.states_visited,
                transitions=result.stats.transitions_applied,
                depth=result.stats.max_depth_reached,
                violations=len(all_violations), wall=mc_wall)
            for violation in all_violations:
                name = violation.violation.property_name
                sim.obs.tracer.violation(
                    sim.now, node.addr, name,
                    self._severities.get(name, "error"), "predicted",
                    violation.violation.detail)

        for violation in future:
            if violation.path and violation.path not in self.known_error_paths:
                self.known_error_paths.append(violation.path)
        if len(self.known_error_paths) > self.config.max_remembered_paths:
            self.known_error_paths = self.known_error_paths[-self.config.max_remembered_paths:]

        if self.config.mode is Mode.STEERING:
            self._install_steering_filters(sim, node, start_state,
                                           all_violations)

    def _install_steering_filters(self, sim: Simulator, node: SimNode,
                                  start_state: GlobalState,
                                  violations: Sequence[PredictedViolation]) -> None:
        seen_filters: set[tuple] = set()
        for violation in violations:
            decision = evaluate_violation(
                node.addr, self.system, start_state, self.properties, violation,
                safety_budget=self.config.safety_budget,
                check_safety=self.config.check_filter_safety,
                expected_violations=violations,
            )
            if not decision.actionable:
                self.stats.steering_unhelpful += 1
                continue
            key = (decision.filter.message_type, decision.filter.message_src,
                   decision.filter.timer_name, decision.filter.app_call)
            if key in seen_filters:
                continue
            seen_filters.add(key)
            self.filters.append(decision.filter)
            self.stats.filters_installed += 1
            self.stats.steering_modified_behavior += 1
            if sim.obs.metrics is not None:
                sim.obs.metrics.inc("controller.filters_installed")
            if sim.obs.tracer is not None:
                sim.obs.tracer.filter_install(
                    sim.now, node.addr, decision.filter.describe(),
                    property_id=violation.violation.property_name,
                    path_len=len(violation.path))

    # ------------------------------------------------------------------- reporting

    def report(self) -> dict:
        """Summary used by examples and the benchmark harness.

        Emits the complete :class:`ControllerStats` surface (the historical
        ``snapshots`` / ``distinct_properties_violated`` aliases are kept for
        callers of the old, trimmed report).
        """
        stats = self.stats.as_dict()
        return {
            "node": str(self.addr),
            "mode": self.config.mode.value,
            **stats,
            "snapshots": stats["snapshots_collected"],
            "distinct_properties_violated": stats["distinct_violations"],
        }


def attach_crystalball(
    sim: Simulator,
    properties: Sequence[Property],
    *,
    config: Optional[CrystalBallConfig] = None,
    nodes: Optional[Sequence[Address]] = None,
) -> dict[Address, CrystalBallController]:
    """Attach a CrystalBall controller to every (or the given) node of ``sim``.

    Returns the controllers keyed by node address so callers can inspect
    per-node statistics after the run.
    """
    controllers: dict[Address, CrystalBallController] = {}
    targets = list(nodes) if nodes is not None else list(sim.nodes)
    for addr in targets:
        node = sim.nodes[addr]
        # Every controller gets its own config copy: sharing one mutable
        # CrystalBallConfig (and its SearchBudget instances) across nodes
        # would let one node's adjustments leak into all the others.
        controller_config = config.copy() if config is not None else CrystalBallConfig()
        controller = CrystalBallController(addr, node.protocol, properties,
                                           controller_config)
        controllers[addr] = controller
        sim.attach_hook(addr, controller)
    return controllers
