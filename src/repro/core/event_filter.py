"""Event filters — the mechanism execution steering installs into the
runtime (Sections 3.3 and 4, "Event Filtering for Execution steering").

A filter identifies the handler invocation to avoid: for network messages it
carries the message type, source and destination; for timer or application
events it carries the handler identity.  When a filter triggers, network
messages are dropped (optionally together with a TCP connection reset
towards the sender), while timer events are rescheduled rather than dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.address import Address
from ..runtime.events import AppEvent, Event, MessageEvent, TimerEvent
from ..runtime.simulator import FilterAction

_filter_ids = itertools.count(1)


@dataclass
class EventFilter:
    """A single installed corrective action."""

    #: Node the filter is installed on (filters are local to a node).
    node: Address
    action: FilterAction = FilterAction.DROP_AND_RESET
    #: Message filters: type plus source (destination is ``node``).
    message_type: Optional[str] = None
    message_src: Optional[Address] = None
    #: Timer / application-call filters.
    timer_name: Optional[str] = None
    app_call: Optional[str] = None
    #: Why the filter exists (the predicted violation), for reporting.
    reason: str = ""
    filter_id: int = field(default_factory=lambda: next(_filter_ids))
    times_triggered: int = 0

    def matches(self, event: Event) -> bool:
        """True when ``event`` is the handler invocation this filter blocks."""
        if event.node != self.node:
            return False
        if self.message_type is not None:
            if not isinstance(event, MessageEvent):
                return False
            if event.message.mtype != self.message_type:
                return False
            return self.message_src is None or event.message.src == self.message_src
        if self.timer_name is not None:
            return isinstance(event, TimerEvent) and event.timer == self.timer_name
        if self.app_call is not None:
            return isinstance(event, AppEvent) and event.call == self.app_call
        return False

    def decision(self, event: Event) -> FilterAction:
        """Filter decision for a matching event.

        Timer events are never dropped outright — they are rescheduled
        (DELAY) so liveness-critical periodic work eventually runs.
        """
        if isinstance(event, TimerEvent):
            return FilterAction.DELAY
        return self.action

    def describe(self) -> str:
        if self.message_type is not None:
            src = self.message_src if self.message_src is not None else "*"
            target = f"message {self.message_type} from {src}"
        elif self.timer_name is not None:
            target = f"timer '{self.timer_name}'"
        else:
            target = f"app call '{self.app_call}'"
        return f"filter#{self.filter_id} on {self.node}: {self.action.value} {target}"


def derive_filter(node: Address, event: Event, *, reason: str = "",
                  action: FilterAction = FilterAction.DROP_AND_RESET) -> Optional[EventFilter]:
    """Build the event filter that blocks ``event`` at ``node``.

    Returns ``None`` for events that cannot be usefully filtered (node
    resets, transport errors — those are environment actions, not handler
    invocations the runtime controls).
    """
    if event.node != node:
        return None
    if isinstance(event, MessageEvent):
        return EventFilter(node=node, action=action, reason=reason,
                           message_type=event.message.mtype,
                           message_src=event.message.src)
    if isinstance(event, TimerEvent):
        return EventFilter(node=node, action=FilterAction.DELAY, reason=reason,
                           timer_name=event.timer)
    if isinstance(event, AppEvent):
        return EventFilter(node=node, action=FilterAction.DROP, reason=reason,
                           app_call=event.call)
    return None
