"""Live property monitoring.

The evaluation needs to know how often the *deployed* system actually enters
an inconsistent state (e.g. "the system goes through a total of 121 states
that contain inconsistencies" when CrystalBall is not active,
Section 5.4.1).  :class:`LivePropertyMonitor` is a simulator observer that
checks the safety properties on the live global state after every executed
event and keeps counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..mc.global_state import GlobalState
from ..mc.properties import PropertyViolation, SafetyProperty, check_all
from ..runtime.events import Event
from ..runtime.simulator import SimNode, Simulator


@dataclass
class LivePropertyMonitor:
    """Counts inconsistent states reached by the live execution."""

    properties: Sequence[SafetyProperty]

    events_checked: int = 0
    inconsistent_states: int = 0
    violations_seen: list[PropertyViolation] = field(default_factory=list)
    distinct_properties: set[str] = field(default_factory=set)
    #: signatures of (property, node, detail) already counted, so a persistent
    #: inconsistency is not recounted on every single event.
    _active: set[tuple] = field(default_factory=set)

    def install(self, sim: Simulator) -> "LivePropertyMonitor":
        sim.add_observer(self)
        return self

    def __call__(self, sim: Simulator, node: SimNode, event: Event) -> None:
        self.events_checked += 1
        state = GlobalState.from_snapshot(
            {addr: s for addr, (s, _) in sim.node_states().items()},
            timers={addr: t for addr, (_, t) in sim.node_states().items()},
        )
        violations = check_all(self.properties, state)
        if violations:
            self.inconsistent_states += 1
        current: set[tuple] = set()
        for violation in violations:
            key = (violation.property_name, violation.node, violation.detail)
            current.add(key)
            if key not in self._active:
                self.violations_seen.append(violation)
                self.distinct_properties.add(violation.property_name)
        self._active = current

    @property
    def new_violations(self) -> int:
        """Number of distinct violation episodes observed."""
        return len(self.violations_seen)

    def report(self) -> dict:
        return {
            "events_checked": self.events_checked,
            "inconsistent_states": self.inconsistent_states,
            "distinct_violation_episodes": self.new_violations,
            "properties_violated": sorted(self.distinct_properties),
        }
