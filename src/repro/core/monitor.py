"""Live property monitoring.

The evaluation needs to know how often the *deployed* system actually enters
an inconsistent state (e.g. "the system goes through a total of 121 states
that contain inconsistencies" when CrystalBall is not active,
Section 5.4.1).  :class:`LivePropertyMonitor` is a simulator observer that
checks the properties on the live global state after every executed event
and keeps structured per-property accounting:

* **safety** properties are re-checked per event.  Node-scoped properties
  (``scope == "node"``: the check at a node reads only that node's local
  state) use an **incremental fast path**: only the *dirty* nodes — the
  node that executed the event, plus any node whose liveness/incarnation
  changed since the previous event — are re-checked, and every other
  node's result is served from the per-node cache.  Cross-node and global
  properties are always fully re-checked.  The incremental path produces
  bit-identical violation records to a full re-check (covered by tests
  over all four bundled systems) because both paths walk properties and
  nodes in the same order; it only skips re-computing checks whose inputs
  cannot have changed.
* **liveness** properties (bounded ``eventually`` / ``leads_to``
  obligations) are driven over simulated time through per-run trackers;
  :meth:`finalize` is called at the end of the run so deadlines that
  expired after the last event still count.

Violation *episodes* are keyed on ``(property, node)``: a persistent
violation whose free-form detail text drifts between events (a sorted
member list changing, say) is still one episode; the detail is payload on
the emitted :class:`~repro.properties.ViolationRecord`, never part of the
episode identity.  An episode ends when the key stops violating and a
later recurrence opens a new episode.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..mc.global_state import GlobalState
from ..obs.context import ObsContext
from ..properties import (
    LivenessProperty,
    NodeScopedProperty,
    Property,
    PropertyViolation,
    SafetyProperty,
    ViolationRecord,
    state_digest,
)
from ..runtime.address import Address
from ..runtime.events import Event
from ..runtime.simulator import SimNode, Simulator

#: Maximum episode records carried verbatim in :meth:`report` output.
EPISODE_REPORT_LIMIT = 200


class LivePropertyMonitor:
    """Counts inconsistent states and violation episodes in a live run."""

    def __init__(
        self,
        properties: Sequence[Property],
        *,
        incremental: bool = True,
        episode_report_limit: int = EPISODE_REPORT_LIMIT,
    ) -> None:
        self.properties = list(properties)
        self.incremental = incremental
        self.episode_report_limit = episode_report_limit

        self._safety: list[SafetyProperty] = [
            prop for prop in self.properties if isinstance(prop, SafetyProperty)
        ]
        self._trackers = [
            (prop, prop.make_tracker())
            for prop in self.properties
            if isinstance(prop, LivenessProperty)
        ]
        self._severities = {prop.name: prop.severity for prop in self.properties}

        self.events_checked = 0
        self.inconsistent_states = 0
        self.liveness_violations = 0
        #: one legacy PropertyViolation per episode (compat surface).
        self.violations_seen: list[PropertyViolation] = []
        #: structured record per episode, in order of discovery.
        self.records: list[ViolationRecord] = []
        self.distinct_properties: set[str] = set()

        #: episode keys currently violating: (property id, node or None).
        self._active: set[tuple[str, Optional[Address]]] = set()
        #: incremental cache: (property id, node) -> violation details.
        self._local_cache: dict[tuple[str, Address], tuple[str, ...]] = {}
        #: node liveness fingerprint at the previous event: addr -> incarnation.
        self._known: dict[Address, int] = {}
        self._finalized = False
        #: observability for the hosting run; replaced by install().
        self._obs = ObsContext()

    # ------------------------------------------------------------- wiring

    def install(self, sim: Simulator) -> "LivePropertyMonitor":
        sim.add_observer(self)
        self._obs = sim.obs
        for _, tracker in self._trackers:
            # Run-start-relative liveness windows open now, not at the
            # first executed event (which may come arbitrarily late).
            tracker.anchor(sim.now)
        return self

    # ----------------------------------------------------------- checking

    def _is_fast_path(self, prop: SafetyProperty) -> bool:
        return isinstance(prop, NodeScopedProperty) and prop.scope == "node"

    def _dirty_nodes(
        self, sim: Simulator, state: GlobalState, event: Optional[Event]
    ) -> set[Address]:
        """Nodes whose node-scoped checks must be recomputed this event."""
        current: dict[Address, int] = {}
        dirty: set[Address] = set()
        for addr in state.nodes:
            sim_node = sim.nodes.get(addr)
            incarnation = sim_node.incarnation if sim_node is not None else -1
            current[addr] = incarnation
            if self._known.get(addr) != incarnation:
                dirty.add(addr)
        departed = set(self._known) - set(current)
        if departed:
            self._local_cache = {
                key: details
                for key, details in self._local_cache.items()
                if key[1] not in departed
            }
        if event is not None and event.node in state.nodes:
            dirty.add(event.node)
        self._known = current
        return dirty

    def _safety_violations(
        self, state: GlobalState, dirty: Optional[set[Address]]
    ) -> list[PropertyViolation]:
        """Current safety violations, in deterministic property-major order.

        ``dirty=None`` means re-check everything (the full path); otherwise
        node-scoped properties are only recomputed at the dirty nodes and
        served from the cache elsewhere.
        """
        found: list[PropertyViolation] = []
        computed = cached = 0
        for prop in self._safety:
            if self._is_fast_path(prop):
                assert isinstance(prop, NodeScopedProperty)
                for addr in state.nodes:
                    key = (prop.name, addr)
                    if dirty is None or addr in dirty or key not in self._local_cache:
                        details = tuple(
                            violation.detail
                            for violation in prop.violations_at(state, addr)
                        )
                        self._local_cache[key] = details
                        computed += 1
                    else:
                        cached += 1
                    for detail in self._local_cache[key]:
                        found.append(
                            PropertyViolation(
                                property_name=prop.name, node=addr, detail=detail
                            )
                        )
            else:
                found.extend(prop.violations(state))
        metrics = self._obs.metrics
        if metrics is not None and (computed or cached):
            metrics.inc("monitor.node_checks_computed", computed)
            metrics.inc("monitor.node_checks_cached", cached)
        return found

    def _open_episode(
        self,
        state: GlobalState,
        now: float,
        property_name: str,
        node: Optional[Address],
        detail: str,
        kind: str,
    ) -> None:
        record = ViolationRecord(
            property_id=property_name,
            severity=self._severities.get(property_name, "error"),
            node=str(node) if node is not None else None,
            detail=detail,
            sim_time=now,
            episode=len(self.records),
            state_digest=state_digest(state),
            kind=kind,
        )
        self.records.append(record)
        self.violations_seen.append(
            PropertyViolation(property_name=property_name, node=node, detail=detail)
        )
        self.distinct_properties.add(property_name)
        if self._obs.metrics is not None:
            self._obs.metrics.inc("monitor.violation_episodes")
        if self._obs.tracer is not None:
            self._obs.tracer.violation(
                now, node, property_name, record.severity, kind, detail,
                digest=record.state_digest,
            )

    def __call__(self, sim: Simulator, node: SimNode, event: Event) -> None:
        self.events_checked += 1
        if self._obs.metrics is not None:
            self._obs.metrics.inc("monitor.events_checked")
        if not self._safety and not self._trackers:
            # Nothing to check: skip the O(nodes) global-state build so a
            # property-free run costs O(1) per event (scale runs rely on
            # this — a 1k-node deployment must not pay a 1k-entry dict
            # copy per delivered message).
            return
        live = sim.node_states()
        state = GlobalState.from_snapshot(
            {addr: s for addr, (s, _) in live.items()},
            timers={addr: t for addr, (_, t) in live.items()},
        )
        dirty = self._dirty_nodes(sim, state, event) if self.incremental else None
        violations = self._safety_violations(state, dirty)
        if violations:
            self.inconsistent_states += 1
            if self._obs.metrics is not None:
                self._obs.metrics.inc("monitor.inconsistent_states")

        current: set[tuple[str, Optional[Address]]] = set()
        for violation in violations:
            key = (violation.property_name, violation.node)
            if key not in current and key not in self._active:
                self._open_episode(
                    state,
                    sim.now,
                    violation.property_name,
                    violation.node,
                    violation.detail,
                    kind="safety",
                )
            current.add(key)
        self._active = current

        for prop, tracker in self._trackers:
            for failed_node, detail in tracker.observe(state, sim.now):
                self.liveness_violations += 1
                self._open_episode(
                    state, sim.now, prop.name, failed_node, detail, kind="liveness"
                )

    def finalize(self, now: float) -> None:
        """End of run: flush liveness obligations whose deadline passed.

        Uses an empty placeholder state for the digest (there is no "state
        that exhibited it" — the violation is the *absence* of a state).
        Idempotent; called by the live-run driver after the simulation.
        """
        if self._finalized:
            return
        self._finalized = True
        empty = GlobalState(nodes={})
        for prop, tracker in self._trackers:
            for failed_node, detail in tracker.finalize(now):
                self.liveness_violations += 1
                self._open_episode(
                    empty, now, prop.name, failed_node, detail, kind="liveness"
                )

    # ---------------------------------------------------------- reporting

    @property
    def new_violations(self) -> int:
        """Number of distinct violation episodes observed."""
        return len(self.violations_seen)

    def violations_by_property(self) -> dict[str, int]:
        """Episode count per property id, sorted by id."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.property_id] = counts.get(record.property_id, 0) + 1
        return dict(sorted(counts.items()))

    def by_severity(self) -> dict[str, int]:
        """Episode count per severity, sorted by severity name."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.severity] = counts.get(record.severity, 0) + 1
        return dict(sorted(counts.items()))

    def report(self) -> dict:
        limit = self.episode_report_limit
        return {
            "events_checked": self.events_checked,
            "inconsistent_states": self.inconsistent_states,
            "distinct_violation_episodes": self.new_violations,
            "properties_violated": sorted(self.distinct_properties),
            "violations_by_property": self.violations_by_property(),
            "by_severity": self.by_severity(),
            "liveness_violations": self.liveness_violations,
            "incremental": self.incremental,
            "episodes": [record.to_dict() for record in self.records[:limit]],
            "episodes_truncated": max(0, len(self.records) - limit),
        }
