"""Execution steering: choosing and vetting corrective actions (Section 3.3).

Given a predicted violation (an event path from the current snapshot to an
inconsistent state), steering picks the earliest point on the path where the
local node can intervene — its own handler invocation — and turns it into an
event filter.  Before installing the filter, CrystalBall re-runs consequence
prediction *with the filter's effect applied* to make sure the corrective
action itself does not lead to an inconsistency; if it cannot establish
that, it leaves the system to proceed as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..mc.global_state import GlobalState
from ..properties import SafetyProperty, check_all
from ..mc.search import PredictedViolation, SearchBudget
from ..mc.transition import TransitionSystem
from ..runtime.address import Address
from ..runtime.events import Event, MessageEvent, TimerEvent
from ..runtime.simulator import FilterAction
from .consequence import consequence_prediction
from .event_filter import EventFilter, derive_filter


@dataclass
class SteeringDecision:
    """Outcome of evaluating one predicted violation for steering."""

    violation: PredictedViolation
    filter: Optional[EventFilter]
    safe: bool
    reason: str

    @property
    def actionable(self) -> bool:
        return self.filter is not None and self.safe


def choose_steering_point(node: Address,
                          violation: PredictedViolation) -> Optional[Event]:
    """Pick the event on the violation path that ``node`` should block.

    Policy (Section 3.3): steer as early as possible, i.e. the first event on
    the path that is a handler invocation on ``node`` which the runtime can
    refuse (a message delivery, timer or application call — not a reset or a
    transport error, which are environment actions).
    """
    for event in violation.path:
        if event.node != node:
            continue
        if isinstance(event, (MessageEvent, TimerEvent)):
            return event
    return None


def check_filter_safety(
    system: TransitionSystem,
    snapshot_state: GlobalState,
    properties: Sequence[SafetyProperty],
    event_filter: EventFilter,
    *,
    budget: Optional[SearchBudget] = None,
    expected_violations: Sequence[PredictedViolation] = (),
) -> bool:
    """Re-check consequences with the filter's action applied.

    Starting from the snapshot state, consequence prediction is re-run with
    the candidate filter's effect applied to every matching event (the
    offending message is consumed unhandled and the connection with its
    sender is reset).  The filter is considered *unsafe* when this steered
    search uncovers a violation that is neither already present in the
    snapshot nor among the violations the unfiltered run predicted — i.e.
    when the corrective action itself introduces a new inconsistency
    (Section 3.3, "Ensuring Safety of Event Filter Actions").
    """
    budget = budget or SearchBudget(max_states=300, stop_at_first_violation=False)

    def steering_hook(event) -> Optional[FilterAction]:
        if event_filter.matches(event):
            return event_filter.decision(event)
        return None

    ignored = {(v.property_name, v.node)
               for v in check_all(properties, snapshot_state)}
    ignored |= {(v.violation.property_name, v.violation.node)
                for v in expected_violations}
    result = consequence_prediction(system, snapshot_state, properties, budget,
                                    event_filter=steering_hook)
    for predicted in result.violations:
        key = (predicted.violation.property_name, predicted.violation.node)
        if key not in ignored:
            return False
    return True


def evaluate_violation(
    node: Address,
    system: TransitionSystem,
    snapshot_state: GlobalState,
    properties: Sequence[SafetyProperty],
    violation: PredictedViolation,
    *,
    safety_budget: Optional[SearchBudget] = None,
    check_safety: bool = True,
    expected_violations: Sequence[PredictedViolation] = (),
) -> SteeringDecision:
    """Derive and vet the corrective action for one predicted violation."""
    steering_event = choose_steering_point(node, violation)
    if steering_event is None:
        return SteeringDecision(violation=violation, filter=None, safe=False,
                                reason="no local handler on the violation path")
    event_filter = derive_filter(node, steering_event,
                                 reason=str(violation.violation))
    if event_filter is None:
        return SteeringDecision(violation=violation, filter=None, safe=False,
                                reason="event cannot be filtered")
    if check_safety:
        safe = check_filter_safety(system, snapshot_state, properties,
                                   event_filter, budget=safety_budget,
                                   expected_violations=expected_violations)
    else:
        safe = True
    reason = "filter deemed safe" if safe else "filter action itself risks inconsistency"
    return SteeringDecision(violation=violation, filter=event_filter,
                            safe=safe, reason=reason)
