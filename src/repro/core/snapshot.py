"""Consistent neighbourhood snapshots (Section 3.1).

A snapshot is a set of checkpoints — one per neighbourhood member — that do
not violate the happens-before relationship, gathered by the checkpoint
manager at a common checkpoint number.  The gather is asynchronous: the
requesting node sends checkpoint requests, neighbours respond (positively or
negatively), and the snapshot is finalised at the next controller tick with
whatever checkpoints arrived; missing members are represented by the model
checker's dummy node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..mc.global_state import GlobalState
from ..runtime.address import Address
from .checkpoint import Checkpoint


@dataclass
class SnapshotGather:
    """An in-progress snapshot collection round."""

    origin: Address
    checkpoint_number: int
    expected: frozenset[Address]
    received: dict[Address, Checkpoint] = field(default_factory=dict)
    negative: dict[Address, int] = field(default_factory=dict)
    started_at: float = 0.0

    def record_response(self, checkpoint: Checkpoint) -> None:
        self.received[checkpoint.node] = checkpoint

    def record_negative(self, node: Address, current_cn: int) -> None:
        self.negative[node] = current_cn

    @property
    def complete(self) -> bool:
        return set(self.received) | set(self.negative) >= set(self.expected)

    @property
    def missing(self) -> frozenset[Address]:
        return frozenset(self.expected - set(self.received) - set(self.negative))

    def retry_checkpoint_number(self) -> Optional[int]:
        """If any neighbour answered negatively, the greatest checkpoint
        number it advertised — the number to use for the retry round
        (Section 3.1, "Managing Checkpoint Storage")."""
        if not self.negative:
            return None
        return max(self.negative.values())


@dataclass
class NeighborhoodSnapshot:
    """A finalised consistent snapshot of a node's neighbourhood."""

    origin: Address
    checkpoint_number: int
    checkpoints: dict[Address, Checkpoint]
    missing: frozenset[Address] = frozenset()
    collected_at: float = 0.0

    @classmethod
    def from_gather(cls, gather: SnapshotGather, local: Checkpoint,
                    at_time: float = 0.0) -> "NeighborhoodSnapshot":
        """Finalise a gather round, always including the local checkpoint."""
        checkpoints = dict(gather.received)
        checkpoints[local.node] = local
        return cls(
            origin=gather.origin,
            checkpoint_number=gather.checkpoint_number,
            checkpoints=checkpoints,
            missing=gather.missing | frozenset(gather.negative),
            collected_at=at_time,
        )

    @property
    def members(self) -> frozenset[Address]:
        return frozenset(self.checkpoints)

    def total_bytes(self) -> int:
        return sum(c.size_bytes() for c in self.checkpoints.values())

    def delta_bytes(self, previous: Optional["NeighborhoodSnapshot"]) -> int:
        """Wire cost of this snapshot against the previously gathered one
        under delta encoding: each member checkpoint is charged only for
        its changed state fields (members new to the neighbourhood pay the
        full compressed cost)."""
        if previous is None:
            return sum(c.compressed_bytes()
                       for c in self.checkpoints.values())
        total = 0
        for addr, checkpoint in self.checkpoints.items():
            before = previous.checkpoints.get(addr)
            total += checkpoint.delta_bytes(
                before.state if before is not None else None)
        return total

    def to_global_state(self) -> GlobalState:
        """Build the model-checking start state from this snapshot.

        In-flight messages among snapshot members are unknown at gather time
        and therefore empty; consequence prediction regenerates messages by
        executing handlers.  Nodes outside the snapshot play the role of the
        dummy node: messages addressed to them are dropped by the transition
        system and their events are never explored.
        """
        states = {addr: c.state.clone() for addr, c in self.checkpoints.items()}
        timers = {addr: c.timers for addr, c in self.checkpoints.items()}
        return GlobalState.from_snapshot(states, timers=timers)

    def is_consistent(self) -> bool:
        """All checkpoints carry a number >= the snapshot's number.

        The forced-checkpoint rule guarantees that a checkpoint stamped
        ``cn`` was taken before the node processed any message that happened
        after logical time ``cn``; a snapshot whose members all satisfy
        ``C.cn >= snapshot.cn`` therefore cannot violate happens-before.
        """
        return all(c.checkpoint_number >= self.checkpoint_number
                   for c in self.checkpoints.values())


def cluster_recent_peers(
    contacts: Mapping[Address, float],
    *,
    now: float,
    window: float = 60.0,
    max_peers: int = 16,
) -> list[Address]:
    """Heuristic snapshot-neighbourhood discovery (Section 3.1).

    When the service does not expose a neighbour list, CrystalBall clusters
    recent connection endpoints by communication time and keeps a
    sufficiently large cluster of recent contacts.  ``contacts`` maps peer
    address to the time of the most recent exchange.
    """
    recent = [(t, addr) for addr, t in contacts.items() if now - t <= window]
    recent.sort(key=lambda item: (-item[0], item[1]))
    return [addr for _, addr in recent[:max_peers]]
