"""Immediate safety check (Sections 3.3 and 4).

The asynchronous model checker cannot always predict an inconsistency in
time (it sees only a neighbourhood subset and runs behind the live system).
The immediate safety check closes that gap for the current handler: it
speculatively executes the handler on a copy of the node's state (the paper
uses a forked address space; we clone the state object), evaluates the
safety properties on the resulting state, and blocks the real execution when
the result is inconsistent.

To avoid blocking on pre-existing violations elsewhere in the (possibly
stale) snapshot, only *newly introduced* violations cause the event to be
blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mc.global_state import GlobalState, NodeLocal
from ..mc.transition import TransitionSystem
from ..properties import (
    NodeScopedProperty,
    Property,
    PropertyViolation,
    safety_properties,
)
from ..runtime.address import Address
from ..runtime.events import Event, ResetEvent
from ..runtime.state import NodeState


@dataclass
class ImmediateCheckOutcome:
    """Result of one speculative handler execution."""

    allowed: bool
    new_violations: list[PropertyViolation] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.allowed


class ImmediateSafetyCheck:
    """Speculative per-handler consistency check.

    Only the state-checkable (safety) subset of ``properties`` is
    evaluated; temporal liveness properties are meaningless for a
    single speculative state and are dropped on construction.
    """

    def __init__(self, system: TransitionSystem,
                 properties: Sequence[Property]) -> None:
        self.system = system
        self.properties = safety_properties(properties)
        self.checks_performed = 0
        self.events_blocked = 0

    def _relevant_violations(self, state: GlobalState,
                             dirty: Address) -> list[PropertyViolation]:
        """Violations whose verdict can depend on the handler at ``dirty``.

        Speculatively executing an event at one node changes only that
        node's local state (plus in-flight messages), so node-scoped
        properties are checked at the dirty node alone; cross-node and
        global properties are checked in full.  Restricting *both* the
        before- and after-sets to the same subset keeps the
        newly-introduced-violation subtraction exact while skipping
        re-checks whose inputs cannot have changed.
        """
        found: list[PropertyViolation] = []
        for prop in self.properties:
            if isinstance(prop, NodeScopedProperty) and prop.scope == "node":
                found.extend(prop.violations_at(state, dirty))
            else:
                found.extend(prop.violations(state))
        return found

    def check(
        self,
        addr: Address,
        live_state: NodeState,
        live_timers: frozenset[str],
        event: Event,
        *,
        neighborhood: Optional[GlobalState] = None,
    ) -> ImmediateCheckOutcome:
        """Speculatively execute ``event`` and report whether it is safe.

        Parameters
        ----------
        addr, live_state, live_timers:
            The node about to execute the handler and its current state.
        event:
            The handler invocation being vetted.
        neighborhood:
            The node's most recent neighbourhood snapshot, used so that
            cross-node properties (e.g. "children and siblings disjoint"
            involves only local state, but "root is not a child" involves
            two nodes) can be evaluated.  When absent, the check uses a
            one-node view.
        """
        self.checks_performed += 1
        if isinstance(event, ResetEvent):
            return ImmediateCheckOutcome(allowed=True)

        base = neighborhood.clone() if neighborhood is not None else GlobalState(nodes={})
        base.nodes[addr] = NodeLocal(state=live_state.clone(), timers=live_timers)
        before = {(v.property_name, v.node, v.detail)
                  for v in self._relevant_violations(base, addr)}

        speculative = self.system.apply(base, event)
        after = self._relevant_violations(speculative, addr)
        new = [v for v in after
               if (v.property_name, v.node, v.detail) not in before]

        if new:
            self.events_blocked += 1
            return ImmediateCheckOutcome(allowed=False, new_violations=new)
        return ImmediateCheckOutcome(allowed=True)
