"""Immediate safety check (Sections 3.3 and 4).

The asynchronous model checker cannot always predict an inconsistency in
time (it sees only a neighbourhood subset and runs behind the live system).
The immediate safety check closes that gap for the current handler: it
speculatively executes the handler on a copy of the node's state (the paper
uses a forked address space; we clone the state object), evaluates the
safety properties on the resulting state, and blocks the real execution when
the result is inconsistent.

To avoid blocking on pre-existing violations elsewhere in the (possibly
stale) snapshot, only *newly introduced* violations cause the event to be
blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mc.global_state import GlobalState, NodeLocal
from ..mc.properties import PropertyViolation, SafetyProperty, check_all
from ..mc.transition import TransitionSystem
from ..runtime.address import Address
from ..runtime.events import Event, ResetEvent
from ..runtime.state import NodeState


@dataclass
class ImmediateCheckOutcome:
    """Result of one speculative handler execution."""

    allowed: bool
    new_violations: list[PropertyViolation] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.allowed


class ImmediateSafetyCheck:
    """Speculative per-handler consistency check."""

    def __init__(self, system: TransitionSystem,
                 properties: Sequence[SafetyProperty]) -> None:
        self.system = system
        self.properties = list(properties)
        self.checks_performed = 0
        self.events_blocked = 0

    def check(
        self,
        addr: Address,
        live_state: NodeState,
        live_timers: frozenset[str],
        event: Event,
        *,
        neighborhood: Optional[GlobalState] = None,
    ) -> ImmediateCheckOutcome:
        """Speculatively execute ``event`` and report whether it is safe.

        Parameters
        ----------
        addr, live_state, live_timers:
            The node about to execute the handler and its current state.
        event:
            The handler invocation being vetted.
        neighborhood:
            The node's most recent neighbourhood snapshot, used so that
            cross-node properties (e.g. "children and siblings disjoint"
            involves only local state, but "root is not a child" involves
            two nodes) can be evaluated.  When absent, the check uses a
            one-node view.
        """
        self.checks_performed += 1
        if isinstance(event, ResetEvent):
            return ImmediateCheckOutcome(allowed=True)

        base = neighborhood.clone() if neighborhood is not None else GlobalState(nodes={})
        base.nodes[addr] = NodeLocal(state=live_state.clone(), timers=live_timers)
        before = {(v.property_name, v.node, v.detail)
                  for v in check_all(self.properties, base)}

        speculative = self.system.apply(base, event)
        after = check_all(self.properties, speculative)
        new = [v for v in after
               if (v.property_name, v.node, v.detail) not in before]

        if new:
            self.events_blocked += 1
            return ImmediateCheckOutcome(allowed=False, new_violations=new)
        return ImmediateCheckOutcome(allowed=True)
