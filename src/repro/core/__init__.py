"""CrystalBall core: the paper's primary contribution.

* :func:`~repro.core.consequence.consequence_prediction` — the fast state
  exploration algorithm of Figure 8;
* the checkpoint manager and consistent neighbourhood snapshots
  (Sections 2.3 and 3.1);
* the per-node :class:`~repro.core.controller.CrystalBallController` with
  its deep-online-debugging and execution-steering modes, event filters,
  filter-safety re-checks, error-path replay and the immediate safety check.
"""

from .checkpoint import Checkpoint, CheckpointStore, PeerTransferCache
from .consequence import consequence_prediction
from .controller import (
    CrystalBallConfig,
    CrystalBallController,
    ControllerStats,
    Mode,
    attach_crystalball,
)
from .event_filter import EventFilter, derive_filter
from .immediate import ImmediateCheckOutcome, ImmediateSafetyCheck
from .monitor import LivePropertyMonitor
from .replay import ReplayResult, replay_error_path
from .snapshot import NeighborhoodSnapshot, SnapshotGather, cluster_recent_peers
from .steering import (
    SteeringDecision,
    check_filter_safety,
    choose_steering_point,
    evaluate_violation,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "PeerTransferCache",
    "consequence_prediction",
    "CrystalBallConfig",
    "CrystalBallController",
    "ControllerStats",
    "Mode",
    "attach_crystalball",
    "EventFilter",
    "derive_filter",
    "ImmediateCheckOutcome",
    "ImmediateSafetyCheck",
    "LivePropertyMonitor",
    "ReplayResult",
    "replay_error_path",
    "NeighborhoodSnapshot",
    "SnapshotGather",
    "cluster_recent_peers",
    "SteeringDecision",
    "check_filter_safety",
    "choose_steering_point",
    "evaluate_violation",
]
