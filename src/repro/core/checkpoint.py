"""Checkpoints and checkpoint storage (Sections 2.3, 3.1, 4).

A checkpoint is a copy of one node's local state stamped with a checkpoint
number (the logical clock of Section 2.3).  The :class:`CheckpointStore`
keeps a bounded history of local checkpoints under a per-node quota, prunes
the oldest first, and answers checkpoint requests the way the snapshot
algorithm requires: return the earliest stored checkpoint whose number is at
least the requested one, or a negative answer carrying the current number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime.address import Address
from ..runtime.serialization import delta_size, diff_size
from ..runtime.state import NodeState


@dataclass
class Checkpoint:
    """A stamped copy of one node's local state."""

    node: Address
    checkpoint_number: int
    state: NodeState
    timers: frozenset[str] = frozenset()

    def size_bytes(self) -> int:
        """Uncompressed checkpoint size (Section 5.5 reports these)."""
        return self.state.size_bytes() + 16 * len(self.timers)

    def compressed_bytes(self) -> int:
        """Size after the checkpoint manager's compression (Section 4)."""
        return self.state.compressed_bytes() + 8 * len(self.timers)

    def delta_bytes(self, previous: Optional[NodeState]) -> int:
        """Wire cost against a peer holding ``previous`` under delta
        encoding: only the changed state fields travel (plus the timer
        set), never more than the full compressed checkpoint."""
        if previous is None:
            return self.compressed_bytes()
        return min(delta_size(previous, self.state) + 8 * len(self.timers),
                   self.compressed_bytes())


@dataclass
class CheckpointStore:
    """Bounded local history of a node's own checkpoints.

    Parameters
    ----------
    quota:
        Maximum number of checkpoints retained; older checkpoints are removed
        first to make room (Section 3.1, "Managing Checkpoint Storage").
    """

    quota: int = 16
    checkpoints: list[Checkpoint] = field(default_factory=list)
    pruned: int = 0

    def record(self, checkpoint: Checkpoint) -> None:
        """Store a new checkpoint, pruning the oldest beyond the quota."""
        self.checkpoints.append(checkpoint)
        self.checkpoints.sort(key=lambda c: c.checkpoint_number)
        while len(self.checkpoints) > self.quota:
            self.checkpoints.pop(0)
            self.pruned += 1

    def latest(self) -> Optional[Checkpoint]:
        """Most recent checkpoint, or ``None`` if empty."""
        return self.checkpoints[-1] if self.checkpoints else None

    def respond(self, requested_cn: int) -> Optional[Checkpoint]:
        """Answer a checkpoint request for number ``requested_cn``.

        Returns the earliest checkpoint with ``cn >= requested_cn`` (case 2
        of Section 2.3) or ``None`` when every such checkpoint has been
        pruned, in which case the caller must send a negative response
        carrying its current checkpoint number.
        """
        for checkpoint in self.checkpoints:
            if checkpoint.checkpoint_number >= requested_cn:
                return checkpoint
        return None

    def __len__(self) -> int:
        return len(self.checkpoints)


@dataclass
class PeerTransferCache:
    """Per-peer memory of the last checkpoint sent, for the diff/dedup
    optimisation of Section 4: identical checkpoints are not re-sent, and
    changed ones are charged at (compressed) diff cost."""

    last_sent: dict[Address, NodeState] = field(default_factory=dict)
    bytes_saved: int = 0

    def transfer_cost(self, peer: Address, checkpoint: Checkpoint, *,
                      delta: bool = False) -> int:
        """Bytes needed to send ``checkpoint`` to ``peer`` given history.

        With ``delta=True`` a changed checkpoint is charged at
        delta-encoded cost (changed state fields only) instead of the
        conservative full compressed re-send.
        """
        previous = self.last_sent.get(peer)
        full = checkpoint.compressed_bytes()
        if previous is None:
            cost = full
        elif delta:
            # Never worse than the conservative accounting: an unchanged
            # state stays at the bare header even though the delta form
            # would re-ship the timer set.
            cost = min(checkpoint.delta_bytes(previous),
                       diff_size(previous, checkpoint.state))
        else:
            cost = diff_size(previous, checkpoint.state)
        self.last_sent[peer] = checkpoint.state.clone()
        if cost < full:
            self.bytes_saved += full - cost
        return cost
