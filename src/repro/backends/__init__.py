"""Pluggable execution backends for the CrystalBall runtime.

See :mod:`repro.backends.base` for the :class:`ExecutionBackend` contract,
:mod:`repro.backends.sim` for the default simulated transport and
:mod:`repro.backends.tcp` for deployed mode over real asyncio sockets.
"""

from .base import (
    BACKENDS,
    ExecutionBackend,
    backend_names,
    get_backend,
    make_backend,
    protocol_state_digest,
    register_backend,
)
from .sim import SimBackend
from .tcp import AsyncioTcpBackend
from .wire import (
    FRAME_MAGIC,
    HEADER_SIZE,
    KIND_CONTROL,
    KIND_SERVICE,
    MAX_FRAME_BYTES,
    WireError,
    WireStats,
    decode_frame,
    decode_header,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SimBackend",
    "AsyncioTcpBackend",
    "backend_names",
    "get_backend",
    "make_backend",
    "protocol_state_digest",
    "register_backend",
    "FRAME_MAGIC",
    "HEADER_SIZE",
    "KIND_CONTROL",
    "KIND_SERVICE",
    "MAX_FRAME_BYTES",
    "WireError",
    "WireStats",
    "decode_frame",
    "decode_header",
    "encode_frame",
    "read_frame",
    "write_frame",
]
