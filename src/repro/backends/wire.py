"""Length-prefixed wire frames for deployed-mode transport.

One frame per message: a fixed header (magic, kind, payload length) followed
by the compact-bytes encoding (:func:`repro.runtime.serialization.
to_compact_bytes`, pickle + zlib) of the :class:`~repro.runtime.messages.
Message` — the same byte format the checkpoint manager's bandwidth
accounting charges for, so the bytes crossing the socket are the bytes the
paper's Section 3.1 accounting models.  Control-plane messages (checkpoint
requests/responses, steering probes) are tagged in the header so wire
statistics can split service from control traffic without decoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any

from ..runtime.messages import Message
from ..runtime.serialization import from_compact_bytes, to_compact_bytes

#: Frame header: magic (2 bytes), kind (1 byte), payload length (4 bytes).
_HEADER = struct.Struct(">HBI")
FRAME_MAGIC = 0xCB09  # CrystalBall, NSDI'09
HEADER_SIZE = _HEADER.size

#: Header ``kind`` values.
KIND_SERVICE = 0
KIND_CONTROL = 1

#: Refuse absurd frames instead of allocating unbounded buffers.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireError(ValueError):
    """A malformed frame arrived (bad magic, bad kind, oversized payload)."""


def encode_frame(message: Message) -> bytes:
    """Encode ``message`` into one length-prefixed frame."""
    payload = to_compact_bytes(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling")
    kind = KIND_CONTROL if message.control else KIND_SERVICE
    return _HEADER.pack(FRAME_MAGIC, kind, len(payload)) + payload


def decode_frame(frame: bytes) -> Message:
    """Decode one complete frame back into its :class:`Message`."""
    header, payload = frame[:HEADER_SIZE], frame[HEADER_SIZE:]
    length = decode_header(header)
    if len(payload) != length:
        raise WireError(
            f"frame payload is {len(payload)} bytes, header says {length}")
    return from_compact_bytes(payload)


def decode_header(header: bytes) -> int:
    """Validate a frame header and return the payload length."""
    if len(header) != HEADER_SIZE:
        raise WireError(f"truncated frame header ({len(header)} bytes)")
    magic, kind, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise WireError(f"bad frame magic 0x{magic:04x}")
    if kind not in (KIND_SERVICE, KIND_CONTROL):
        raise WireError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame announces {length} bytes (over the ceiling)")
    return length


async def write_frame(writer: Any, message: Message) -> int:
    """Write one frame to an asyncio stream; returns bytes written."""
    frame = encode_frame(message)
    writer.write(frame)
    await writer.drain()
    return len(frame)


async def read_frame(reader: Any) -> Message:
    """Read one complete frame from an asyncio stream.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`WireError` on a malformed header.
    """
    header = await reader.readexactly(HEADER_SIZE)
    length = decode_header(header)
    payload = await reader.readexactly(length)
    return from_compact_bytes(payload)


@dataclass
class WireStats:
    """Deterministic per-run accounting of deployed-mode wire traffic."""

    frames_sent: int = 0
    service_frames: int = 0
    control_frames: int = 0
    wire_bytes: int = 0
    by_mtype: dict[str, int] = field(default_factory=dict)

    def record(self, message: Message, frame_bytes: int) -> None:
        self.frames_sent += 1
        self.wire_bytes += frame_bytes
        if message.control:
            self.control_frames += 1
        else:
            self.service_frames += 1
        self.by_mtype[message.mtype] = self.by_mtype.get(message.mtype, 0) + 1

    def report(self) -> dict[str, Any]:
        """JSON-ready summary (merged into ``RunReport.outcome["wire"]``)."""
        return {
            "frames_sent": self.frames_sent,
            "service_frames": self.service_frames,
            "control_frames": self.control_frames,
            "wire_bytes": self.wire_bytes,
            "by_mtype": dict(sorted(self.by_mtype.items())),
        }
