"""Deployed-mode backend: protocol nodes behind real asyncio TCP sockets.

Each node gets a real TCP listener (an asyncio server on the loopback
interface by default); every message the coordinator delivers — service
traffic and the CrystalBall control plane alike — is encoded into a
length-prefixed compact-bytes frame (:mod:`repro.backends.wire`), written to
the destination node's socket, read back off the wire, decoded, and only
*then* executed.  Checkpoints and snapshots therefore ship over the wire for
real: a ``CHECKPOINT_RESPONSE`` carrying a cloned node state crosses a
socket as serialized bytes, and the controller operates on the decoded copy.

The event schedule stays a deterministic coordinator: simulated time, RNG
draws, loss/latency modeling and ``(time, seq)`` delivery order are the
shared :class:`~repro.runtime.simulator.Simulator` machinery, so a seeded
tcp run reproduces the *same* property violations and final protocol states
as the sim backend — that equivalence is what makes deployed-mode bug
reproductions (RandTree Figure 2, the Bullet' shadow map) trustworthy.  The
shared TCP failure contract (:class:`~repro.runtime.transport.
ConnectionTable` stale-incarnation upcalls, bounded non-blocking sends) is
enforced in ``_transmit`` before a frame is ever cut, exactly as in sim.

Nodes run as asyncio tasks in one process.  Per-node subprocesses would
speak the same frame protocol (the wire format carries everything needed);
the single-process form keeps the CI smoke cheap.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from ..runtime.address import Address
from ..runtime.messages import Message
from ..runtime.simulator import Simulator, _QueueEntry
from .base import register_backend
from .wire import WireStats, read_frame, write_frame

#: Options accepted by ``Experiment.backend("tcp", ...)``.
_TCP_OPTIONS = ("host", "port_base", "frame_timeout")


@dataclass
class _NodeEndpoint:
    """One node's network presence: a listener plus its decoded-frame inbox."""

    addr: Address
    server: Any = None
    port: int = 0
    inbox: "asyncio.Queue[Message]" = field(default_factory=asyncio.Queue)

    async def close(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None


class AsyncioTcpBackend(Simulator):
    """Real-socket transport under the deterministic coordinator."""

    backend_name = "tcp"

    def __init__(self, *args: Any, host: str = "127.0.0.1",
                 port_base: int = 0, frame_timeout: float = 30.0,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.host = host
        self.port_base = int(port_base)
        self.frame_timeout = float(frame_timeout)
        self.wire_stats = WireStats()
        #: deliveries that skipped the wire (dead peer, torn socket): the
        #: local path still executes them so semantics never depend on
        #: socket health, but the count is reported for honesty.
        self.wire_fallbacks = 0
        self._endpoints: dict[Address, _NodeEndpoint] = {}
        self._writers: dict[tuple[Address, Address], Any] = {}

    @classmethod
    def from_options(
        cls,
        protocol_factory: Callable[[], Any],
        network: Any = None,
        *,
        seed: int = 0,
        tick_interval: float = 10.0,
        trace: bool = False,
        obs: Any = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "AsyncioTcpBackend":
        options = dict(options or {})
        unknown = set(options) - set(_TCP_OPTIONS)
        if unknown:
            raise ValueError(
                f"unknown option(s) for the 'tcp' backend: "
                f"{sorted(unknown)} (accepted: {sorted(_TCP_OPTIONS)})")
        return cls(protocol_factory, network, seed=seed,
                   tick_interval=tick_interval, trace=trace, obs=obs,
                   **options)

    # -- running ------------------------------------------------------------

    def run(self, *, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run the schedule with every delivery routed over real sockets.

        Endpoints (listeners and outgoing connections) live for the
        duration of this call; the inherited :meth:`Simulator.step` stays
        socket-free and is only suitable for local debugging.
        """
        asyncio.run(self._run_async(until=until, max_events=max_events))

    async def _run_async(self, *, until: Optional[float],
                         max_events: Optional[int]) -> None:
        await self._open_endpoints()
        try:
            executed = 0
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    self.now = until
                    break
                import heapq

                heapq.heappop(self._queue)
                self.now = entry.time
                await self._dispatch_async(entry)
                executed += 1
        finally:
            await self._close_endpoints()

    async def _dispatch_async(self, entry: _QueueEntry) -> None:
        kind = entry.kind
        if kind == "deliver":
            did, message = entry.data
            self._inflight.pop(did, None)
            await self._deliver_over_wire(message)
        elif kind == "deliver_batch":
            plan = entry.data
            while not plan.exhausted and plan.next_time() <= self.now:
                did, message = plan.pop_due()
                self._inflight.pop(did, None)
                await self._deliver_over_wire(message)
            if not plan.exhausted:
                self._schedule(plan.next_time(), "deliver_batch", plan)
        else:
            self._dispatch(entry)

    # -- the wire -----------------------------------------------------------

    async def _deliver_over_wire(self, message: Message) -> None:
        """Ship one due delivery through its destination's real socket.

        The frame round-trip is awaited before the handler runs, so the
        executed event operates on the decoded-from-wire copy — byte-level
        serialization is on the critical path exactly as in a deployment.
        Deliveries to dead or unlistening peers skip the wire and take the
        inherited local path, which records the drop.
        """
        node = self.nodes.get(message.dst)
        endpoint = self._endpoints.get(message.dst)
        if node is None or not node.alive or endpoint is None \
                or endpoint.server is None:
            self._dispatch_delivery(message)
            return
        try:
            writer = await self._writer_for(message.src, message.dst)
            frame_bytes = await write_frame(writer, message)
            decoded = await asyncio.wait_for(endpoint.inbox.get(),
                                             timeout=self.frame_timeout)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            # A torn loopback socket must not change what the protocol
            # observes: execute the local copy and account the fallback.
            self.wire_fallbacks += 1
            self._dispatch_delivery(message)
            return
        self.wire_stats.record(message, frame_bytes)
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.inc("backend.frames_sent")
            metrics.inc("backend.wire_bytes", frame_bytes)
        self._dispatch_delivery(decoded)

    async def _writer_for(self, src: Address, dst: Address) -> Any:
        """The cached outgoing stream for the ``src -> dst`` pair."""
        key = (src, dst)
        writer = self._writers.get(key)
        if writer is not None and not writer.is_closing():
            return writer
        endpoint = self._endpoints[dst]
        _reader, writer = await asyncio.open_connection(self.host,
                                                        endpoint.port)
        self._writers[key] = writer
        return writer

    async def _serve_node(self, endpoint: _NodeEndpoint, reader: Any,
                          writer: Any) -> None:
        """Per-connection listener task: decode frames into the inbox."""
        try:
            while True:
                message = await read_frame(reader)
                await endpoint.inbox.put(message)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        except asyncio.CancelledError:
            # Run teardown: the event loop is shutting down and cancels
            # reader tasks still waiting for a frame.  Returning (instead
            # of re-raising) lets them finish quietly.
            pass
        finally:
            writer.close()

    async def _open_endpoints(self) -> None:
        for index, addr in enumerate(sorted(self.nodes)):
            if addr in self._endpoints:
                continue
            endpoint = _NodeEndpoint(addr=addr)
            port = self.port_base + index if self.port_base else 0

            def handler(reader: Any, writer: Any,
                        endpoint: _NodeEndpoint = endpoint) -> Any:
                return self._serve_node(endpoint, reader, writer)

            endpoint.server = await asyncio.start_server(
                handler, self.host, port)
            endpoint.port = endpoint.server.sockets[0].getsockname()[1]
            self._endpoints[addr] = endpoint

    async def _close_endpoints(self) -> None:
        for writer in self._writers.values():
            writer.close()
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass
        self._writers.clear()
        for endpoint in self._endpoints.values():
            await endpoint.close()
        self._endpoints.clear()

    # -- reporting ----------------------------------------------------------

    def wire_report(self) -> dict[str, Any]:
        """Wire accounting merged into ``RunReport.outcome["wire"]``."""
        report = self.wire_stats.report()
        report["fallback_local"] = self.wire_fallbacks
        return report


register_backend("tcp", AsyncioTcpBackend)
