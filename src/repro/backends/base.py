"""The execution-backend API: one protocol surface, many transports.

The paper's claim is about *deployed* systems: CrystalBall controllers ride
on live nodes, not only on a simulator.  An :class:`ExecutionBackend` is the
contract everything above the runtime programs against — the controller
(:mod:`repro.core.controller`), the live property monitor, the nemesis, the
churn process and the open-loop workload drivers all take "a simulator" that
in fact only needs this surface.  Two implementations ship:

``sim`` (:class:`~repro.backends.sim.SimBackend`)
    The discrete-event simulator, unchanged and bit-identical to the
    pre-backend runtime.  The default everywhere.

``tcp`` (:class:`~repro.backends.tcp.AsyncioTcpBackend`)
    Deployed mode: every service and control message — checkpoint
    requests/responses included — crosses a real asyncio TCP socket as a
    length-prefixed compact-bytes frame before its handler runs.  The
    deterministic coordinator keeps seeds reproducible, so the same
    scenario yields the same violations over real sockets.

Both backends honor the shared TCP failure contract of
:mod:`repro.runtime.transport`: stale-incarnation connection errors are
surfaced as upcalls and sends never block (bounded queues refuse instead),
which is what keeps the Bullet'/RandTree bug reproductions valid in
deployed mode.
"""

from __future__ import annotations

import hashlib
from typing import (
    Any,
    Callable,
    Mapping,
    Optional,
    Protocol as TypingProtocol,
    Sequence,
    runtime_checkable,
)

from ..runtime.address import Address
from ..runtime.events import Event
from ..runtime.messages import Message
from ..runtime.serialization import freeze
from ..runtime.simulator import NodeHook, SimNode, Simulator


@runtime_checkable
class ExecutionBackend(TypingProtocol):
    """The execution surface controllers, monitors and drivers program to.

    Structural (a :class:`typing.Protocol`): :class:`Simulator` satisfies it
    unchanged, and so does anything else exposing this surface.  The
    attributes below are the complete set the CrystalBall stack touches —
    a new backend that provides them hosts the whole product (controllers,
    steering, properties, faults, workloads) without modification.
    """

    now: float
    nodes: dict[Address, SimNode]
    tick_interval: float
    rng: Any
    obs: Any
    observers: list

    # -- topology ----------------------------------------------------------
    def add_node(self, addr: Address, *, start: bool = True) -> SimNode: ...
    def attach_hook(self, addr: Address, hook: NodeHook) -> None: ...
    def add_observer(
        self, observer: Callable[[Any, SimNode, Event], None]) -> None: ...

    # -- scheduling --------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[[Any], None]) -> None: ...
    def schedule_app(self, time: float, addr: Address, call: str,
                     payload: Optional[Mapping[str, Any]] = None) -> None: ...
    def schedule_reset(self, time: float, addr: Address) -> None: ...
    def inject_app(self, addr: Address, call: str,
                   payload: Optional[Mapping[str, Any]] = None) -> None: ...

    # -- transport ---------------------------------------------------------
    def transmit(self, addr: Address, message: Message) -> None: ...
    def transmit_batch(self, addr: Address,
                       messages: Sequence[Message]) -> None: ...

    # -- execution ---------------------------------------------------------
    def run(self, *, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None: ...
    def node_states(self) -> dict[Address, tuple[Any, frozenset[str]]]: ...


#: name -> backend class; populated by the sim/tcp modules at import time.
BACKENDS: dict[str, type] = {}


def register_backend(name: str, cls: type) -> type:
    """Register an execution backend under ``name`` (idempotent)."""
    existing = BACKENDS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"backend {name!r} is already registered")
    BACKENDS[name] = cls
    return cls


def backend_names() -> list[str]:
    """Registered backend names, sorted (``["sim", "tcp"]`` out of the box)."""
    _ensure_builtins()
    return sorted(BACKENDS)


_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from . import sim as _sim  # noqa: F401  (registers "sim")
    from . import tcp as _tcp  # noqa: F401  (registers "tcp")


def get_backend(name: str) -> type:
    """Look up a backend class by name."""
    _ensure_builtins()
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names()) or "<none>"
        raise ValueError(
            f"unknown backend {name!r} (registered backends: {known})"
        ) from None


def make_backend(
    name: str,
    protocol_factory: Callable[[], Any],
    network: Any = None,
    *,
    seed: int = 0,
    tick_interval: float = 10.0,
    trace: bool = False,
    obs: Any = None,
    options: Optional[Mapping[str, Any]] = None,
) -> Simulator:
    """Build the named backend with per-backend ``options``.

    The common constructor arguments match :class:`Simulator`; ``options``
    carries backend-specific settings (e.g. ``host``/``port_base`` for
    ``tcp``) and is validated by the backend class, so a typo'd option
    fails loudly before the run starts.
    """
    cls = get_backend(name)
    return cls.from_options(
        protocol_factory, network, seed=seed, tick_interval=tick_interval,
        trace=trace, obs=obs, options=dict(options or {}))


def protocol_state_digest(backend: ExecutionBackend) -> str:
    """Canonical digest of every alive node's protocol state.

    The cross-backend equivalence check: a sim run and a tcp run of the
    same seeded scenario must land on identical digests.  Built on
    :func:`repro.runtime.serialization.freeze`, the same canonicalization
    the model checker hashes states with.
    """
    frozen = tuple(
        (addr.frozen(), freeze(state), tuple(sorted(timers)))
        for addr, (state, timers) in sorted(backend.node_states().items())
    )
    return hashlib.sha256(repr(frozen).encode("utf-8")).hexdigest()
