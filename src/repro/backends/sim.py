"""The default backend: the discrete-event simulator, bit-identical.

:class:`SimBackend` *is* :class:`~repro.runtime.simulator.Simulator` — no
overrides, no behavioral delta.  It exists so backend selection has a class
to name and a place to validate (the sim backend takes no options), and so
the golden-equivalence suite can assert the refactor cost nothing: the
24-node report digests captured before the backend API existed must keep
matching runs built through :func:`repro.backends.make_backend`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from ..runtime.simulator import Simulator
from .base import register_backend


class SimBackend(Simulator):
    """Simulated transport: the pre-backend runtime, unchanged."""

    backend_name = "sim"

    @classmethod
    def from_options(
        cls,
        protocol_factory: Callable[[], Any],
        network: Any = None,
        *,
        seed: int = 0,
        tick_interval: float = 10.0,
        trace: bool = False,
        obs: Any = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "SimBackend":
        if options:
            raise ValueError(
                f"the 'sim' backend takes no options, got "
                f"{sorted(options)}")
        return cls(protocol_factory, network, seed=seed,
                   tick_interval=tick_interval, trace=trace, obs=obs)


register_backend("sim", SimBackend)
