"""Global distributed-system state for model checking (Figure 4).

A global state is the local state of every node (including its armed
timers, which determine the enabled internal actions) plus the set of
in-flight network messages.  The model checker additionally tracks in-flight
*error notifications* (pending TCP RST / broken-connection signals produced
by node resets and steering actions) and per-node reset counts so searches
over fault scenarios stay bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional

from ..runtime.address import Address
from ..runtime.messages import Message
from ..runtime.serialization import freeze
from ..runtime.state import NodeState


@dataclass(frozen=True)
class ErrorNotification:
    """A pending transport-error signal: ``dst`` will observe a broken
    connection with ``peer`` when the notification is delivered."""

    dst: Address
    peer: Address

    def signature(self) -> tuple:
        return ("errnotif", freeze(self.dst), freeze(self.peer))


@dataclass(frozen=True)
class NodeLocal:
    """Local state of one node as seen by the model checker.

    The wrapped state is never mutated once the wrapper exists (handlers
    run on clones and produce a fresh ``NodeLocal``), so the signature is
    computed once and cached: successor states share the wrappers of all
    unchanged nodes and hashing them again costs a tuple lookup instead of
    a full re-freeze of their state.
    """

    state: NodeState
    timers: frozenset[str] = frozenset()
    _sig_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False, init=False)
    _size_cache: Optional[int] = field(
        default=None, repr=False, compare=False, init=False)

    def signature(self) -> tuple:
        if self._sig_cache is None:
            object.__setattr__(
                self, "_sig_cache",
                (self.state.signature(), tuple(sorted(self.timers))))
        return self._sig_cache

    def local_hash(self) -> int:
        return hash(self.signature())

    def size_bytes(self) -> int:
        if self._size_cache is None:
            object.__setattr__(
                self, "_size_cache",
                self.state.size_bytes() + 16 * len(self.timers))
        return self._size_cache


@dataclass
class GlobalState:
    """A complete system state explored by the model checker."""

    nodes: dict[Address, NodeLocal]
    inflight: tuple[Message, ...] = ()
    errors: tuple[ErrorNotification, ...] = ()
    resets: tuple[tuple[Address, int], ...] = ()
    #: lazily computed size estimate (the state is treated as immutable once
    #: it has entered a search frontier).
    _size_cache: Optional[int] = field(default=None, repr=False, compare=False, init=False)
    #: lazily computed signature, under the same immutability convention.
    _sig_cache: Optional[tuple] = field(default=None, repr=False, compare=False, init=False)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        states: Mapping[Address, NodeState],
        timers: Optional[Mapping[Address, Iterable[str]]] = None,
        inflight: Iterable[Message] = (),
    ) -> "GlobalState":
        """Build a global state from a set of node checkpoints.

        This is how the CrystalBall controller seeds consequence prediction:
        the neighbourhood snapshot provides the node states; in-flight
        messages are unknown and therefore empty unless explicitly given.
        """
        timers = timers or {}
        nodes = {
            addr: NodeLocal(state=state, timers=frozenset(timers.get(addr, ())))
            for addr, state in states.items()
        }
        return cls(nodes=nodes, inflight=tuple(inflight))

    # -- copies and updates --------------------------------------------------------

    def clone(self) -> "GlobalState":
        """Deep copy (node states are mutable dataclasses)."""
        return GlobalState(
            nodes={addr: NodeLocal(state=nl.state.clone(), timers=nl.timers)
                   for addr, nl in self.nodes.items()},
            inflight=self.inflight,
            errors=self.errors,
            resets=self.resets,
        )

    def with_node(self, addr: Address, local: NodeLocal) -> "GlobalState":
        nodes = dict(self.nodes)
        nodes[addr] = local
        return replace(self, nodes=nodes)

    def reset_count(self, addr: Address) -> int:
        for node, count in self.resets:
            if node == addr:
                return count
        return 0

    def with_reset(self, addr: Address) -> "GlobalState":
        counts = dict(self.resets)
        counts[addr] = counts.get(addr, 0) + 1
        return replace(self, resets=tuple(sorted(counts.items())))

    # -- identity --------------------------------------------------------------------

    def signature(self) -> tuple:
        if self._sig_cache is None:
            node_part = tuple(
                (freeze(addr), self.nodes[addr].signature())
                for addr in sorted(self.nodes)
            )
            inflight_part = tuple(
                sorted((m.signature() for m in self.inflight), key=repr))
            error_part = tuple(
                sorted((e.signature() for e in self.errors), key=repr))
            self._sig_cache = (node_part, inflight_part, error_part,
                               self.resets)
        return self._sig_cache

    def state_hash(self) -> int:
        return hash(self.signature())

    # -- accounting ---------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate in-memory size of this state (Figures 15/16)."""
        if self._size_cache is None:
            total = sum(nl.size_bytes() for nl in self.nodes.values())
            total += sum(m.size_bytes() for m in self.inflight)
            total += 24 * len(self.errors)
            self._size_cache = total
        return self._size_cache

    def describe(self) -> str:
        """Short human-readable summary for traces and reports."""
        parts = [f"{addr}:{type(nl.state).__name__}" for addr, nl in sorted(self.nodes.items())]
        return f"GlobalState({', '.join(parts)}; {len(self.inflight)} msgs in flight)"
