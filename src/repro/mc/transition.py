"""The transition relation ``;`` of the system model (Figure 4).

:class:`TransitionSystem` knows how to enumerate the events enabled in a
global state (message deliveries, timer firings, application calls, node
resets, transport-error notifications) and how to apply one event to produce
the successor state, by executing the *same protocol handler code* the live
runtime executes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from ..runtime.address import Address
from ..runtime.context import HandlerContext
from ..runtime.events import (
    AppEvent,
    ConnectionErrorEvent,
    Event,
    MessageEvent,
    ResetEvent,
    TimerEvent,
)
from ..runtime.messages import Message
from ..runtime.protocol import Protocol
from .global_state import ErrorNotification, GlobalState, NodeLocal


@dataclass
class TransitionConfig:
    """What the model checker is allowed to explore.

    Parameters
    ----------
    enable_resets:
        Consider silent node resets as internal actions.  Resets are the
        low-probability events behind most of the bugs found in the paper.
    max_resets_per_node:
        Bound on resets per node within one search, to keep the space finite.
    enable_app_calls:
        Consider application calls advertised by ``Protocol.app_calls``.
    drop_messages_to_unknown:
        Messages addressed to nodes outside the snapshot are redirected to
        the "dummy node" and never processed (Section 4); dropping them is
        behaviourally equivalent and keeps the state space smaller.
    deterministic_seed:
        Seed for the RNG handed to handlers, so searches are reproducible.
    """

    enable_resets: bool = True
    max_resets_per_node: int = 1
    enable_app_calls: bool = True
    drop_messages_to_unknown: bool = True
    deterministic_seed: int = 0


class TransitionSystem:
    """Successor-state generator for one protocol."""

    def __init__(self, protocol: Protocol, config: Optional[TransitionConfig] = None) -> None:
        self.protocol = protocol
        self.config = config or TransitionConfig()

    # -- enumeration ----------------------------------------------------------------

    def network_events(self, state: GlobalState) -> list[Event]:
        """Message-handler events enabled in ``state`` (the ``HM`` side)."""
        events: list[Event] = []
        for message in state.inflight:
            if message.dst in state.nodes:
                events.append(MessageEvent(node=message.dst, message=message))
        for notification in state.errors:
            if notification.dst in state.nodes:
                events.append(ConnectionErrorEvent(node=notification.dst,
                                                   peer=notification.peer))
        return events

    def internal_events(self, state: GlobalState, addr: Address) -> list[Event]:
        """Internal-action events enabled at node ``addr`` (the ``HA`` side)."""
        local = state.nodes[addr]
        events: list[Event] = [TimerEvent(node=addr, timer=name)
                               for name in sorted(local.timers)]
        if self.config.enable_app_calls:
            for call, payload in self.protocol.app_calls(local.state):
                events.append(AppEvent(node=addr, call=call, payload=dict(payload)))
        if (self.config.enable_resets
                and state.reset_count(addr) < self.config.max_resets_per_node):
            events.append(ResetEvent(node=addr))
        return events

    def enabled_events(self, state: GlobalState) -> list[Event]:
        """All events enabled in ``state`` (used by the exhaustive baseline)."""
        events = self.network_events(state)
        for addr in sorted(state.nodes):
            events.extend(self.internal_events(state, addr))
        return events

    # -- application ---------------------------------------------------------------------

    def apply(self, state: GlobalState, event: Event) -> GlobalState:
        """Return the successor of ``state`` after executing ``event``."""
        if isinstance(event, MessageEvent):
            return self._apply_message(state, event)
        if isinstance(event, ConnectionErrorEvent):
            return self._apply_connection_error(state, event)
        if isinstance(event, TimerEvent):
            return self._apply_timer(state, event)
        if isinstance(event, AppEvent):
            return self._apply_app(state, event)
        if isinstance(event, ResetEvent):
            return self._apply_reset(state, event)
        raise TypeError(f"unknown event {event!r}")

    def apply_filtered(self, state: GlobalState, event: Event, *,
                       reset_connection: bool = True) -> GlobalState:
        """Successor when an event filter drops ``event`` instead of handling it.

        Used to check the safety of candidate steering actions: the offending
        message is consumed without running its handler and, optionally, the
        connection with the sender is torn down, which the sender observes as
        a transport error (Section 3.3, "Choice of Corrective Actions").
        """
        if isinstance(event, MessageEvent):
            inflight = _remove_one(state.inflight, event.message)
            errors = state.errors
            message = event.message
            if reset_connection and message.src in state.nodes:
                errors = errors + (ErrorNotification(dst=message.src, peer=event.node),)
            return replace(state, inflight=inflight, errors=errors)
        if isinstance(event, TimerEvent):
            # A delayed timer is simply re-armed; the state does not change.
            return state
        return state

    # -- helpers ---------------------------------------------------------------------------

    def _context(self, addr: Address) -> HandlerContext:
        return HandlerContext(self_addr=addr, now=0.0,
                              rng=random.Random(self.config.deterministic_seed))

    def _run_handler(
        self,
        state: GlobalState,
        addr: Address,
        event: Event,
        *,
        consumed_message: Optional[Message] = None,
        consumed_error: Optional[ErrorNotification] = None,
        fired_timer: Optional[str] = None,
    ) -> GlobalState:
        local = state.nodes[addr]
        working = local.state.clone()
        ctx = self._context(addr)
        new_state = self.protocol.execute(ctx, working, event)

        timers = local.timers
        if fired_timer is not None:
            timers = timers - {fired_timer}
        if isinstance(event, ResetEvent):
            timers = frozenset()
        timers = ctx.armed_timers(timers)

        inflight = state.inflight
        if consumed_message is not None:
            inflight = _remove_one(inflight, consumed_message)
        new_messages = tuple(
            m for m in ctx.sent
            if m.dst in state.nodes or not self.config.drop_messages_to_unknown
        )
        inflight = inflight + new_messages

        errors = state.errors
        if consumed_error is not None:
            errors = _remove_one(errors, consumed_error)
        for peer in ctx.closed_connections:
            if peer in state.nodes:
                errors = errors + (ErrorNotification(dst=peer, peer=addr),)

        next_state = replace(
            state,
            nodes={**state.nodes, addr: NodeLocal(state=new_state, timers=timers)},
            inflight=inflight,
            errors=errors,
        )
        return next_state

    def _apply_message(self, state: GlobalState, event: MessageEvent) -> GlobalState:
        return self._run_handler(state, event.node, event,
                                 consumed_message=event.message)

    def _apply_connection_error(self, state: GlobalState,
                                event: ConnectionErrorEvent) -> GlobalState:
        notification = ErrorNotification(dst=event.node, peer=event.peer)
        return self._run_handler(state, event.node, event,
                                 consumed_error=notification)

    def _apply_timer(self, state: GlobalState, event: TimerEvent) -> GlobalState:
        return self._run_handler(state, event.node, event, fired_timer=event.timer)

    def _apply_app(self, state: GlobalState, event: AppEvent) -> GlobalState:
        return self._run_handler(state, event.node, event)

    def _apply_reset(self, state: GlobalState, event: ResetEvent) -> GlobalState:
        addr = event.node
        # Peers holding a TCP connection to the resetting node may observe a
        # RST.  The model checker does not track connections explicitly; it
        # conservatively enqueues an error notification for every snapshot
        # node that lists the resetting node as a neighbour.  Whether the
        # notification is delivered before other events (or at all within the
        # search horizon) is decided by the search itself, which covers both
        # the "RST received" and the "RST lost" scenarios of Figure 2.
        old_neighbors = set(self.protocol.neighbors(state.nodes[addr].state))
        next_state = self._run_handler(state, addr, event)
        errors = next_state.errors
        for other, local in state.nodes.items():
            if other == addr:
                continue
            if addr in self.protocol.neighbors(local.state):
                errors = errors + (ErrorNotification(dst=other, peer=addr),)
        # The rebooted node's former peers hold half-open connections to its
        # old incarnation; whenever one of them is eventually used, the error
        # surfaces at the rebooted node too (this is the transport error node
        # C observes in the Chord scenario of Figure 10).
        for former in sorted(old_neighbors):
            if former in state.nodes and former != addr:
                errors = errors + (ErrorNotification(dst=addr, peer=former),)
        return replace(next_state, errors=errors).with_reset(addr)


def _remove_one(items: tuple, target) -> tuple:
    """Remove a single occurrence of ``target`` from ``items``."""
    result = list(items)
    try:
        result.remove(target)
    except ValueError:
        pass
    return tuple(result)
