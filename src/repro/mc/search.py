"""Shared search infrastructure: budgets, statistics, results.

Both the exhaustive baseline (Figure 5) and consequence prediction
(Figure 8) are breadth-first searches with state-hash caching that differ
only in which successors they enumerate; this module holds everything they
share, including the ``StopCriterion`` of the paper expressed as a
:class:`SearchBudget`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.events import Event
from .global_state import GlobalState
from ..properties import PropertyViolation


@dataclass
class SearchBudget:
    """The StopCriterion: bounds on how far a search may go.

    Any bound left ``None`` is unlimited.  ``exhausted`` is evaluated before
    each state expansion, mirroring the ``while (!StopCriterion)`` loop of
    Figures 5 and 8.
    """

    max_states: Optional[int] = 20000
    max_depth: Optional[int] = None
    max_seconds: Optional[float] = None
    #: Upper bound on the bytes held by queued frontier states; long-running
    #: searches stop rather than exhaust memory once the frontier exceeds it.
    max_frontier_bytes: Optional[int] = None
    stop_at_first_violation: bool = False
    #: Record every visited state hash in ``stats.visited_hashes`` — used by
    #: engine-equivalence checks; off by default to keep memory flat.
    record_visited_hashes: bool = False

    def exhausted(self, stats: "SearchStats") -> bool:
        if self.max_states is not None and stats.states_visited >= self.max_states:
            return True
        if self.max_seconds is not None and stats.elapsed_seconds >= self.max_seconds:
            return True
        if (self.max_frontier_bytes is not None
                and stats.frontier_bytes >= self.max_frontier_bytes):
            return True
        return False

    def depth_allowed(self, depth: int) -> bool:
        return self.max_depth is None or depth <= self.max_depth


@dataclass
class SearchStats:
    """Measurements of one search run (Figures 12, 15, 16)."""

    states_visited: int = 0
    states_enqueued: int = 0
    transitions_applied: int = 0
    duplicate_states: int = 0
    max_depth_reached: int = 0
    elapsed_seconds: float = 0.0
    #: bytes attributed to the search tree: frontier states plus hashes of
    #: explored states (the checker "does not cache previously visited
    #: states, it only stores their hashes", Section 5.5).
    peak_memory_bytes: int = 0
    explored_hash_bytes: int = 0
    #: bytes currently held by queued frontier states (kept up to date by the
    #: searches so ``SearchBudget.max_frontier_bytes`` can bound it).
    frontier_bytes: int = 0
    internal_actions_skipped: int = 0
    states_by_depth: dict[int, int] = field(default_factory=dict)
    #: hashes of every visited state, populated only when the budget sets
    #: ``record_visited_hashes``.
    visited_hashes: Optional[set[int]] = None

    def note_visited_hash(self, state_hash: int) -> None:
        if self.visited_hashes is None:
            self.visited_hashes = set()
        self.visited_hashes.add(state_hash)

    _started_at: float = field(default_factory=time.monotonic, repr=False)

    def touch_clock(self) -> None:
        self.elapsed_seconds = time.monotonic() - self._started_at

    def record_visit(self, depth: int) -> None:
        self.states_visited += 1
        self.max_depth_reached = max(self.max_depth_reached, depth)
        self.states_by_depth[depth] = self.states_by_depth.get(depth, 0) + 1
        self.touch_clock()

    def memory_per_state(self) -> float:
        """Average bytes per visited state (Figure 16)."""
        if self.states_visited == 0:
            return 0.0
        return (self.peak_memory_bytes + self.explored_hash_bytes) / self.states_visited


@dataclass(frozen=True)
class PredictedViolation:
    """A property violation reachable from the search's start state.

    The event ``path`` is the sequence of handler executions leading from
    the start state to the violating state — exactly what the CrystalBall
    controller needs to build an event filter or a replayable error path.
    """

    violation: PropertyViolation
    path: tuple[Event, ...]
    depth: int
    state_hash: int

    def describe(self) -> str:
        steps = " -> ".join(e.describe() for e in self.path) or "(start state)"
        return f"{self.violation} via {steps}"


@dataclass
class SearchResult:
    """Outcome of one model-checking run."""

    violations: list[PredictedViolation]
    stats: SearchStats
    start_state: GlobalState

    @property
    def found_violation(self) -> bool:
        return bool(self.violations)

    def unique_property_names(self) -> set[str]:
        return {v.violation.property_name for v in self.violations}

    def shortest_violation(self) -> Optional[PredictedViolation]:
        if not self.violations:
            return None
        return min(self.violations, key=lambda v: v.depth)
