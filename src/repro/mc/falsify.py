"""Falsification-driven counterexample search and trace minimization.

Exhaustive model checking (the rest of :mod:`repro.mc`) asks "does any
reachable state violate a property?".  Falsification flips the workflow:
given one *named* property (validated against the PR 5 registry), hunt for
a single concrete execution that violates it — an *attack* — and then
shrink the violating schedule with greedy delta debugging until every
remaining element is load-bearing.

Both halves are deliberately generic: a *candidate* is any schedule-like
value, *execute* runs one candidate end to end and returns evidence of a
violation (or ``None``), and *reducers* propose smaller candidates.  The
:mod:`repro.attack` package instantiates them with concretized fault
schedules and seeded live runs; tests instantiate them with toy functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..properties import select_properties

#: ``execute(candidate) -> evidence | None`` — run one candidate; truthy
#: evidence means the target property was violated.
Executor = Callable[[Any], Optional[Any]]

#: ``reducer(candidate) -> iterable of strictly smaller candidates``.
Reducer = Callable[[Any], Iterable[Any]]


@dataclass
class FalsificationResult:
    """Outcome of a counterexample hunt."""

    property_id: str
    found: bool
    #: The violating candidate (None when the search came up empty).
    candidate: Any = None
    #: Whatever the executor returned for the violating candidate.
    evidence: Any = None
    #: Candidates executed before (and including) the first violation.
    attempts: int = 0


@dataclass
class MinimizationResult:
    """Outcome of greedy delta debugging on one violating candidate."""

    candidate: Any
    evidence: Any
    #: Re-executions spent confirming/refuting reduction proposals.
    executions: int = 0
    #: Accepted reductions, in order (reducer name per step).
    reductions: list[str] = field(default_factory=list)


class FalsificationEngine:
    """Hunts for a counterexample to one named property.

    Parameters
    ----------
    property_id:
        The registry id of the property under attack; validated against
        the global property registry up front so a typo fails fast.
    execute:
        Runs one candidate and returns violation evidence or ``None``.
    candidates:
        Iterable (usually a generator of increasingly different seeded
        schedules) of candidates to try, in order.
    max_attempts:
        Upper bound on executed candidates; ``None`` drains ``candidates``.
    """

    def __init__(
        self,
        property_id: str,
        execute: Executor,
        candidates: Iterable[Any],
        *,
        max_attempts: Optional[int] = None,
    ) -> None:
        # Fail fast on unknown ids — same validation the CLI/campaign use.
        select_properties(property_id)
        self.property_id = property_id
        self.execute = execute
        self.candidates = candidates
        self.max_attempts = max_attempts

    def falsify(self) -> FalsificationResult:
        attempts = 0
        for candidate in self.candidates:
            if self.max_attempts is not None and attempts >= self.max_attempts:
                break
            attempts += 1
            evidence = self.execute(candidate)
            if evidence is not None:
                return FalsificationResult(
                    property_id=self.property_id,
                    found=True,
                    candidate=candidate,
                    evidence=evidence,
                    attempts=attempts,
                )
        return FalsificationResult(
            property_id=self.property_id, found=False, attempts=attempts
        )


def greedy_minimize(
    candidate: Any,
    evidence: Any,
    reducers: Sequence[tuple[str, Reducer]],
    execute: Executor,
    *,
    max_executions: int = 256,
) -> MinimizationResult:
    """Greedy delta debugging: accept any reduction that still violates.

    Each reducer proposes strictly smaller variants of the current
    candidate; the first variant whose re-execution still produces
    evidence becomes the new candidate and the scan restarts.  The loop
    ends at a fixpoint (no reducer can shrink further) or at the execution
    budget.  Greedy 1-minimality, not global optimality — the classic
    ddmin trade-off: every re-execution is a full seeded run, so the
    budget matters more than the last dropped step.
    """
    result = MinimizationResult(candidate=candidate, evidence=evidence)
    progress = True
    while progress and result.executions < max_executions:
        progress = False
        for name, reducer in reducers:
            for smaller in reducer(result.candidate):
                if result.executions >= max_executions:
                    break
                result.executions += 1
                smaller_evidence = execute(smaller)
                if smaller_evidence is not None:
                    result.candidate = smaller
                    result.evidence = smaller_evidence
                    result.reductions.append(name)
                    progress = True
                    break
            if progress:
                break
    return result


def seeded_candidates(make: Callable[[int], Any], start: int = 0) -> Iterator[Any]:
    """Infinite candidate stream ``make(start), make(start+1), ...`` —
    the usual input to :class:`FalsificationEngine` (bounded by its
    ``max_attempts``)."""
    seed = start
    while True:
        yield make(seed)
        seed += 1
