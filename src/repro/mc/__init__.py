"""Model-checking substrate: system model, baseline searches, properties.

This package is the MaceMC stand-in: global states (Figure 4), the
exhaustive breadth-first search of Figure 5, random walks, and the safety
property framework.  The paper's own contribution — consequence prediction —
lives in :mod:`repro.core` and is built on the same primitives.
"""

from .global_state import ErrorNotification, GlobalState, NodeLocal
from ..properties.base import (
    PropertyViolation,
    SafetyProperty,
    check_all,
    node_property,
)
from .search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from .transition import TransitionConfig, TransitionSystem
from .exhaustive import find_errors
from .falsify import (
    FalsificationEngine,
    FalsificationResult,
    MinimizationResult,
    greedy_minimize,
    seeded_candidates,
)
from .random_walk import random_walk_search
from .parallel import (
    ParallelEngine,
    PortfolioResult,
    SearchEngine,
    SearchKind,
    SerialEngine,
    make_engine,
    run_portfolio,
)

__all__ = [
    "ErrorNotification",
    "GlobalState",
    "NodeLocal",
    "PropertyViolation",
    "SafetyProperty",
    "check_all",
    "node_property",
    "PredictedViolation",
    "SearchBudget",
    "SearchResult",
    "SearchStats",
    "TransitionConfig",
    "TransitionSystem",
    "find_errors",
    "FalsificationEngine",
    "FalsificationResult",
    "MinimizationResult",
    "greedy_minimize",
    "seeded_candidates",
    "random_walk_search",
    "ParallelEngine",
    "PortfolioResult",
    "SearchEngine",
    "SearchKind",
    "SerialEngine",
    "make_engine",
    "run_portfolio",
]
