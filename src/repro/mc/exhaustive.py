"""Exhaustive breadth-first state-space search (Figure 5) — the MaceMC
baseline CrystalBall is compared against in Section 5.3.

The search starts from ``firstState`` (the initial system state in the
classic setting, or any supplied state for prefix-based search), explores
reachable global states in breadth-first order, caches visited-state hashes,
and reports every state that violates a safety property together with the
event path that reaches it.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from .global_state import GlobalState
from ..properties import SafetyProperty, check_all
from .search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from .transition import TransitionSystem


def find_errors(
    system: TransitionSystem,
    first_state: GlobalState,
    properties: Sequence[SafetyProperty],
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Run the exhaustive search of Figure 5.

    Parameters
    ----------
    system:
        Transition system providing successor states.
    first_state:
        State the search starts from.
    properties:
        Safety properties to check in every visited state.
    budget:
        Stop criterion (state, depth and wall-clock bounds).
    """
    budget = budget or SearchBudget()
    stats = SearchStats()
    violations: list[PredictedViolation] = []
    # Report each (property, node) combination once per search run: the
    # first (shallowest) state that exhibits it.  Without this, a violation
    # already present in the start state would be re-reported in every
    # explored state, drowning genuinely new predictions.
    reported: set[tuple] = set()

    explored: set[int] = set()
    # Hashes of states already sitting in the frontier: successors reachable
    # from several parents in one wave are enqueued only once.
    queued: set[int] = set()
    frontier: deque[tuple[GlobalState, int, tuple]] = deque()
    frontier.append((first_state, 0, ()))
    queued.add(first_state.state_hash())
    stats.frontier_bytes = first_state.size_bytes()
    stats.peak_memory_bytes = stats.frontier_bytes

    while frontier and not budget.exhausted(stats):
        state, depth, path = frontier.popleft()
        stats.frontier_bytes -= state.size_bytes()
        state_hash = state.state_hash()
        if state_hash in explored:
            stats.duplicate_states += 1
            continue
        explored.add(state_hash)
        if budget.record_visited_hashes:
            stats.note_visited_hash(state_hash)
        stats.explored_hash_bytes = 8 * len(explored)
        stats.record_visit(depth)

        for violation in check_all(properties, state):
            key = (violation.property_name, violation.node)
            if key in reported:
                continue
            reported.add(key)
            violations.append(
                PredictedViolation(violation=violation, path=path,
                                   depth=depth, state_hash=state_hash)
            )
        if violations and budget.stop_at_first_violation:
            break

        if not budget.depth_allowed(depth + 1):
            continue

        for event in system.enabled_events(state):
            next_state = system.apply(state, event)
            stats.transitions_applied += 1
            next_hash = next_state.state_hash()
            if next_hash in explored or next_hash in queued:
                stats.duplicate_states += 1
                continue
            queued.add(next_hash)
            frontier.append((next_state, depth + 1, path + (event,)))
            stats.states_enqueued += 1
            stats.frontier_bytes += next_state.size_bytes()
            stats.peak_memory_bytes = max(stats.peak_memory_bytes,
                                          stats.frontier_bytes + stats.explored_hash_bytes)

    stats.touch_clock()
    return SearchResult(violations=violations, stats=stats, start_state=first_state)
