"""Random-walk state exploration — MaceMC's random-walk mode (Section 5.3).

Instead of exhaustively enumerating successors, each walk repeatedly picks a
uniformly random enabled event and follows it up to a depth bound.  Random
walks reach much greater depths than exhaustive search but provide no
coverage guarantee; the paper reports that this mode found some, but not
all, of the bugs CrystalBall found.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .global_state import GlobalState
from ..properties import SafetyProperty, check_all
from .search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from .transition import TransitionSystem


def random_walk_search(
    system: TransitionSystem,
    first_state: GlobalState,
    properties: Sequence[SafetyProperty],
    *,
    walks: int = 100,
    walk_depth: int = 30,
    seed: int = 0,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Run ``walks`` independent random walks of at most ``walk_depth`` steps."""
    budget = budget or SearchBudget(max_states=None)
    stats = SearchStats()
    rng = random.Random(seed)
    violations: list[PredictedViolation] = []
    seen_violation_hashes: set[int] = set()

    for _ in range(walks):
        if budget.exhausted(stats):
            break
        state = first_state.clone()
        path: tuple = ()
        for depth in range(walk_depth + 1):
            stats.record_visit(depth)
            state_hash = state.state_hash()
            for violation in check_all(properties, state):
                if (state_hash, violation.property_name) in seen_violation_hashes:
                    continue
                seen_violation_hashes.add((state_hash, violation.property_name))
                violations.append(
                    PredictedViolation(violation=violation, path=path,
                                       depth=depth, state_hash=state_hash)
                )
            if violations and budget.stop_at_first_violation:
                stats.touch_clock()
                return SearchResult(violations=violations, stats=stats,
                                    start_state=first_state)
            if depth == walk_depth or budget.exhausted(stats):
                break
            events = system.enabled_events(state)
            if not events:
                break
            event = rng.choice(events)
            state = system.apply(state, event)
            stats.transitions_applied += 1
            path = path + (event,)

    stats.touch_clock()
    return SearchResult(violations=violations, stats=stats, start_state=first_state)
