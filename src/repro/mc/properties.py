"""Safety-property framework — compatibility shim.

The property layer moved to :mod:`repro.properties`, which adds the global
registry, severities/tags, cross-node and bounded-liveness combinators and
structured violation records.  This module keeps the historical import
surface (``repro.mc.properties`` / ``repro.mc``) working unchanged: the
names below are the same objects the new package exports, so properties
built through either path are interchangeable.
"""

from __future__ import annotations

from ..properties.base import (
    NodeScopedProperty,
    PropertyViolation,
    SafetyProperty,
    check_all,
    node_property,
    safety_properties,
)

__all__ = [
    "NodeScopedProperty",
    "PropertyViolation",
    "SafetyProperty",
    "check_all",
    "node_property",
    "safety_properties",
]
