"""Deprecated shim: the property framework moved to :mod:`repro.properties`.

The property layer now lives in ``repro.properties``, which adds the
global registry, severities/tags, cross-node and bounded-liveness
combinators and structured violation records.  This module keeps the
historical ``repro.mc.properties`` import surface working one release
longer.  Each name warns on *use* (not on import) so merely importing
legacy code does not trip ``-W error::DeprecationWarning`` runs; the
wrapped objects are the same classes the new package exports, so
properties built through either path stay interchangeable.
"""

from __future__ import annotations

import warnings
from typing import Any

from ..properties import base as _base


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.mc.properties.{name} has moved to repro.properties; "
        f"import {name} from repro.properties instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SafetyProperty(_base.SafetyProperty):
    """Deprecated alias of :class:`repro.properties.SafetyProperty`."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _warn("SafetyProperty")
        super().__init__(*args, **kwargs)


class NodeScopedProperty(_base.NodeScopedProperty):
    """Deprecated alias of :class:`repro.properties.NodeScopedProperty`."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _warn("NodeScopedProperty")
        super().__init__(*args, **kwargs)


class PropertyViolation(_base.PropertyViolation):
    """Deprecated alias of :class:`repro.properties.PropertyViolation`."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _warn("PropertyViolation")
        super().__init__(*args, **kwargs)


def node_property(*args: Any, **kwargs: Any) -> "_base.NodeScopedProperty":
    """Deprecated alias of :func:`repro.properties.node_property`."""
    _warn("node_property")
    return _base.node_property(*args, **kwargs)


def check_all(*args: Any, **kwargs: Any) -> list:
    """Deprecated alias of :func:`repro.properties.check_all`."""
    _warn("check_all")
    return _base.check_all(*args, **kwargs)


def safety_properties(*args: Any, **kwargs: Any) -> list:
    """Deprecated alias of :func:`repro.properties.safety_properties`."""
    _warn("safety_properties")
    return _base.safety_properties(*args, **kwargs)


__all__ = [
    "NodeScopedProperty",
    "PropertyViolation",
    "SafetyProperty",
    "check_all",
    "node_property",
    "safety_properties",
]
