"""Safety-property framework.

Properties are predicates over :class:`~repro.mc.global_state.GlobalState`.
The same property objects are checked by the model checkers (exhaustive
search, random walks, consequence prediction), by the live property monitor
(counting inconsistencies the deployed system actually reaches), and by the
immediate safety check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..runtime.address import Address
from ..runtime.state import NodeState
from .global_state import GlobalState


@dataclass(frozen=True)
class PropertyViolation:
    """One violation of one safety property in one global state."""

    property_name: str
    node: Optional[Address]
    detail: str

    def __str__(self) -> str:
        where = f" at {self.node}" if self.node is not None else ""
        return f"[{self.property_name}]{where}: {self.detail}"


class SafetyProperty:
    """A named safety property over global states.

    ``check_fn`` receives the global state and returns an iterable of
    violation detail strings paired with the offending node (or ``None`` for
    system-wide violations).
    """

    def __init__(
        self,
        name: str,
        check_fn: Callable[[GlobalState], Iterable[tuple[Optional[Address], str]]],
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description or name
        self._check_fn = check_fn

    def violations(self, state: GlobalState) -> list[PropertyViolation]:
        """All violations of this property in ``state``."""
        return [
            PropertyViolation(property_name=self.name, node=node, detail=detail)
            for node, detail in self._check_fn(state)
        ]

    def holds(self, state: GlobalState) -> bool:
        """True when the property is satisfied in ``state``."""
        return not self.violations(state)

    def __repr__(self) -> str:
        return f"<SafetyProperty {self.name}>"


def node_property(
    name: str,
    check_fn: Callable[[Address, NodeState, frozenset[str], GlobalState],
                       Iterable[str]],
    description: str = "",
) -> SafetyProperty:
    """Build a property checked independently at every node.

    ``check_fn`` receives the node address, its protocol state, its armed
    timers and the full global state (for cross-node checks), and yields a
    violation description per problem found at that node.
    """

    def check(state: GlobalState) -> Iterable[tuple[Optional[Address], str]]:
        for addr, local in state.nodes.items():
            for detail in check_fn(addr, local.state, local.timers, state):
                yield addr, detail

    return SafetyProperty(name=name, check_fn=check, description=description)


def check_all(properties: Sequence[SafetyProperty],
              state: GlobalState) -> list[PropertyViolation]:
    """All violations of all ``properties`` in ``state``."""
    found: list[PropertyViolation] = []
    for prop in properties:
        found.extend(prop.violations(state))
    return found
