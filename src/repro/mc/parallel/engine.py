"""Search-engine abstraction: one interface over serial and parallel search.

CrystalBall runs the same breadth-first exploration in three places — the
exhaustive baseline of Figure 5, consequence prediction of Figure 8, and the
filter-safety re-checks — but the seed implementation hard-wired each caller
to a single-threaded function.  :class:`SearchEngine` decouples *what* is
searched (a :class:`~repro.mc.transition.TransitionSystem`, a start state,
properties, a budget) from *how* it is executed, so the controller, the
benchmarks and the examples can switch between
:class:`SerialEngine` and :class:`~repro.mc.parallel.sharded.ParallelEngine`
via configuration without any behaviour change by default.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Protocol, Sequence, Union, runtime_checkable

from ..global_state import GlobalState
from ..properties import SafetyProperty
from ..search import SearchBudget, SearchResult
from ..transition import TransitionSystem


class SearchKind(enum.Enum):
    """Which successor-enumeration rule a search run uses."""

    #: Figure 5: expand every enabled event of every visited state.
    EXHAUSTIVE = "exhaustive"
    #: Figure 8: expand internal actions only for unseen node-local states.
    CONSEQUENCE = "consequence"


@runtime_checkable
class SearchEngine(Protocol):
    """Anything that can execute a state-space search to completion."""

    def run(
        self,
        system: TransitionSystem,
        first_state: GlobalState,
        properties: Sequence[SafetyProperty],
        budget: Optional[SearchBudget] = None,
        *,
        kind: SearchKind = SearchKind.EXHAUSTIVE,
        event_filter: Optional[Callable] = None,
    ) -> SearchResult:
        ...  # pragma: no cover - protocol signature


class SerialEngine:
    """The seed behaviour: run the search inline on the calling thread."""

    def run(
        self,
        system: TransitionSystem,
        first_state: GlobalState,
        properties: Sequence[SafetyProperty],
        budget: Optional[SearchBudget] = None,
        *,
        kind: SearchKind = SearchKind.EXHAUSTIVE,
        event_filter: Optional[Callable] = None,
    ) -> SearchResult:
        if kind is SearchKind.CONSEQUENCE:
            # Imported lazily: repro.core is built on repro.mc, so a
            # module-level import here would be circular.
            from ...core.consequence import consequence_prediction

            return consequence_prediction(system, first_state, properties, budget,
                                          event_filter=event_filter)
        from ..exhaustive import find_errors

        if event_filter is not None:
            raise ValueError("event filters only apply to consequence prediction")
        return find_errors(system, first_state, properties, budget)

    def __repr__(self) -> str:
        return "SerialEngine()"


def make_engine(spec: Union[str, SearchEngine, None]) -> SearchEngine:
    """Build a search engine from a config spec.

    Accepted specs: ``"serial"`` (or ``None``), ``"parallel"`` (one worker
    per CPU), ``"parallel:N"`` (exactly ``N`` workers), or an already-built
    :class:`SearchEngine`, which is returned unchanged.
    """
    if spec is None:
        return SerialEngine()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        name = name.strip().lower()
        if name == "serial":
            return SerialEngine()
        if name == "parallel":
            from .sharded import ParallelEngine

            workers = None
            if arg:
                try:
                    workers = int(arg)
                except ValueError:
                    raise ValueError(
                        f"bad worker count in engine spec {spec!r}; "
                        f"expected 'parallel' or 'parallel:<N>'") from None
            return ParallelEngine(num_workers=workers)
        raise ValueError(f"unknown engine spec {spec!r}")
    if isinstance(spec, SearchEngine):
        return spec
    raise TypeError(f"cannot build a search engine from {spec!r}")
