"""Portfolio search: race complementary strategies from one snapshot.

Section 5.3 of the paper compares three ways of spending a model-checking
budget — exhaustive breadth-first search, consequence prediction, and deep
random walks — and finds they surface different bugs.  A portfolio run
launches all of them concurrently from the same snapshot under one shared
wall-clock budget, in separate forked processes, and either returns as soon
as any strategy predicts a violation (``first_violation_wins``) or collects
the union of everything found before the deadline.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..global_state import GlobalState
from ..properties import SafetyProperty
from ..search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from ..transition import TransitionSystem

#: A named search strategy: (name, callable returning a SearchResult).
Strategy = tuple[str, Callable[[], SearchResult]]


@dataclass
class PortfolioResult:
    """Outcome of one portfolio run."""

    #: Per-strategy results; strategies killed at the deadline are absent.
    results: dict[str, SearchResult] = field(default_factory=dict)
    #: Strategies that did not finish before the deadline.
    unfinished: tuple[str, ...] = ()
    #: Tracebacks of strategies that raised instead of returning a result.
    errors: dict[str, str] = field(default_factory=dict)
    #: First strategy whose result contained a violation.
    winner: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def found_violation(self) -> bool:
        return any(r.found_violation for r in self.results.values())

    def union_violations(self) -> list[PredictedViolation]:
        """All predicted violations, one per (property, node), shallowest
        (then earliest-finishing strategy) first."""
        best: dict[tuple, PredictedViolation] = {}
        for name in sorted(self.results):
            for violation in self.results[name].violations:
                key = (violation.violation.property_name, violation.violation.node)
                if key not in best or violation.depth < best[key].depth:
                    best[key] = violation
        return sorted(best.values(),
                      key=lambda v: (v.depth, v.violation.property_name,
                                     repr(v.violation.node)))

    def merged_result(self, start_state: GlobalState) -> SearchResult:
        """Fold the portfolio into one :class:`SearchResult` (the shape the
        controller consumes)."""
        stats = SearchStats()
        for result in self.results.values():
            stats.states_visited += result.stats.states_visited
            stats.states_enqueued += result.stats.states_enqueued
            stats.transitions_applied += result.stats.transitions_applied
            stats.duplicate_states += result.stats.duplicate_states
            stats.max_depth_reached = max(stats.max_depth_reached,
                                          result.stats.max_depth_reached)
        stats.elapsed_seconds = self.elapsed_seconds
        return SearchResult(violations=self.union_violations(), stats=stats,
                            start_state=start_state)


def default_strategies(
    system: TransitionSystem,
    first_state: GlobalState,
    properties: Sequence[SafetyProperty],
    budget: SearchBudget,
    *,
    walks: int = 2,
    walk_depth: int = 30,
    seed: int = 0,
) -> list[Strategy]:
    """Exhaustive search + consequence prediction + ``walks`` random walks."""
    from ...core.consequence import consequence_prediction
    from ..exhaustive import find_errors
    from ..random_walk import random_walk_search

    strategies: list[Strategy] = [
        ("exhaustive",
         lambda: find_errors(system, first_state, properties, budget)),
        ("consequence",
         lambda: consequence_prediction(system, first_state, properties, budget)),
    ]
    for i in range(walks):
        walk_seed = seed + i
        strategies.append((
            f"walk-{walk_seed}",
            lambda walk_seed=walk_seed: random_walk_search(
                system, first_state, properties, walks=50,
                walk_depth=walk_depth, seed=walk_seed, budget=budget),
        ))
    return strategies


def run_portfolio(
    system: TransitionSystem,
    first_state: GlobalState,
    properties: Sequence[SafetyProperty],
    budget: Optional[SearchBudget] = None,
    *,
    wall_clock_seconds: Optional[float] = None,
    first_violation_wins: bool = False,
    walks: int = 2,
    walk_depth: int = 30,
    seed: int = 0,
    strategies: Optional[Sequence[Strategy]] = None,
) -> PortfolioResult:
    """Race search strategies from ``first_state`` under a shared deadline.

    ``wall_clock_seconds`` caps the whole portfolio; it is also folded into
    each strategy's own budget (as ``max_seconds``) so well-behaved searches
    stop themselves.  Strategies still running at the deadline are
    terminated and listed in :attr:`PortfolioResult.unfinished`; strategies
    that raise are reported in :attr:`PortfolioResult.errors`.

    Without fork support the strategies run sequentially; the deadline is
    checked between strategies, so a strategy started close to the deadline
    can overshoot it by up to its own ``max_seconds``.
    """
    budget = budget or SearchBudget()
    if wall_clock_seconds is not None:
        per_strategy_seconds = (wall_clock_seconds if budget.max_seconds is None
                                else min(budget.max_seconds, wall_clock_seconds))
        budget = dataclasses.replace(budget, max_seconds=per_strategy_seconds)
    if strategies is None:
        strategies = default_strategies(system, first_state, properties, budget,
                                        walks=walks, walk_depth=walk_depth,
                                        seed=seed)

    started = time.monotonic()
    if "fork" not in multiprocessing.get_all_start_methods():
        return _run_sequential(strategies, started, wall_clock_seconds,
                               first_violation_wins)

    ctx = multiprocessing.get_context("fork")
    result_queue = ctx.Queue()
    processes: dict[str, multiprocessing.Process] = {}
    for name, runner in strategies:
        proc = ctx.Process(target=_strategy_main,
                           args=(name, runner, result_queue), daemon=True)
        proc.start()
        processes[name] = proc

    outcome = PortfolioResult()
    pending = set(processes)
    deadline = (started + wall_clock_seconds
                if wall_clock_seconds is not None else None)
    while pending:
        timeout = 0.5
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        try:
            message = result_queue.get(timeout=max(timeout, 0.01))
        except queue_module.Empty:
            if deadline is not None and time.monotonic() >= deadline:
                break
            if all(not processes[name].is_alive() for name in pending):
                break  # crashed strategies will never report
            continue
        name, result, error = message
        pending.discard(name)
        if error is not None:
            outcome.errors[name] = error
            continue
        outcome.results[name] = result
        if result.found_violation and outcome.winner is None:
            outcome.winner = name
            if first_violation_wins:
                break

    for name in pending:
        if processes[name].is_alive():
            processes[name].terminate()
    for proc in processes.values():
        proc.join(timeout=2.0)
    outcome.unfinished = tuple(sorted(pending))
    outcome.elapsed_seconds = time.monotonic() - started
    return outcome


def _run_sequential(strategies, started, wall_clock_seconds,
                    first_violation_wins) -> PortfolioResult:
    outcome = PortfolioResult()
    skipped = []
    for name, runner in strategies:
        if (wall_clock_seconds is not None
                and time.monotonic() - started >= wall_clock_seconds):
            skipped.append(name)
            continue
        try:
            result = runner()
        except Exception:
            outcome.errors[name] = traceback.format_exc()
            continue
        outcome.results[name] = result
        if result.found_violation and outcome.winner is None:
            outcome.winner = name
            if first_violation_wins:
                skipped.extend(n for n, _ in strategies
                               if n not in outcome.results)
                break
    outcome.unfinished = tuple(sorted(skipped))
    outcome.elapsed_seconds = time.monotonic() - started
    return outcome


def _strategy_main(name: str, runner: Callable[[], SearchResult],
                   result_queue) -> None:
    try:
        result_queue.put((name, runner(), None))
    except Exception:
        result_queue.put((name, None, traceback.format_exc()))
