"""Parallel model-checking engine.

Everything needed to spread a :class:`~repro.mc.transition.TransitionSystem`
search over multiple cores:

* :class:`~repro.mc.parallel.engine.SearchEngine` — the engine abstraction,
  with :class:`~repro.mc.parallel.engine.SerialEngine` (seed behaviour) and
  :func:`~repro.mc.parallel.engine.make_engine` (config-spec parsing);
* :class:`~repro.mc.parallel.sharded.ParallelEngine` — sharded-frontier BFS
  over a forked worker pool;
* :func:`~repro.mc.parallel.portfolio.run_portfolio` — race exhaustive
  search, consequence prediction and random walks from one snapshot.
"""

from .engine import SearchEngine, SearchKind, SerialEngine, make_engine
from .portfolio import PortfolioResult, default_strategies, run_portfolio
from .sharded import ParallelEngine

__all__ = [
    "SearchEngine",
    "SearchKind",
    "SerialEngine",
    "make_engine",
    "ParallelEngine",
    "PortfolioResult",
    "default_strategies",
    "run_portfolio",
]
