"""Sharded-frontier parallel breadth-first search.

The state space is partitioned across a pool of worker processes by
``state_hash() % num_workers``: each worker owns one shard, keeps the
explored-hash set for it, and is the only process that ever visits a state
of that shard.  Workers expand the states of their shard, route every
successor to its owner, and hand the batches back through the coordinator
at round boundaries (batched cross-shard handoff).  The coordinator
enforces the :class:`~repro.mc.search.SearchBudget`, merges per-worker
statistics into one :class:`~repro.mc.search.SearchStats`, and deduplicates
reported violations exactly like the serial searches do.

The search is level-synchronised: all states of depth ``d`` are visited
before any state of depth ``d + 1`` is dispatched, so reported depths are
minimal and a depth-bounded parallel search visits exactly the states the
serial breadth-first search visits.  Within one level, visit order across
shards is nondeterministic; with ``stop_at_first_violation`` the search
stops at the end of the level that produced a violation instead of
mid-expansion.

Workers are forked per run, so transition systems, safety properties (which
close over protocol code and are therefore not picklable) and event filters
are inherited rather than serialised; only frontier states, successor
batches and results cross process boundaries.  Because the children inherit
the parent's hash seed, ``state_hash()`` values — and therefore shard
assignment — agree across the pool.

For consequence prediction (Figure 8) the ``localExplored`` set is global
to the search; workers exchange newly-expanded local-state hashes through
the coordinator at round boundaries.  Two workers can therefore expand the
internal actions of the same node-local state within one round, so the
parallel search explores a *superset* of the serial pruning — every
reported path is still a real handler sequence, it is only the pruning
that is slightly weaker.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from collections import defaultdict
from typing import Callable, Optional, Sequence

from ...runtime.serialization import freeze
from ..global_state import GlobalState
from ..properties import SafetyProperty, check_all
from ..search import PredictedViolation, SearchBudget, SearchResult, SearchStats
from ..transition import TransitionSystem
from .engine import SearchKind, SerialEngine

#: One frontier entry: (state, depth, event path from the start state).
_Item = tuple


class ParallelEngine:
    """Execute searches across a sharded-frontier worker pool.

    Parameters
    ----------
    num_workers:
        Shard count; defaults to the machine's CPU count.
    batch_size:
        Maximum frontier items dispatched to one worker per round.  Smaller
        batches tighten budget enforcement (budgets are checked between
        rounds); larger batches amortise inter-process transfer.
    metrics:
        Optional ``repro.obs`` :class:`~repro.obs.metrics.MetricsRegistry`.
        When set (the controller sets it for instrumented runs), every
        search profiles its coordination overhead into ``parallel.*``
        metrics: fork time, per-round barrier waits, cross-shard handoff
        volume.  Mutable — assigning ``engine.metrics`` later also works.
    """

    def __init__(self, num_workers: Optional[int] = None,
                 batch_size: int = 4000, *, metrics=None) -> None:
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers if num_workers is not None \
            else (os.cpu_count() or 1)
        self.batch_size = batch_size
        self.metrics = metrics

    def __repr__(self) -> str:
        return f"ParallelEngine(num_workers={self.num_workers})"

    def run(
        self,
        system: TransitionSystem,
        first_state: GlobalState,
        properties: Sequence[SafetyProperty],
        budget: Optional[SearchBudget] = None,
        *,
        kind: SearchKind = SearchKind.EXHAUSTIVE,
        event_filter: Optional[Callable] = None,
    ) -> SearchResult:
        if event_filter is not None and kind is not SearchKind.CONSEQUENCE:
            # Same contract as SerialEngine: filters vet steering actions
            # during consequence prediction only.
            raise ValueError("event filters only apply to consequence prediction")
        if "fork" not in multiprocessing.get_all_start_methods():
            # Properties close over protocol code and cannot be pickled to
            # spawn-based workers; without fork the serial engine is the
            # only sound executor.
            return SerialEngine().run(system, first_state, properties, budget,
                                      kind=kind, event_filter=event_filter)
        budget = budget or SearchBudget()
        return _coordinate(system, first_state, properties, budget, kind,
                           event_filter, self.num_workers, self.batch_size,
                           self.metrics)


# --------------------------------------------------------------------- coordinator


def _coordinate(
    system: TransitionSystem,
    first_state: GlobalState,
    properties: Sequence[SafetyProperty],
    budget: SearchBudget,
    kind: SearchKind,
    event_filter: Optional[Callable],
    num_workers: int,
    batch_size: int,
    metrics=None,
) -> SearchResult:
    ctx = multiprocessing.get_context("fork")
    task_queues = [ctx.SimpleQueue() for _ in range(num_workers)]
    result_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(wid, num_workers, system, properties, budget, kind,
                  event_filter, task_queues[wid], result_queue),
            daemon=True,
        )
        for wid in range(num_workers)
    ]
    fork_started = time.perf_counter()
    for proc in workers:
        proc.start()
    if metrics is not None:
        metrics.inc("parallel.searches")
        metrics.observe("parallel.fork_seconds",
                        time.perf_counter() - fork_started)

    stats = SearchStats()
    violations: list[PredictedViolation] = []
    reported: set[tuple] = set()
    explored_counts = [0] * num_workers
    # Consequence prediction's localExplored set, merged across shards at
    # round boundaries.
    global_locals: set[int] = set()
    locals_known: list[set[int]] = [set() for _ in range(num_workers)]

    current: list[list[_Item]] = [[] for _ in range(num_workers)]
    next_level: list[list[_Item]] = [[] for _ in range(num_workers)]
    current[first_state.state_hash() % num_workers].append((first_state, 0, ()))
    # Maintained incrementally: workers report the bytes of the successors
    # they emit, the coordinator subtracts each dispatched batch (state
    # sizes are cached, so the per-batch sum is cheap attribute access).
    frontier_bytes = first_state.size_bytes()

    try:
        while True:
            stats.frontier_bytes = frontier_bytes
            stats.peak_memory_bytes = max(
                stats.peak_memory_bytes,
                stats.frontier_bytes + stats.explored_hash_bytes)
            stats.touch_clock()
            if budget.exhausted(stats):
                break

            if all(not shard for shard in current):
                if violations and budget.stop_at_first_violation:
                    break
                if all(not shard for shard in next_level):
                    break
                current, next_level = next_level, [[] for _ in range(num_workers)]
                continue

            batches = [shard[:batch_size] for shard in current]
            if budget.max_states is not None:
                _trim(batches, budget.max_states - stats.states_visited)
            dispatched: list[int] = []
            dispatched_items = 0
            dispatched_bytes = 0
            for wid, batch in enumerate(batches):
                if not batch:
                    continue
                del current[wid][:len(batch)]
                batch_bytes = sum(item[0].size_bytes() for item in batch)
                frontier_bytes -= batch_bytes
                dispatched_items += len(batch)
                dispatched_bytes += batch_bytes
                local_delta = global_locals - locals_known[wid]
                locals_known[wid] |= local_delta
                task_queues[wid].put(("round", batch, sorted(local_delta)))
                dispatched.append(wid)

            barrier_started = time.perf_counter()
            round_violations: list[PredictedViolation] = []
            for reply in _collect(result_queue, workers, len(dispatched)):
                (wid, outgoing, found, delta, new_locals, explored_len) = reply
                explored_counts[wid] = explored_len
                _merge_stats(stats, delta)
                frontier_bytes += delta["out_bytes"]
                round_violations.extend(found)
                global_locals.update(new_locals)
                locals_known[wid].update(new_locals)
                for owner, items in outgoing.items():
                    next_level[owner].extend(items)
            stats.explored_hash_bytes = 8 * sum(explored_counts)
            if metrics is not None:
                metrics.inc("parallel.rounds")
                metrics.inc("parallel.handoff_items", dispatched_items)
                metrics.inc("parallel.handoff_bytes", dispatched_bytes)
                metrics.observe("parallel.barrier_wait_seconds",
                                time.perf_counter() - barrier_started)

            # The serial searches report the first (shallowest) state per
            # (property, node); sorting keeps the choice deterministic when
            # several shards hit the same key in one round.
            round_violations.sort(
                key=lambda v: (v.depth, v.violation.property_name,
                               repr(v.violation.node)))
            for violation in round_violations:
                key = (violation.violation.property_name, violation.violation.node)
                if key in reported:
                    continue
                reported.add(key)
                violations.append(violation)
    finally:
        for task_queue in task_queues:
            task_queue.put(("stop",))
        for proc in workers:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    stats.frontier_bytes = frontier_bytes
    stats.touch_clock()
    return SearchResult(violations=violations, stats=stats, start_state=first_state)


def _trim(batches: list[list[_Item]], remaining: int) -> None:
    """Cap the total items dispatched this round at ``remaining`` visits."""
    for wid, batch in enumerate(batches):
        take = max(0, min(len(batch), remaining))
        batches[wid] = batch[:take]
        remaining -= take


def _collect(result_queue, workers, expected: int):
    """Yield ``expected`` round replies, watching for dead workers."""
    received = 0
    while received < expected:
        try:
            message = result_queue.get(timeout=1.0)
        except queue_module.Empty:
            dead = [p for p in workers if not p.is_alive()]
            if dead:
                raise RuntimeError(
                    f"{len(dead)} search worker(s) died mid-round")
            continue
        if message[0] == "error":
            raise RuntimeError(f"search worker failed:\n{message[2]}")
        yield message[1:]
        received += 1


def _merge_stats(stats: SearchStats, delta: dict) -> None:
    stats.states_visited += delta["visited"]
    stats.states_enqueued += delta["enqueued"]
    stats.transitions_applied += delta["transitions"]
    stats.duplicate_states += delta["duplicates"]
    stats.internal_actions_skipped += delta["skipped"]
    for state_hash in delta["hashes"]:
        stats.note_visited_hash(state_hash)
    for depth, count in delta["by_depth"].items():
        stats.states_by_depth[depth] = stats.states_by_depth.get(depth, 0) + count
        stats.max_depth_reached = max(stats.max_depth_reached, depth)


# ------------------------------------------------------------------------- worker


def _worker_main(
    worker_id: int,
    num_workers: int,
    system: TransitionSystem,
    properties: Sequence[SafetyProperty],
    budget: SearchBudget,
    kind: SearchKind,
    event_filter: Optional[Callable],
    task_queue,
    result_queue,
) -> None:
    explored: set[int] = set()
    #: hashes this worker has already routed to an owner (the queued-hash
    #: dedup of the serial searches, split per producing worker).
    emitted: set[int] = set()
    local_explored: set[int] = set()
    reported: set[tuple] = set()
    try:
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                return
            _, items, shared_locals = message
            local_explored.update(shared_locals)
            result_queue.put(_process_round(
                worker_id, num_workers, system, properties, budget, kind,
                event_filter, items, explored, emitted, local_explored,
                reported))
    except Exception:  # pragma: no cover - surfaced in the coordinator
        result_queue.put(("error", worker_id, traceback.format_exc()))


def _process_round(
    worker_id: int,
    num_workers: int,
    system: TransitionSystem,
    properties: Sequence[SafetyProperty],
    budget: SearchBudget,
    kind: SearchKind,
    event_filter: Optional[Callable],
    items: Sequence[_Item],
    explored: set[int],
    emitted: set[int],
    local_explored: set[int],
    reported: set[tuple],
) -> tuple:
    outgoing: dict[int, list[_Item]] = defaultdict(list)
    found: list[PredictedViolation] = []
    new_locals: list[int] = []
    delta = {"visited": 0, "enqueued": 0, "transitions": 0, "duplicates": 0,
             "skipped": 0, "by_depth": defaultdict(int), "hashes": [],
             "out_bytes": 0}

    for state, depth, path in items:
        state_hash = state.state_hash()
        if state_hash in explored:
            delta["duplicates"] += 1
            continue
        explored.add(state_hash)
        delta["visited"] += 1
        delta["by_depth"][depth] += 1
        if budget.record_visited_hashes:
            delta["hashes"].append(state_hash)

        for violation in check_all(properties, state):
            key = (violation.property_name, violation.node)
            if key in reported:
                continue
            reported.add(key)
            found.append(PredictedViolation(violation=violation, path=path,
                                            depth=depth, state_hash=state_hash))

        if not budget.depth_allowed(depth + 1):
            continue

        for event in _enabled_events(system, state, kind, local_explored,
                                     new_locals, delta):
            next_state = _apply(system, state, event, event_filter)
            delta["transitions"] += 1
            next_hash = next_state.state_hash()
            if next_hash in explored or next_hash in emitted:
                delta["duplicates"] += 1
                continue
            emitted.add(next_hash)
            # Summing here also primes the state's size cache, keeping the
            # coordinator's frontier accounting a cached attribute access.
            delta["out_bytes"] += next_state.size_bytes()
            outgoing[next_hash % num_workers].append(
                (next_state, depth + 1, path + (event,)))
            delta["enqueued"] += 1

    delta["by_depth"] = dict(delta["by_depth"])
    return ("round_done", worker_id, dict(outgoing), found, delta,
            new_locals, len(explored))


def _enabled_events(
    system: TransitionSystem,
    state: GlobalState,
    kind: SearchKind,
    local_explored: set[int],
    new_locals: list[int],
    delta: dict,
) -> list:
    if kind is SearchKind.EXHAUSTIVE:
        return system.enabled_events(state)
    # Consequence prediction (Figure 8): internal actions only for
    # node-local states not expanded before anywhere in the search.
    events = list(system.network_events(state))
    for addr in sorted(state.nodes):
        local_hash = hash((freeze(addr), state.nodes[addr].signature()))
        if local_hash in local_explored:
            delta["skipped"] += len(system.internal_events(state, addr))
            continue
        events.extend(system.internal_events(state, addr))
        local_explored.add(local_hash)
        new_locals.append(local_hash)
    return events


def _apply(system: TransitionSystem, state: GlobalState, event,
           event_filter: Optional[Callable]) -> GlobalState:
    if event_filter is not None:
        from ...runtime.simulator import FilterAction

        action = event_filter(event)
        if action in (FilterAction.DROP, FilterAction.DROP_AND_RESET):
            return system.apply_filtered(
                state, event,
                reset_connection=action is FilterAction.DROP_AND_RESET)
    return system.apply(state, event)
