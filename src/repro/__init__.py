"""repro — a reproduction of CrystalBall (NSDI 2009).

CrystalBall runs a model checker concurrently with a deployed distributed
system: each node collects a consistent snapshot of its neighbourhood, runs
*consequence prediction* to find future violations of safety properties, and
either reports them (deep online debugging) or installs event filters that
steer execution away from them (execution steering).

Package layout
--------------
``repro.runtime``
    Distributed-system substrate: protocols as state machines, discrete-event
    simulator, network model with TCP failure semantics, churn.
``repro.mc``
    Model-checking substrate: global states, exhaustive BFS (the MaceMC
    baseline), random walks.
``repro.properties``
    First-class property API: the global registry with namespaced ids,
    severities and tags, safety/cross-node/bounded-liveness combinators,
    and structured violation records.
``repro.core``
    CrystalBall itself: consequence prediction, checkpoint manager and
    consistent neighbourhood snapshots, controller, execution steering,
    immediate safety check.
``repro.systems``
    The services under test: RandTree, Chord, Bullet' and Paxos,
    re-implemented with the paper's inconsistencies (and the suggested
    fixes behind flags), plus two replicated-data families — op-based
    CRDT replicas and a quorum-replicated KV store with optimistic
    execution — whose buggy variants sit behind options.
``repro.sim``
    INET-like topology generation, workloads and traces.
``repro.analysis``
    Statistics and table/figure formatting used by the benchmark harness.
``repro.api``
    The unified experiment API: system registry, fluent ``Experiment``
    builder, structured ``RunReport`` and the ``python -m repro`` CLI.
``repro.faults``
    Fault injection: seeded nemesis scheduler, composable fault types and
    named presets.
``repro.campaign``
    Declarative sweeps over system × scenario × faults × seeds × modes,
    executed across a worker pool with a resumable JSONL result store.
``repro.obs``
    Observability: structured JSONL tracing, the metrics registry, stdlib
    logging wiring and trace analysis/export tooling.
"""

from . import (
    analysis,
    api,
    campaign,
    core,
    faults,
    mc,
    obs,
    properties,
    runtime,
    sim,
    systems,
)

__version__ = "1.5.0"

__all__ = ["analysis", "api", "campaign", "core", "faults", "mc", "obs",
           "properties", "runtime", "sim", "systems", "__version__"]
