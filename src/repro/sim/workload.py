"""Legacy workload drivers — superseded by :mod:`repro.api`.

:class:`OverlayWorkload` used to be the driver behind the live experiments
(Table 1, Section 5.4.1).  The machinery now lives in
:class:`repro.api.experiment.LiveRun` behind the fluent
:class:`repro.api.Experiment` builder; this module is kept as a thin
deprecation shim so existing imports keep working.  New code should write::

    from repro.api import Experiment

    report = (Experiment("randtree")
              .nodes(6).duration(300).churn(interval=60)
              .crystalball("steering").run())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.controller import (
    CrystalBallConfig,
    CrystalBallController,
    Mode,
)
from ..core.monitor import LivePropertyMonitor
from ..properties import SafetyProperty
from ..runtime.address import Address, make_addresses
from ..runtime.network import NetworkModel
from ..runtime.protocol import Protocol
from ..runtime.simulator import Simulator


@dataclass
class WorkloadResult:
    """Everything the benchmarks need from one live run.

    Superseded by :class:`repro.api.RunReport`, which carries the same
    aggregation helpers plus the full per-node stats surface and JSON
    serialization.
    """

    simulator: Simulator
    controllers: dict[Address, CrystalBallController]
    monitor: LivePropertyMonitor
    churn_events: int

    def total_predicted(self) -> int:
        return sum(c.stats.violations_predicted for c in self.controllers.values())

    def total_steered(self) -> int:
        return sum(c.stats.steering_modified_behavior
                   for c in self.controllers.values())

    def total_unhelpful(self) -> int:
        return sum(c.stats.steering_unhelpful for c in self.controllers.values())

    def total_isc_blocks(self) -> int:
        return sum(c.stats.isc_blocks for c in self.controllers.values())

    def total_filter_triggers(self) -> int:
        return sum(c.stats.filters_triggered for c in self.controllers.values())

    def distinct_violations_found(self) -> set[str]:
        found: set[str] = set()
        for controller in self.controllers.values():
            found |= controller.stats.distinct_violations
        return found

    def checkpoint_bytes(self) -> int:
        return sum(c.stats.checkpoint_bytes_sent for c in self.controllers.values())


@dataclass
class OverlayWorkload:
    """Deprecated: a live overlay deployment with staggered joins and churn.

    Delegates to :class:`repro.api.experiment.LiveRun`; use
    :class:`repro.api.Experiment` instead.
    """

    protocol_factory: Callable[[], Protocol]
    properties: Sequence[SafetyProperty]
    node_count: int = 6
    duration: float = 600.0
    join_spacing: float = 5.0
    churn_mean_interval: Optional[float] = 60.0
    crystalball_mode: Mode = Mode.OFF
    crystalball_config: Optional[CrystalBallConfig] = None
    #: which nodes run the model checker (None = all when CrystalBall is on).
    checker_nodes: Optional[Sequence[Address]] = None
    network: Optional[NetworkModel] = None
    seed: int = 0
    tick_interval: float = 10.0
    max_events: int = 500_000
    address_start: int = 1
    #: execution backend ("sim" or "tcp"); the shim shares LiveRun's path,
    #: so even legacy callers can deploy over real sockets.
    backend: str = "sim"

    def __post_init__(self) -> None:
        warnings.warn(
            "OverlayWorkload is deprecated; use repro.api.Experiment "
            "(or repro.api.LiveRun for a custom protocol factory) instead",
            DeprecationWarning, stacklevel=3)

    def addresses(self) -> list[Address]:
        return make_addresses(self.node_count, start=self.address_start)

    def run(self) -> WorkloadResult:
        from ..api.experiment import LiveRun

        report = LiveRun(
            protocol_factory=self.protocol_factory,
            properties=self.properties,
            node_count=self.node_count,
            duration=self.duration,
            join_spacing=self.join_spacing,
            churn_mean_interval=self.churn_mean_interval,
            crystalball_mode=self.crystalball_mode,
            crystalball_config=self.crystalball_config,
            checker_nodes=self.checker_nodes,
            network=self.network,
            seed=self.seed,
            tick_interval=self.tick_interval,
            max_events=self.max_events,
            address_start=self.address_start,
            backend=self.backend,
        ).run()
        return WorkloadResult(simulator=report.simulator,
                              controllers=report.controllers,
                              monitor=report.live_monitor,
                              churn_events=report.churn_events)
