"""Workload drivers for the live experiments.

These helpers assemble the runs the evaluation needs: a RandTree or Chord
deployment where nodes join over time and churn resets participants, with
optional CrystalBall controllers attached.  Both the deep-online-debugging
experiments (Table 1) and the execution-steering experiment (Section 5.4.1)
are built from :class:`OverlayWorkload`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.controller import (
    CrystalBallConfig,
    CrystalBallController,
    Mode,
    attach_crystalball,
)
from ..core.monitor import LivePropertyMonitor
from ..mc.properties import SafetyProperty
from ..runtime.address import Address, make_addresses
from ..runtime.churn import ChurnProcess
from ..runtime.network import NetworkModel
from ..runtime.protocol import Protocol
from ..runtime.simulator import Simulator


@dataclass
class WorkloadResult:
    """Everything the benchmarks need from one live run."""

    simulator: Simulator
    controllers: dict[Address, CrystalBallController]
    monitor: LivePropertyMonitor
    churn_events: int

    def total_predicted(self) -> int:
        return sum(c.stats.violations_predicted for c in self.controllers.values())

    def total_steered(self) -> int:
        return sum(c.stats.steering_modified_behavior
                   for c in self.controllers.values())

    def total_unhelpful(self) -> int:
        return sum(c.stats.steering_unhelpful for c in self.controllers.values())

    def total_isc_blocks(self) -> int:
        return sum(c.stats.isc_blocks for c in self.controllers.values())

    def total_filter_triggers(self) -> int:
        return sum(c.stats.filters_triggered for c in self.controllers.values())

    def distinct_violations_found(self) -> set[str]:
        found: set[str] = set()
        for controller in self.controllers.values():
            found |= controller.stats.distinct_violations
        return found

    def checkpoint_bytes(self) -> int:
        return sum(c.stats.checkpoint_bytes_sent for c in self.controllers.values())


@dataclass
class OverlayWorkload:
    """A live overlay deployment with staggered joins and churn."""

    protocol_factory: Callable[[], Protocol]
    properties: Sequence[SafetyProperty]
    node_count: int = 6
    duration: float = 600.0
    join_spacing: float = 5.0
    churn_mean_interval: Optional[float] = 60.0
    crystalball_mode: Mode = Mode.OFF
    crystalball_config: Optional[CrystalBallConfig] = None
    #: which nodes run the model checker (None = all when CrystalBall is on).
    checker_nodes: Optional[Sequence[Address]] = None
    network: Optional[NetworkModel] = None
    seed: int = 0
    tick_interval: float = 10.0
    max_events: int = 500_000
    address_start: int = 1

    def addresses(self) -> list[Address]:
        return make_addresses(self.node_count, start=self.address_start)

    def run(self) -> WorkloadResult:
        addresses = self.addresses()
        network = self.network or NetworkModel()
        sim = Simulator(self.protocol_factory, network, seed=self.seed,
                        tick_interval=self.tick_interval)
        for addr in addresses:
            sim.add_node(addr)

        controllers: dict[Address, CrystalBallController] = {}
        if self.crystalball_mode is not Mode.OFF:
            config = self.crystalball_config or CrystalBallConfig(
                mode=self.crystalball_mode)
            config.mode = self.crystalball_mode
            controllers = attach_crystalball(
                sim, self.properties, config=config, nodes=self.checker_nodes)

        monitor = LivePropertyMonitor(self.properties).install(sim)

        # Staggered joins: the bootstrap node first, then one node every
        # ``join_spacing`` seconds.
        for index, addr in enumerate(addresses):
            sim.schedule_app(1.0 + index * self.join_spacing, addr, "join", {})

        churn_events = 0
        if self.churn_mean_interval is not None:
            churn = ChurnProcess(nodes=addresses,
                                 mean_interval=self.churn_mean_interval,
                                 seed=self.seed + 7,
                                 stop_after=self.duration * 0.9)
            churn.install(sim)
            sim.run(until=self.duration, max_events=self.max_events)
            churn_events = churn.events_injected
        else:
            sim.run(until=self.duration, max_events=self.max_events)

        return WorkloadResult(simulator=sim, controllers=controllers,
                              monitor=monitor, churn_events=churn_events)
