"""Simulation support: INET-like topologies, workload drivers, trace tools."""

from .topology import InetTopology, TopologyConfig
from .trace import TraceSummary, filter_trace, format_trace, summarize
from .workload import OverlayWorkload, WorkloadResult

__all__ = [
    "InetTopology",
    "TopologyConfig",
    "TraceSummary",
    "filter_trace",
    "format_trace",
    "summarize",
    "OverlayWorkload",
    "WorkloadResult",
]
