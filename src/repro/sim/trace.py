"""Deprecated shim: event-trace utilities moved to :mod:`repro.obs`.

The summarize/filter/format helpers now live in
``repro.obs.trace_tools`` next to the structured JSONL trace tooling;
this module keeps the old import path working one release longer.  Each
name warns on *use* (not on import) so merely importing legacy code does
not trip ``-W error::DeprecationWarning`` runs.
"""

from __future__ import annotations

import warnings
from typing import Any

from ..obs import trace_tools as _tools


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.sim.trace.{name} has moved to repro.obs; "
        f"import {name} from repro.obs instead",
        DeprecationWarning,
        stacklevel=3,
    )


class TraceSummary(_tools.TraceSummary):
    """Deprecated alias of :class:`repro.obs.TraceSummary`."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _warn("TraceSummary")
        super().__init__(*args, **kwargs)


def summarize(trace: Any) -> "_tools.TraceSummary":
    """Deprecated alias of :func:`repro.obs.summarize`."""
    _warn("summarize")
    return _tools.summarize(trace)


def filter_trace(trace: Any, **kwargs: Any) -> list:
    """Deprecated alias of :func:`repro.obs.filter_trace`."""
    _warn("filter_trace")
    return _tools.filter_trace(trace, **kwargs)


def format_trace(trace: Any, **kwargs: Any) -> str:
    """Deprecated alias of :func:`repro.obs.format_trace`."""
    _warn("format_trace")
    return _tools.format_trace(trace, **kwargs)
