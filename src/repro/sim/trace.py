"""Event-trace utilities.

The live runtime can record every executed handler; these helpers filter and
summarise such traces for the examples and for debugging the scenarios the
paper walks through (Figures 2, 3, 9, 10, 11, 13).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..runtime.address import Address
from ..runtime.simulator import TraceRecord


@dataclass
class TraceSummary:
    """Aggregated view of a trace."""

    total_events: int
    by_kind: dict[str, int]
    by_node: dict[str, int]
    first_time: float
    last_time: float

    def duration(self) -> float:
        return max(0.0, self.last_time - self.first_time)


def summarize(trace: Sequence[TraceRecord]) -> TraceSummary:
    """Aggregate a trace into per-kind and per-node counts."""
    if not trace:
        return TraceSummary(total_events=0, by_kind={}, by_node={},
                            first_time=0.0, last_time=0.0)
    by_kind = Counter(record.kind for record in trace)
    by_node = Counter(str(record.node) for record in trace)
    return TraceSummary(
        total_events=len(trace),
        by_kind=dict(by_kind),
        by_node=dict(by_node),
        first_time=trace[0].time,
        last_time=trace[-1].time,
    )


def filter_trace(
    trace: Iterable[TraceRecord],
    *,
    node: Optional[Address] = None,
    kind: Optional[str] = None,
    contains: Optional[str] = None,
) -> list[TraceRecord]:
    """Select trace records by node, outcome kind and/or description text."""
    selected = []
    for record in trace:
        if node is not None and record.node != node:
            continue
        if kind is not None and record.kind != kind:
            continue
        if contains is not None and contains not in record.description:
            continue
        selected.append(record)
    return selected


def format_trace(trace: Sequence[TraceRecord], *, limit: int = 50) -> str:
    """Render a trace as aligned text lines (used by the examples)."""
    lines = []
    for record in trace[:limit]:
        lines.append(f"{record.time:10.3f}s  {str(record.node):>8}  "
                     f"{record.kind:<16} {record.description}")
    if len(trace) > limit:
        lines.append(f"... ({len(trace) - limit} more events)")
    return "\n".join(lines)
