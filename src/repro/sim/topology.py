"""INET-like network topologies (Section 5.1).

The paper runs its ModelNet experiments on a 5,000-node INET topology that
preserves the power-law degree distribution of the Internet, annotated with
per-link bandwidths (100 Mbps transit-transit, 5/1 Mbps access) and random
cross-traffic loss in [0.001, 0.005].  :class:`InetTopology` generates a
comparable topology with :mod:`networkx` and derives per-pair latencies and
loss probabilities that the runtime's network model can consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from ..runtime.address import Address
from ..runtime.network import NetworkModel


@dataclass
class TopologyConfig:
    """Parameters of the generated topology."""

    router_count: int = 200
    attachment_edges: int = 2
    #: per-hop propagation delay range in seconds.
    hop_delay_range: tuple[float, float] = (0.002, 0.02)
    #: target mean RTT, used to scale hop delays (the paper's average is 130 ms).
    target_mean_rtt: float = 0.130
    #: per-link cross-traffic loss range.
    loss_range: tuple[float, float] = (0.001, 0.005)
    transit_bandwidth_bps: float = 100e6
    access_inbound_bps: float = 5e6
    access_outbound_bps: float = 1e6
    seed: int = 0


class InetTopology:
    """A power-law router topology with clients attached to stub routers."""

    def __init__(self, config: Optional[TopologyConfig] = None) -> None:
        self.config = config or TopologyConfig()
        rng = random.Random(self.config.seed)
        self.graph = nx.barabasi_albert_graph(
            self.config.router_count, self.config.attachment_edges,
            seed=self.config.seed)
        low, high = self.config.hop_delay_range
        for u, v in self.graph.edges:
            self.graph.edges[u, v]["delay"] = rng.uniform(low, high)
            self.graph.edges[u, v]["loss"] = rng.uniform(*self.config.loss_range)
        self._rng = rng
        self._client_router: dict[Address, int] = {}
        self._path_delay_cache: dict[tuple[int, int], float] = {}
        self._scale = 1.0
        self._calibrate()

    # -- construction ----------------------------------------------------------------

    def _stub_routers(self) -> list[int]:
        degrees = dict(self.graph.degree)
        one_degree = [n for n, d in degrees.items() if d == 1]
        if one_degree:
            return one_degree
        cutoff = sorted(degrees.values())[len(degrees) // 4]
        return [n for n, d in degrees.items() if d <= cutoff]

    def _calibrate(self) -> None:
        """Scale hop delays so the mean RTT approximates the target."""
        nodes = list(self.graph.nodes)
        if len(nodes) < 2:
            return
        samples = []
        for _ in range(64):
            a, b = self._rng.sample(nodes, 2)
            samples.append(self._router_delay(a, b))
        mean_rtt = 2 * sum(samples) / len(samples)
        if mean_rtt > 0:
            self._scale = self.config.target_mean_rtt / mean_rtt
            self._path_delay_cache.clear()

    def attach_clients(self, addresses: Sequence[Address]) -> None:
        """Randomly attach client addresses to one-degree stub routers."""
        stubs = self._stub_routers()
        for addr in addresses:
            self._client_router[addr] = self._rng.choice(stubs)

    # -- queries ------------------------------------------------------------------------

    def _router_delay(self, a: int, b: int) -> float:
        key = (min(a, b), max(a, b))
        if key not in self._path_delay_cache:
            try:
                path = nx.shortest_path(self.graph, a, b)
            except nx.NetworkXNoPath:
                self._path_delay_cache[key] = 0.2
            else:
                delay = sum(self.graph.edges[u, v]["delay"]
                            for u, v in zip(path, path[1:]))
                self._path_delay_cache[key] = delay
        return self._path_delay_cache[key]

    def latency(self, src: Address, dst: Address,
                rng: Optional[random.Random] = None) -> float:
        """One-way latency between two attached clients."""
        rng = rng or self._rng
        router_a = self._client_router.get(src)
        router_b = self._client_router.get(dst)
        if router_a is None or router_b is None:
            return self.config.target_mean_rtt / 2
        access_delay = 0.002
        base = self._router_delay(router_a, router_b) * self._scale + 2 * access_delay
        return max(1e-4, base * (1.0 + rng.uniform(-0.05, 0.05)))

    def loss_probability(self, src: Address, dst: Address,
                         rng: Optional[random.Random] = None) -> float:
        rng = rng or self._rng
        return rng.uniform(*self.config.loss_range)

    def network_model(self, **kwargs) -> NetworkModel:
        """A runtime :class:`NetworkModel` backed by this topology."""
        return NetworkModel(
            latency_fn=lambda s, d, rng: self.latency(s, d, rng),
            loss_fn=lambda s, d, rng: self.loss_probability(s, d, rng),
            **kwargs,
        )

    def mean_rtt_estimate(self, addresses: Sequence[Address],
                          samples: int = 50) -> float:
        """Estimate the mean RTT among the attached clients."""
        attached = [a for a in addresses if a in self._client_router]
        if len(attached) < 2:
            return self.config.target_mean_rtt
        rng = random.Random(self.config.seed + 1)
        total = 0.0
        for _ in range(samples):
            a, b = rng.sample(attached, 2)
            total += 2 * self.latency(a, b, rng)
        return total / samples
