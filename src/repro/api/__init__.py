"""Unified experiment API: the single front door to the reproduction.

* :func:`register_system` / :func:`get_system` / :func:`list_systems` — the
  plugin registry under which the four bundled systems (RandTree, Chord,
  Paxos, Bullet') self-register their protocol factory, safety properties,
  transition config and named scenarios;
* :class:`Experiment` — the fluent builder that assembles and runs live
  deployments or scripted scenarios;
* :class:`RunReport` — the one structured, JSON-serializable result type;
* ``python -m repro`` — the command-line interface over all of the above.
"""

from .experiment import (
    Experiment,
    LiveRun,
    build_run_report,
    make_fault_scenario_runner,
    make_search_scenario_runner,
    parse_mode,
    report_from_search,
    warn_scenario_mode_noop,
)
from .registry import (
    ScenarioSpec,
    SystemSpec,
    get_system,
    list_systems,
    register_system,
    unregister_system,
)
from .report import NodeReport, RunReport

__all__ = [
    "Experiment",
    "LiveRun",
    "build_run_report",
    "make_fault_scenario_runner",
    "make_search_scenario_runner",
    "parse_mode",
    "report_from_search",
    "warn_scenario_mode_noop",
    "ScenarioSpec",
    "SystemSpec",
    "get_system",
    "list_systems",
    "register_system",
    "unregister_system",
    "NodeReport",
    "RunReport",
]
